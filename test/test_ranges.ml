(* Range-access equivalence: on every backend, the bulk range ops must be
   observably identical to the per-word access sequence they replace —
   same checksum, same simulated cycles, same protocol messages, same
   cache counters.  This is the contract that lets applications batch
   their inner loops without perturbing the paper's reproduced numbers.

   Plus a cross-backend checksum regression: the five paper applications
   pinned to their current digests on three representative backends, so
   any change to app code, coherence protocols, or the access layer that
   shifts results is caught immediately. *)

module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory
module Registry = Shm_apps.Registry
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Dsm_cluster = Shm_platform.Dsm_cluster
module Ivy_cluster = Shm_platform.Ivy_cluster
module Sgi = Shm_platform.Sgi
module Ah = Shm_platform.Ah
module Hs = Shm_platform.Hs

(* ------------------------------------------------------------------ *)
(* A synthetic app that replays a script of shared-memory operations
   either word-by-word or through the range ops.  Reads roam the whole
   data region (read sharing, races included); each processor's writes
   stay in its own stripe (false sharing across page boundaries, as in
   the real converted apps). *)

type op =
  | Rf of int * int  (* float reads: data offset, len *)
  | Wf of int * int  (* float writes: stripe offset, len *)
  | Ri of int * int
  | Wi of int * int
  | Bar

let max_len = 64
let data_words = 1984 (* ~4 TreadMarks pages of 512 words *)
let nprocs = 3

(* Layout: data region, then one accumulator slot per processor, then the
   digest slot. *)
let shared_words = data_words + nprocs + 1
let slot p = data_words + p
let digest = data_words + nprocs

type mode = Word | Range

let make_app ~mode ~script =
  let init mem =
    for i = 0 to data_words - 1 do
      Memory.set_float mem i (float_of_int (i * 7 mod 1013) *. 0.125)
    done
  in
  let work (ctx : Parmacs.ctx) =
    let buf_f = Array.make max_len 0.0 in
    let buf_i = Array.make max_len 0 in
    let acc = ref 0.0 in
    let stripe = data_words / ctx.nprocs in
    let wbase = ctx.id * stripe in
    List.iteri
      (fun k op ->
        match op with
        | Rf (off, len) ->
            let addr = off mod (data_words - len) in
            (match mode with
            | Word ->
                for j = 0 to len - 1 do
                  acc := !acc +. Parmacs.read_f ctx (addr + j)
                done
            | Range ->
                ctx.range.read_fs addr buf_f 0 len;
                for j = 0 to len - 1 do
                  acc := !acc +. buf_f.(j)
                done)
        | Wf (off, len) ->
            let addr = wbase + (off mod (stripe - len)) in
            let v j = float_of_int (((ctx.id + 1) * 997) + (k * 31) + j) *. 0.5 in
            (match mode with
            | Word ->
                for j = 0 to len - 1 do
                  Parmacs.write_f ctx (addr + j) (v j)
                done
            | Range ->
                for j = 0 to len - 1 do
                  buf_f.(j) <- v j
                done;
                ctx.range.write_fs addr buf_f 0 len)
        | Ri (off, len) ->
            let addr = off mod (data_words - len) in
            (match mode with
            | Word ->
                for j = 0 to len - 1 do
                  acc := !acc +. float_of_int (Parmacs.read_i ctx (addr + j))
                done
            | Range ->
                ctx.range.read_is addr buf_i 0 len;
                for j = 0 to len - 1 do
                  acc := !acc +. float_of_int buf_i.(j)
                done)
        | Wi (off, len) ->
            let addr = wbase + (off mod (stripe - len)) in
            let v j = ((ctx.id + 1) * 8191) + (k * 17) + j in
            (match mode with
            | Word ->
                for j = 0 to len - 1 do
                  Parmacs.write_i ctx (addr + j) (v j)
                done
            | Range ->
                for j = 0 to len - 1 do
                  buf_i.(j) <- v j
                done;
                ctx.range.write_is addr buf_i 0 len)
        | Bar -> ctx.barrier 0)
      script;
    ctx.barrier 0;
    Parmacs.write_f ctx (slot ctx.id) !acc;
    ctx.barrier 0;
    if ctx.id = 0 then begin
      let total = ref 0.0 in
      for p = 0 to ctx.nprocs - 1 do
        total := !total +. Parmacs.read_f ctx (slot p)
      done;
      Parmacs.write_f ctx digest !total
    end
  in
  {
    Parmacs.name = "range-equiv";
    shared_words;
    eager_lock_hints = [];
    init;
    work;
    checksum_addr = digest;
    stats = Parmacs.no_stats;
  }

(* Every backend, including the eager-invalidate configuration whose
   range ops fall back to the literal per-word loop. *)
let backends () =
  [
    ("dec", Dsm_cluster.dec_plain (), 1);
    ("treadmarks", Dsm_cluster.dec ~level:Dsm_cluster.User (), nprocs);
    ( "treadmarks-erc",
      Dsm_cluster.dec ~protocol:"erc"
        ~level:Dsm_cluster.User (),
      nprocs );
    ("ivy", Ivy_cluster.make (), nprocs);
    ("sgi", Sgi.make (), nprocs);
    ("as", Dsm_cluster.as_machine (), nprocs);
    ("ah", Ah.make (), nprocs);
    ("hs", Hs.make ~node_cpus:4 (), nprocs);
  ]

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map2 (fun o l -> Rf (o, l)) (int_bound 4095) (int_range 1 max_len));
        (3, map2 (fun o l -> Wf (o, l)) (int_bound 4095) (int_range 1 (max_len - 1)));
        (2, map2 (fun o l -> Ri (o, l)) (int_bound 4095) (int_range 1 max_len));
        (2, map2 (fun o l -> Wi (o, l)) (int_bound 4095) (int_range 1 (max_len - 1)));
        (1, return Bar);
      ])

let script_gen = QCheck.Gen.(list_size (int_range 4 16) op_gen)

let script_arb =
  let print ops =
    String.concat ";"
      (List.map
         (function
           | Rf (o, l) -> Printf.sprintf "Rf(%d,%d)" o l
           | Wf (o, l) -> Printf.sprintf "Wf(%d,%d)" o l
           | Ri (o, l) -> Printf.sprintf "Ri(%d,%d)" o l
           | Wi (o, l) -> Printf.sprintf "Wi(%d,%d)" o l
           | Bar -> "Bar")
         ops)
  in
  QCheck.make ~print script_gen

let prop_ranges_equiv =
  QCheck.Test.make ~count:12 ~name:"range ops = per-word ops on every backend"
    script_arb
    (fun script ->
      (* Sequential reference: both modes agree with no platform at all. *)
      let seq mode =
        let app = make_app ~mode ~script in
        Parmacs.checksum_of (Parmacs.run_sequential app) app
      in
      if seq Word <> seq Range then
        QCheck.Test.fail_reportf "sequential: %.17g <> %.17g" (seq Word)
          (seq Range);
      List.for_all
        (fun (name, (p : Platform.t), n) ->
          let run mode = p.Platform.run (make_app ~mode ~script) ~nprocs:n in
          let rw = run Word and rr = run Range in
          let sorted r = List.sort compare r.Report.counters in
          if rw.Report.checksum <> rr.Report.checksum then
            QCheck.Test.fail_reportf "%s: checksum %.17g <> %.17g" name
              rw.Report.checksum rr.Report.checksum
          else if rw.Report.cycles <> rr.Report.cycles then
            QCheck.Test.fail_reportf "%s: cycles %d <> %d" name
              rw.Report.cycles rr.Report.cycles
          else if sorted rw <> sorted rr then
            QCheck.Test.fail_reportf
              "%s: counters differ (msgs %d vs %d, bytes %d vs %d)" name
              (Report.get rw "net.msgs.total")
              (Report.get rr "net.msgs.total")
              (Report.get rw "net.bytes.total")
              (Report.get rr "net.bytes.total")
          else true)
        (backends ()))

(* ------------------------------------------------------------------ *)
(* Cross-backend checksum regression: the five paper applications at
   quick scale, digests pinned.  The simulator is deterministic, so these
   are exact constants; sor/tsp/ilink must also be bit-identical across
   backends, while water/m-water can depend on lock-acquisition order and
   so are pinned per backend (they happen to agree at this scale). *)

let golden_backends () =
  [
    ("treadmarks", Dsm_cluster.dec ~level:Dsm_cluster.User ());
    ("ivy", Ivy_cluster.make ());
    ("sgi", Sgi.make ());
  ]

let goldens : (string * (string * float) list) list =
  [
    ( "sor",
      [
        ("treadmarks", 0x1.70d4575719efep+8);
        ("ivy", 0x1.70d4575719efep+8);
        ("sgi", 0x1.70d4575719efep+8);
      ] );
    ( "tsp",
      [
        ("treadmarks", 0x1.1f2p+11);
        ("ivy", 0x1.1f2p+11);
        ("sgi", 0x1.1f2p+11);
      ] );
    ( "water",
      [
        ("treadmarks", 0x1.293cc893f694dp+8);
        ("ivy", 0x1.293cc893f694dp+8);
        ("sgi", 0x1.293cc893f694dp+8);
      ] );
    ( "m-water",
      [
        ("treadmarks", 0x1.293cc893f694dp+8);
        ("ivy", 0x1.293cc893f694dp+8);
        ("sgi", 0x1.293cc893f694dp+8);
      ] );
    ( "ilink-clp",
      [
        ("treadmarks", 0x1.0eeb716a5b77ap+5);
        ("ivy", 0x1.0eeb716a5b77ap+5);
        ("sgi", 0x1.0eeb716a5b77ap+5);
      ] );
  ]

let test_golden_checksums () =
  let failures = ref [] in
  List.iter
    (fun (app_name, expected) ->
      List.iter
        (fun (pname, platform) ->
          let app = Registry.app ~scale:Registry.Quick app_name in
          let r = (platform : Platform.t).Platform.run app ~nprocs:4 in
          let want = List.assoc pname expected in
          if r.Report.checksum <> want then
            failures :=
              Printf.sprintf "%s on %s: got %h, pinned %h" app_name pname
                r.Report.checksum want
              :: !failures)
        (golden_backends ()))
    goldens;
  match !failures with
  | [] -> ()
  | fs -> Alcotest.failf "checksum drift:\n%s" (String.concat "\n" fs)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_ranges_equiv;
    Alcotest.test_case "five-app golden checksums" `Quick
      test_golden_checksums;
  ]
