(* Cross-platform tests: every machine model must compute the same answers
   through completely different shared-memory implementations, and the
   timing must reproduce the paper's qualitative relationships. *)

module Parmacs = Shm_parmacs.Parmacs
module Registry = Shm_apps.Registry
module Sor = Shm_apps.Sor
module Tsp = Shm_apps.Tsp
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Machines = Shm_platform.Machines
module Dsm_cluster = Shm_platform.Dsm_cluster
module Hs = Shm_platform.Hs
module Ah = Shm_platform.Ah
module Sgi = Shm_platform.Sgi
module Layout = Shm_apps.Layout

let all_parallel_platforms () =
  [
    ("treadmarks", Dsm_cluster.dec ~level:Dsm_cluster.User ());
    ("treadmarks-kernel", Dsm_cluster.dec ~level:Dsm_cluster.Kernel ());
    ("ivy", Shm_platform.Ivy_cluster.make ());
    ("sgi", Sgi.make ());
    ("as", Dsm_cluster.as_machine ());
    ("ah", Ah.make ());
    ("hs", Hs.make ~node_cpus:4 ());
  ]

let run_on name (p : Platform.t) app ~n =
  try p.Platform.run app ~nprocs:n
  with e ->
    Alcotest.failf "%s failed on %d procs: %s" name n (Printexc.to_string e)

(* Deterministic apps must produce bit-identical checksums on every
   platform at the same processor count (the computation is identical;
   only the shared-memory implementation differs), and agree with the
   sequential reference up to floating-point reassociation of the final
   reduction. *)
let check_exact_everywhere ~name make_app procs =
  let reference =
    let app = make_app () in
    Parmacs.checksum_of (Parmacs.run_sequential app) app
  in
  List.iter
    (fun n ->
      let results =
        List.map
          (fun (pname, p) ->
            (pname, (run_on pname p (make_app ()) ~n).Report.checksum))
          (all_parallel_platforms ())
      in
      (match results with
      | (_, first) :: rest ->
          List.iter
            (fun (pname, cs) ->
              Alcotest.(check (float 0.0))
                (Printf.sprintf "%s on %s with %d procs" name pname n)
                first cs)
            rest
      | [] -> Alcotest.fail "no platforms");
      let _, any = List.hd results in
      let err = abs_float (any -. reference) /. (1. +. abs_float reference) in
      Alcotest.(check bool)
        (Printf.sprintf "%s at %d procs near reference (err %g)" name n err)
        true (err < 1e-12))
    procs

let test_sor_exact_everywhere () =
  check_exact_everywhere ~name:"sor"
    (fun () ->
      Sor.make { Sor.default_params with rows = 32; cols = 32; iters = 3 })
    [ 1; 3; 4 ]

let test_tsp_exact_everywhere () =
  check_exact_everywhere ~name:"tsp"
    (fun () -> Tsp.make { (Tsp.params_n 9) with Tsp.expand_depth = 2 })
    [ 1; 4 ]

let test_ilink_exact_everywhere () =
  (* ILINK reductions happen in a fixed order only for a fixed processor
     count; compare each platform at the same count. *)
  let make () = Registry.app ~scale:Registry.Quick "ilink-clp" in
  let n = 4 in
  let results =
    List.map
      (fun (pname, p) -> (pname, (run_on pname p (make ()) ~n).Report.checksum))
      (all_parallel_platforms ())
  in
  match results with
  | (_, first) :: rest ->
      List.iter
        (fun (pname, cs) ->
          Alcotest.(check (float 0.0)) ("ilink on " ^ pname) first cs)
        rest
  | [] -> Alcotest.fail "no platforms"

let test_water_close_everywhere () =
  (* Water's force reduction order depends on lock timing: platforms agree
     to floating-point reassociation tolerance. *)
  let make () =
    Shm_apps.Water.make
      { (Shm_apps.Water.default_params Shm_apps.Water.Batched) with
        molecules = 48; steps = 2 }
  in
  let app = make () in
  let reference = Parmacs.checksum_of (Parmacs.run_sequential app) app in
  List.iter
    (fun (pname, p) ->
      let r = run_on pname p (make ()) ~n:4 in
      let err = abs_float (r.Report.checksum -. reference) /. (1. +. abs_float reference) in
      Alcotest.(check bool)
        (Printf.sprintf "water on %s (err %g)" pname err)
        true (err < 1e-6))
    (all_parallel_platforms ())

(* Same platform, same inputs: byte-identical reports (determinism). *)
let test_runs_are_reproducible () =
  List.iter
    (fun (pname, p) ->
      let run () =
        let app =
          Sor.make { Sor.default_params with rows = 32; cols = 32; iters = 2 }
        in
        let r = run_on pname p app ~n:4 in
        (r.Report.cycles, r.Report.checksum, r.Report.counters)
      in
      let a = run () and b = run () in
      Alcotest.(check bool) ("deterministic on " ^ pname) true (a = b))
    (all_parallel_platforms ())

(* Paper shape: hardware sync is orders of magnitude cheaper, so a
   lock-heavy program speeds up on the SGI and not on TreadMarks. *)
let test_lock_heavy_relationship () =
  let app = Registry.app ~scale:Registry.Quick "water" in
  let tmk = Dsm_cluster.dec ~level:Dsm_cluster.User () in
  let sgi = Sgi.make () in
  let t1 = (run_on "tmk" tmk (Registry.app ~scale:Registry.Quick "water") ~n:1).Report.cycles in
  let t8 = (run_on "tmk" tmk app ~n:8).Report.cycles in
  let s1 = (run_on "sgi" sgi (Registry.app ~scale:Registry.Quick "water") ~n:1).Report.cycles in
  let s8 = (run_on "sgi" sgi (Registry.app ~scale:Registry.Quick "water") ~n:8).Report.cycles in
  let tmk_speedup = float_of_int t1 /. float_of_int t8 in
  let sgi_speedup = float_of_int s1 /. float_of_int s8 in
  Alcotest.(check bool)
    (Printf.sprintf "SGI (%.2f) beats TreadMarks (%.2f) on Water" sgi_speedup
       tmk_speedup)
    true
    (sgi_speedup > 2. *. tmk_speedup)

(* Paper shape: kernel-level TreadMarks is faster than user-level for
   synchronization-heavy programs. *)
let test_kernel_beats_user_on_water () =
  let user = Dsm_cluster.dec ~level:Dsm_cluster.User () in
  let kernel = Dsm_cluster.dec ~level:Dsm_cluster.Kernel () in
  let cycles p =
    (run_on "tmk" p (Registry.app ~scale:Registry.Quick "m-water") ~n:8)
      .Report.cycles
  in
  Alcotest.(check bool) "kernel faster" true (cycles kernel < cycles user)

(* Hw_sync: lock mutual exclusion on the snooping machine. *)
let test_hw_sync_mutual_exclusion () =
  let module Engine = Shm_sim.Engine in
  let module Hw_sync = Shm_memsys.Hw_sync in
  let module Snoop = Shm_memsys.Snoop in
  let module Memory = Shm_memsys.Memory in
  let module Counters = Shm_stats.Counters in
  let eng = Engine.create () in
  let counters = Counters.create () in
  let mem = Memory.create ~words:(1024 + Hw_sync.region_words) in
  let machine = Snoop.create eng counters mem (Snoop.sgi_config ~n_cpus:4) in
  let access =
    {
      Hw_sync.rmw = (fun f ~cpu addr g -> Snoop.rmw machine f ~cpu addr g);
      read = (fun f ~cpu addr -> ignore (Snoop.read machine f ~cpu addr));
    }
  in
  let sync = Hw_sync.create eng access ~base:1024 ~nprocs:4 in
  let in_section = ref 0 and max_in_section = ref 0 and entries = ref 0 in
  for cpu = 0 to 3 do
    ignore
      (Engine.spawn eng ~name:(Printf.sprintf "cpu%d" cpu) ~at:0 (fun f ->
           for _ = 1 to 20 do
             Hw_sync.lock sync f ~cpu 5;
             incr in_section;
             incr entries;
             max_in_section := max !max_in_section !in_section;
             Engine.wait_until f (Engine.clock f + 30);
             decr in_section;
             Hw_sync.unlock sync f ~cpu 5
           done))
  done;
  Engine.run eng;
  Alcotest.(check int) "all entered" 80 !entries;
  Alcotest.(check int) "never two holders" 1 !max_in_section

(* Hw_sync: barrier really separates phases. *)
let test_hw_sync_barrier_phases () =
  let module Engine = Shm_sim.Engine in
  let module Hw_sync = Shm_memsys.Hw_sync in
  let module Snoop = Shm_memsys.Snoop in
  let module Memory = Shm_memsys.Memory in
  let module Counters = Shm_stats.Counters in
  let eng = Engine.create () in
  let counters = Counters.create () in
  let mem = Memory.create ~words:(64 + Hw_sync.region_words) in
  let machine = Snoop.create eng counters mem (Snoop.hs_node_config ~n_cpus:8) in
  let access =
    {
      Hw_sync.rmw = (fun f ~cpu addr g -> Snoop.rmw machine f ~cpu addr g);
      read = (fun f ~cpu addr -> ignore (Snoop.read machine f ~cpu addr));
    }
  in
  let sync = Hw_sync.create eng access ~base:64 ~nprocs:8 in
  let phase_done = Array.make 8 false in
  let violations = ref 0 in
  for cpu = 0 to 7 do
    ignore
      (Engine.spawn eng ~name:(Printf.sprintf "cpu%d" cpu) ~at:(cpu * 17)
         (fun f ->
           Engine.wait_until f (Engine.clock f + (cpu * 100));
           phase_done.(cpu) <- true;
           Hw_sync.barrier sync f ~cpu 3;
           if not (Array.for_all Fun.id phase_done) then incr violations))
  done;
  Engine.run eng;
  Alcotest.(check int) "no one passed early" 0 !violations

let test_report_helpers () =
  let r =
    {
      Report.platform = "x"; app = "y"; nprocs = 4; cycles = 40_000_000;
      clock_mhz = 40.0; checksum = 1.0;
      counters = [ ("n", 80_000_000) ];
    }
  in
  Alcotest.(check (float 1e-9)) "seconds" 1.0 (Report.seconds r);
  Alcotest.(check (float 1e-6)) "rate" 8e7 (Report.rate r "n");
  let base = { r with cycles = 80_000_000 } in
  Alcotest.(check (float 1e-9)) "speedup" 2.0 (Report.speedup ~base r)

let test_machines_registry () =
  List.iter (fun n -> ignore (Machines.get n)) Machines.names;
  Alcotest.check_raises "unknown" (Invalid_argument "unknown platform \"zz\"")
    (fun () -> ignore (Machines.get "zz"))

let suite =
  [
    Alcotest.test_case "SOR exact on every platform" `Slow
      test_sor_exact_everywhere;
    Alcotest.test_case "TSP exact on every platform" `Slow
      test_tsp_exact_everywhere;
    Alcotest.test_case "ILINK exact across platforms" `Slow
      test_ilink_exact_everywhere;
    Alcotest.test_case "Water agrees within tolerance" `Slow
      test_water_close_everywhere;
    Alcotest.test_case "runs are reproducible" `Quick
      test_runs_are_reproducible;
    Alcotest.test_case "SGI beats TreadMarks on lock-heavy Water" `Slow
      test_lock_heavy_relationship;
    Alcotest.test_case "kernel-level beats user-level" `Slow
      test_kernel_beats_user_on_water;
    Alcotest.test_case "hardware lock mutual exclusion" `Quick
      test_hw_sync_mutual_exclusion;
    Alcotest.test_case "hardware barrier separates phases" `Quick
      test_hw_sync_barrier_phases;
    Alcotest.test_case "report helpers" `Quick test_report_helpers;
    Alcotest.test_case "machine registry" `Quick test_machines_registry;
  ]
