(* The serving workload's differential/linearizability harness
   (DESIGN.md §14): the same seeded KV trace runs on every platform and
   every registered coherence engine, and an external model — a plain
   OCaml Hashtbl replaying the recorded linearization order — must agree
   with every per-request return value and with the final store
   contents.  Put keys are single-writer (Loadgen's partitioning), so
   the content digest the run writes as its checksum must also be equal
   across all platforms, under chaos (message drops) and under a
   whole-node crash/restart. *)

module Registry = Shm_apps.Registry
module Kvstore = Shm_apps.Kvstore
module Loadgen = Shm_apps.Loadgen
module Hist = Shm_stats.Hist
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Machines = Shm_platform.Machines
module Fabric = Shm_net.Fabric
module Lifecycle = Shm_sim.Lifecycle

(* Small trace for the full matrix: 12 machine/engine combinations run
   it, so each run is kept to a few hundred requests. *)
let small =
  [
    ("keys", "128"); ("requests", "120"); ("mean-gap", "800");
    ("service", "200"); ("shards", "8");
  ]

let run ?faults ?crash ?protocol ~params plat ~n =
  let kv = Registry.kv ~scale:Registry.Quick ~params () in
  let p = Machines.get ?faults ?crash ?protocol plat in
  let r = p.Platform.run kv.Kvstore.app ~nprocs:n in
  (kv, r)

(* The external differential check, independent of the app's built-in
   one: replay the linearization record through a Hashtbl, compare every
   get's return value and the final contents. *)
let check_against_model ~what (kv : Kvstore.t) =
  let model = Hashtbl.create 64 in
  List.iter
    (fun (e : Kvstore.entry) ->
      match e.Kvstore.op with
      | Loadgen.Put -> Hashtbl.replace model e.Kvstore.key e.Kvstore.value
      | Loadgen.Get ->
          let expect =
            Option.value (Hashtbl.find_opt model e.Kvstore.key) ~default:0
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: get(%d) by node %d req %d" what e.Kvstore.key
               e.Kvstore.node e.Kvstore.idx)
            expect e.Kvstore.value)
    (kv.Kvstore.results ());
  let model_list =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [])
  in
  Alcotest.(check (list (pair int int)))
    (Printf.sprintf "%s: final store contents = model" what)
    model_list (kv.Kvstore.final ())

let matrix =
  [
    ("dec", None, 1);
    ("treadmarks", None, 4);
    ("treadmarks", Some "eager-lrc", 4);
    ("treadmarks", Some "erc", 4);
    ("treadmarks", Some "ivy", 4);
    ("treadmarks", Some "tardis", 4);
    ("treadmarks-kernel", None, 4);
    ("ivy", None, 4);
    ("sgi", None, 4);
    ("sgi", Some "directory", 4);
    ("as", None, 4);
    ("ah", None, 4);
    ("hs", None, 4);
  ]

(* Every platform x engine: return values linearizable, final contents
   equal to the model's, and — because puts are single-writer — one
   digest shared by every multiprocessor run. *)
let test_differential_matrix () =
  let checksums = ref [] in
  List.iter
    (fun (plat, protocol, n) ->
      let what =
        Printf.sprintf "kv on %s%s" plat
          (match protocol with None -> "" | Some p -> "+" ^ p)
      in
      let kv, r = run ?protocol ~params:small plat ~n in
      check_against_model ~what kv;
      Alcotest.(check int)
        (what ^ ": built-in model check passed")
        1
        (Report.get r "kv.model_ok");
      Alcotest.(check int)
        (what ^ ": every request completed")
        (120 * n)
        (Report.get r "kv.ops");
      if n > 1 then checksums := (what, r.Report.checksum) :: !checksums)
    matrix;
  match !checksums with
  | [] -> Alcotest.fail "no multiprocessor runs in the matrix"
  | (what0, c0) :: rest ->
      List.iter
        (fun (what, c) ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s digest = %s digest" what what0)
            c0 c)
        rest

(* Chaos: 5% of every message class dropped.  The reliable layer must
   retransmit (so the counter is live) and the answers must not move. *)
let chaos =
  {
    Fabric.no_faults with
    Fabric.drop_miss = 0.05;
    drop_sync = 0.05;
    fault_seed = 7;
  }

let test_chaos_differential () =
  let kv, r = run ~faults:chaos ~params:small "treadmarks" ~n:4 in
  check_against_model ~what:"kv on treadmarks under 5% drop" kv;
  Alcotest.(check int) "built-in model check passed under chaos" 1
    (Report.get r "kv.model_ok");
  Alcotest.(check bool) "messages were dropped" true (Report.dropped r > 0);
  Alcotest.(check bool) "retransmissions happened" true
    (Report.retransmissions r > 0);
  let _, clean = run ~params:small "treadmarks" ~n:4 in
  Alcotest.(check (float 0.0)) "chaos digest = clean digest"
    clean.Report.checksum r.Report.checksum

(* Crash: node 1 dies mid-run and restarts; transparent failure-atomic
   recovery (DESIGN.md §13) must bring the run to the crash-free
   answer, and the linearization record must still replay. *)
let churn =
  {
    Lifecycle.none with
    Lifecycle.crashes = [ (1, 400_000) ];
    ckpt_interval = 200_000;
  }

let test_crash_differential () =
  let kv, r = run ~crash:churn ~params:small "treadmarks" ~n:4 in
  Alcotest.(check int) "one crash" 1 (Report.crashes r);
  Alcotest.(check int) "one restart" 1 (Report.restarts r);
  check_against_model ~what:"kv on treadmarks with a crash" kv;
  Alcotest.(check int) "built-in model check passed across the crash" 1
    (Report.get r "kv.model_ok");
  let _, clean = run ~params:small "treadmarks" ~n:4 in
  Alcotest.(check (float 0.0)) "crash digest = crash-free digest"
    clean.Report.checksum r.Report.checksum

(* Same config, run twice: the whole report must be byte-identical
   (the load generator and the simulation are deterministic). *)
let test_deterministic () =
  let _, a = run ~params:small "treadmarks" ~n:4 in
  let _, b = run ~params:small "treadmarks" ~n:4 in
  Alcotest.(check int) "same cycles" a.Report.cycles b.Report.cycles;
  Alcotest.(check (float 0.0)) "same digest" a.Report.checksum b.Report.checksum;
  Alcotest.(check (list (pair string int)))
    "same counters" a.Report.counters b.Report.counters

(* Pinned goldens at quick scale: throughput (ops are exact by
   construction) and the latency percentiles on the three reference
   machines.  These move only when the timing model, the coherence
   engines or the load generator change — which is exactly when a human
   should look. *)
(* The quick-scale offered load (one request per 2000 cycles per node)
   saturates the software DSMs — per-op cost there is tens of thousands
   of cycles — so their percentiles are queueing delay, while the SGI
   absorbs the same load with sub-thousand-cycle medians.  That gap IS
   the paper's point, measured as tail latency. *)
let goldens =
  [
    ("treadmarks", 37_781_479, 16_777_215, 35_651_583, 35_651_583);
    ("ivy", 98_310_068, 48_234_495, 96_468_991, 96_714_482);
    ("sgi", 1_060_114, 735, 15_871, 19_619);
  ]

let test_pinned_goldens () =
  List.iter
    (fun (plat, cycles, p50, p99, p999) ->
      let _, r = run ~params:[] plat ~n:4 in
      Alcotest.(check int) (plat ^ ": quick-scale ops") 1600
        (Report.get r "kv.ops");
      Alcotest.(check int) (plat ^ ": quick-scale cycles") cycles
        r.Report.cycles;
      Alcotest.(check int) (plat ^ ": P50") p50 (Report.get r "kv.lat_p50");
      Alcotest.(check int) (plat ^ ": P99") p99 (Report.get r "kv.lat_p99");
      Alcotest.(check int) (plat ^ ": P999") p999
        (Report.get r "kv.lat_p999"))
    goldens

(* qcheck: linearizability on small random traces.  Any seed, any mix,
   any skew — the recorded history must replay against the model on an
   SDSM and a hardware machine. *)
let prop_linearizable =
  QCheck.Test.make ~count:8 ~name:"kv: random small traces linearizable"
    QCheck.(triple (int_bound 10_000) (int_bound 100) (int_bound 10))
    (fun (seed, skew, gmix) ->
      let params =
        [
          ("seed", string_of_int (seed + 1));
          ("keys", "48");
          ("requests", "60");
          ("mean-gap", "600");
          ("service", "100");
          ("shards", "4");
          ("zipf", Printf.sprintf "%.2f" (float_of_int skew /. 50.0));
          ("get-ratio", Printf.sprintf "%.1f" (float_of_int gmix /. 10.0));
        ]
      in
      List.for_all
        (fun plat ->
          let kv, r = run ~params plat ~n:3 in
          let model = Hashtbl.create 64 in
          List.for_all
            (fun (e : Kvstore.entry) ->
              match e.Kvstore.op with
              | Loadgen.Put ->
                  Hashtbl.replace model e.Kvstore.key e.Kvstore.value;
                  true
              | Loadgen.Get ->
                  Option.value
                    (Hashtbl.find_opt model e.Kvstore.key)
                    ~default:0
                  = e.Kvstore.value)
            (kv.Kvstore.results ())
          && Report.get r "kv.model_ok" = 1)
        [ "treadmarks"; "sgi" ])

(* Bad parameters must be rejected up front, not half-run. *)
let test_rejects () =
  let reject what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  in
  reject "unknown kv parameter" (fun () ->
      Registry.app ~scale:Registry.Quick ~params:[ ("kyes", "8") ] "kv");
  reject "unparsable value" (fun () ->
      Registry.app ~scale:Registry.Quick ~params:[ ("keys", "many") ] "kv");
  reject "zero shards" (fun () ->
      Registry.app ~scale:Registry.Quick ~params:[ ("shards", "0") ] "kv");
  reject "negative get-ratio" (fun () ->
      Registry.app ~scale:Registry.Quick ~params:[ ("get-ratio", "-0.5") ] "kv");
  reject "unknown sor parameter" (fun () ->
      Registry.app ~scale:Registry.Quick ~params:[ ("cities", "9") ] "sor")

let suite =
  [
    Alcotest.test_case "differential matrix: all platforms x engines" `Slow
      test_differential_matrix;
    Alcotest.test_case "chaos: 5% drop, model + digest hold" `Slow
      test_chaos_differential;
    Alcotest.test_case "crash: node restart, model + digest hold" `Slow
      test_crash_differential;
    Alcotest.test_case "deterministic replay" `Quick test_deterministic;
    Alcotest.test_case "pinned goldens (tmk/ivy/sgi quick)" `Slow
      test_pinned_goldens;
    QCheck_alcotest.to_alcotest prop_linearizable;
    Alcotest.test_case "parameter rejection" `Quick test_rejects;
  ]
