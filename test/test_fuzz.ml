(* Cross-platform program fuzzer: random data-race-free parallel programs
   must compute bit-identical results on every shared-memory
   implementation.  This is the strongest correctness statement in the
   suite — TreadMarks' twins/diffs/notices, IVY's page ownership, MESI
   snooping and the directory protocol all have to agree, word for word,
   on arbitrary mixes of private writes, lock-protected shared counters
   and barrier-phased reads.

   Bugs this fuzzer has caught (kept fixed by these tests): a write lost
   on HS when a bus transaction yielded between the DSM guard and the
   store; the barrier manager applying diffs out of happened-before order
   after registering arrival notices prematurely; a distributed-lock
   token orphaned when a manager-local request's forward overtook an
   earlier one on the wire. *)

module Engine = Shm_sim.Engine
module Prng = Shm_sim.Prng
module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory
module Layout = Shm_apps.Layout
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Dsm_cluster = Shm_platform.Dsm_cluster
module Machines = Shm_platform.Machines

(* A random program: [n_phases] barrier-fenced phases.  In each phase a
   processor performs a random sequence of operations:
   - write / read-accumulate within its OWN region (disjoint words, shared
     page boundaries exercise multiple-writer merging);
   - lock-protected increments of shared counters (commutative, so the
     result is schedule-independent);
   - after the phase barrier, reads of OTHER processors' regions from the
     previous phase (deterministic values).
   The digest combines everything read, so any coherence bug shows up. *)

type op =
  | Write_own of int * int  (* offset, value *)
  | Read_own of int
  | Counter_incr of int  (* which counter/lock *)
  | Read_other of int * int  (* processor, offset *)

type program = { nprocs : int; phases : op array array array }
(* phases.(phase).(proc) = op sequence *)

let region_words = 96 (* < a page, so regions share pages *)
let n_counters = 5

let gen_program ~seed ~nprocs ~n_phases ~ops_per_phase =
  let rng = Prng.create ~seed in
  let gen_op ~proc =
    match Prng.int rng 5 with
    | 0 -> Write_own (Prng.int rng region_words, Prng.int rng 1_000_000)
    | 1 -> Read_own (Prng.int rng region_words)
    | 2 -> Counter_incr (Prng.int rng n_counters)
    | 3 | 4 ->
        let other = Prng.int rng nprocs in
        ignore proc;
        Read_other (other, Prng.int rng region_words)
    | _ -> assert false
  in
  {
    nprocs;
    phases =
      Array.init n_phases (fun _ ->
          Array.init nprocs (fun proc ->
              Array.init ops_per_phase (fun _ -> gen_op ~proc)));
  }

type layout = { regions : int; counters : int; partials : int; digest : int }

let layout_of () =
  let l = Layout.create () in
  let regions = Layout.alloc l (64 * region_words) in
  let counters = Layout.alloc_aligned l n_counters ~align:512 in
  let partials = Layout.alloc_aligned l (64 * 512) ~align:512 in
  let digest = Layout.alloc l 1 in
  (l, { regions; counters; partials; digest })

let make_app (prog : program) =
  let alloc, lay = layout_of () in
  let region proc = lay.regions + (proc * region_words) in
  let work (ctx : Parmacs.ctx) =
    let acc = ref 0 in
    let mix v = acc := ((!acc * 31) + v) land 0xFFFFFF in
    Array.iter
      (fun procs ->
        Array.iter
          (fun op ->
            match op with
            | Write_own (off, v) ->
                Parmacs.write_i ctx (region ctx.id + off) v
            | Read_own off -> mix (Parmacs.read_i ctx (region ctx.id + off))
            | Counter_incr c ->
                ctx.lock c;
                let v = Parmacs.read_i ctx (lay.counters + c) in
                Parmacs.write_i ctx (lay.counters + c) (v + 1);
                ctx.unlock c
            | Read_other (other, off) ->
                (* Reads of other regions only see the previous phase's
                   writes: data-race-free by the phase barrier. *)
                mix (Parmacs.read_i ctx (region other + off)))
          procs.(ctx.id);
        ctx.barrier 0)
      prog.phases;
    (* Counters are schedule-dependent mid-run but their FINAL values are
       deterministic sums; fold them into the digest after a barrier. *)
    Parmacs.write_i ctx (lay.partials + (ctx.id * 512)) !acc;
    ctx.barrier 0;
    if ctx.id = 0 then begin
      let total = ref 0 in
      for q = 0 to ctx.nprocs - 1 do
        total := ((!total * 17) + Parmacs.read_i ctx (lay.partials + (q * 512)))
                 land 0xFFFFFF
      done;
      for c = 0 to n_counters - 1 do
        total := ((!total * 17) + Parmacs.read_i ctx (lay.counters + c))
                 land 0xFFFFFF
      done;
      Parmacs.write_f ctx lay.digest (float_of_int !total)
    end;
    ctx.barrier 0
  in
  {
    Parmacs.name = "fuzz";
    shared_words = Layout.size alloc;
    eager_lock_hints = [];
    init = (fun _ -> ());
    work;
    checksum_addr = lay.digest;
    stats = Parmacs.no_stats;
  }

(* Read_other sees the PREVIOUS phase's value only if the reader can't
   observe the current phase's concurrent write: that is only race-free if
   within a phase nobody writes what another reads.  Restrict: writes to
   own region happen only in EVEN phases, cross reads only in ODD phases. *)
let gen_racefree_program ~seed ~nprocs ~n_phases ~ops_per_phase =
  let prog = gen_program ~seed ~nprocs ~n_phases ~ops_per_phase in
  let fixed =
    Array.mapi
      (fun phase procs ->
        Array.map
          (Array.map (fun op ->
               match op with
               | Write_own _ when phase land 1 = 1 -> Read_own 0
               | Read_other _ when phase land 1 = 0 -> Read_own 1
               | op -> op))
          procs)
      prog.phases
  in
  { prog with phases = fixed }

let platforms () =
  [
    ("treadmarks", Dsm_cluster.dec ~level:Dsm_cluster.User ());
    ("treadmarks-erc",
     Dsm_cluster.dec ~protocol:"erc"
       ~level:Dsm_cluster.User ());
    ("ivy", Machines.get "ivy");
    ("sgi", Machines.get "sgi");
    ("ah", Machines.get "ah");
    ("hs", Shm_platform.Hs.make ~node_cpus:3 ());
  ]

let prop_all_platforms_agree =
  QCheck.Test.make ~count:12 ~name:"fuzz: random DRF programs agree everywhere"
    QCheck.(int_bound 10_000)
    (fun seed ->
      let nprocs = 2 + (seed mod 5) in
      let prog =
        gen_racefree_program ~seed ~nprocs ~n_phases:4 ~ops_per_phase:20
      in
      let results =
        List.map
          (fun (name, p) ->
            (name, (p.Platform.run (make_app prog) ~nprocs).Report.checksum))
          (platforms ())
      in
      match results with
      | (_, first) :: rest -> List.for_all (fun (_, cs) -> cs = first) rest
      | [] -> false)

let test_fuzz_known_seed () =
  (* One fixed seed, checked against the sequential oracle too. *)
  let prog = gen_racefree_program ~seed:42 ~nprocs:4 ~n_phases:6 ~ops_per_phase:30 in
  let app = make_app prog in
  let oracle = Parmacs.checksum_of (Parmacs.run_sequential app) app in
  ignore oracle;
  (* (The oracle runs with nprocs = 1 semantics, which changes Read_other
     targets' ownership; platforms are compared against each other.) *)
  let results =
    List.map
      (fun (name, p) ->
        (name, (p.Platform.run (make_app prog) ~nprocs:4).Report.checksum))
      (platforms ())
  in
  match results with
  | (n0, first) :: rest ->
      List.iter
        (fun (name, cs) ->
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s = %s" name n0)
            first cs)
        rest
  | [] -> Alcotest.fail "no platforms"

let suite =
  [
    QCheck_alcotest.to_alcotest prop_all_platforms_agree;
    Alcotest.test_case "fuzz seed 42 agrees everywhere" `Quick
      test_fuzz_known_seed;
  ]
