(* Tests for the multicore run scheduler: the domain pool, the
   future-based memoized run cache, and — most importantly — the
   determinism contract: a matrix of simulations executed with --jobs 4
   must produce reports identical, field by field, to a strictly
   sequential execution, including the PR 1 golden checksums. *)

module Pool = Shm_runner.Pool
module Future = Shm_runner.Future
module Run_cache = Shm_runner.Run_cache
module Registry = Shm_apps.Registry
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report

(* ------------------------------------------------------------------ *)
(* Pool and future mechanics                                           *)

let test_sequential_pool_is_lazy () =
  let pool = Pool.create ~jobs:1 in
  let ran = Atomic.make 0 in
  let fut =
    Pool.submit pool (fun () ->
        Atomic.incr ran;
        41 + 1)
  in
  Alcotest.(check int) "not executed at submit" 0 (Atomic.get ran);
  Alcotest.(check (option int)) "peek does not force" None (Future.peek fut);
  Alcotest.(check int) "await forces inline" 42 (Future.await fut);
  Alcotest.(check int) "executed once" 1 (Atomic.get ran);
  Alcotest.(check int) "second await is cached" 42 (Future.await fut);
  Alcotest.(check int) "still executed once" 1 (Atomic.get ran);
  Pool.shutdown pool

let test_parallel_pool_runs_tasks () =
  let pool = Pool.create ~jobs:4 in
  let futs = List.init 20 (fun i -> Pool.submit pool (fun () -> i * i)) in
  let got = List.map Future.await futs in
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "all results, in submission order"
    (List.init 20 (fun i -> i * i))
    got

let test_pool_propagates_exceptions () =
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs in
      let fut = Pool.submit pool (fun () -> failwith "boom") in
      (match Future.await fut with
      | _ -> Alcotest.fail "expected Failure"
      | exception Failure m -> Alcotest.(check string) "message" "boom" m);
      Pool.shutdown pool)
    [ 1; 4 ]

let test_run_cache_executes_once () =
  let pool = Pool.create ~jobs:4 in
  let cache : (string, int) Run_cache.t = Run_cache.create pool in
  let ran = Atomic.make 0 in
  let futs =
    List.init 16 (fun _ ->
        Run_cache.find_or_submit cache "shared-key" (fun () ->
            Atomic.incr ran;
            7))
  in
  List.iter (fun f -> Alcotest.(check int) "value" 7 (Future.await f)) futs;
  Pool.shutdown pool;
  Alcotest.(check int) "shared run executed exactly once" 1 (Atomic.get ran);
  Alcotest.(check int) "one cache entry" 1 (Run_cache.length cache)

let test_run_cache_submission_order () =
  let pool = Pool.create ~jobs:2 in
  let cache : (int, int) Run_cache.t = Run_cache.create pool in
  List.iter
    (fun k -> ignore (Run_cache.find_or_submit cache k (fun () -> k)))
    [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3 ];
  let order = List.map fst (Run_cache.to_list cache) in
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "keys in first-submission order, duplicates collapsed"
    [ 3; 1; 4; 5; 9; 2; 6 ] order

(* ------------------------------------------------------------------ *)
(* Determinism: the five-app quick-scale matrix, sequential vs --jobs 4 *)

type run_id = { app : string; backend : string; n : int }

let matrix () =
  List.concat_map
    (fun (app, _) ->
      List.map
        (fun (backend, _) -> { app; backend; n = 4 })
        (Test_ranges.golden_backends ()))
    Test_ranges.goldens

let run_matrix ~jobs =
  let pool = Pool.create ~jobs in
  let cache : (run_id, Report.t) Run_cache.t = Run_cache.create pool in
  let futs =
    List.map
      (fun id ->
        let fut =
          Run_cache.find_or_submit cache id (fun () ->
              (* Build app and platform inside the task: concurrent runs
                 share nothing mutable (the isolation contract). *)
              let app = Registry.app ~scale:Registry.Quick id.app in
              let platform =
                List.assoc id.backend (Test_ranges.golden_backends ())
              in
              platform.Platform.run app ~nprocs:id.n)
        in
        (id, fut))
      (matrix ())
  in
  let reports = List.map (fun (id, fut) -> (id, Future.await fut)) futs in
  Pool.shutdown pool;
  reports

let check_report_equal id (a : Report.t) (b : Report.t) =
  let tag fmt = Printf.sprintf fmt id.app id.backend id.n in
  Alcotest.(check string) (tag "%s/%s/%d platform") a.Report.platform b.platform;
  Alcotest.(check string) (tag "%s/%s/%d app") a.Report.app b.app;
  Alcotest.(check int) (tag "%s/%s/%d nprocs") a.Report.nprocs b.nprocs;
  Alcotest.(check int) (tag "%s/%s/%d sim cycles") a.Report.cycles b.cycles;
  Alcotest.(check (float 0.0)) (tag "%s/%s/%d checksum") a.Report.checksum
    b.checksum;
  Alcotest.(check int)
    (tag "%s/%s/%d messages")
    (Report.get a "net.msgs.total")
    (Report.get b "net.msgs.total");
  Alcotest.(check int)
    (tag "%s/%s/%d kbytes")
    (Report.get a "net.bytes.total" / 1024)
    (Report.get b "net.bytes.total" / 1024);
  Alcotest.(check (list (pair string int)))
    (tag "%s/%s/%d all counters")
    (List.sort compare a.Report.counters)
    (List.sort compare b.Report.counters)

let test_parallel_matches_sequential () =
  let seq = run_matrix ~jobs:1 in
  let par = run_matrix ~jobs:4 in
  List.iter2
    (fun (id_a, ra) (id_b, rb) ->
      assert (id_a = id_b);
      check_report_equal id_a ra rb)
    seq par

let test_parallel_matches_goldens () =
  (* Reuse the PR 1 pinned checksums: a parallel execution must land on
     exactly the same digests as the sequential golden run. *)
  let par = run_matrix ~jobs:4 in
  List.iter
    (fun (id, r) ->
      let want = List.assoc id.backend (List.assoc id.app Test_ranges.goldens) in
      if r.Report.checksum <> want then
        Alcotest.failf "%s on %s (--jobs 4): got %h, pinned %h" id.app
          id.backend r.Report.checksum want)
    par

let suite =
  [
    Alcotest.test_case "jobs=1 pool is lazy and inline" `Quick
      test_sequential_pool_is_lazy;
    Alcotest.test_case "jobs=4 pool runs all tasks" `Quick
      test_parallel_pool_runs_tasks;
    Alcotest.test_case "exceptions propagate through await" `Quick
      test_pool_propagates_exceptions;
    Alcotest.test_case "shared run executes exactly once" `Quick
      test_run_cache_executes_once;
    Alcotest.test_case "cache preserves submission order" `Quick
      test_run_cache_submission_order;
    Alcotest.test_case "five-app matrix: --jobs 4 = sequential" `Slow
      test_parallel_matches_sequential;
    Alcotest.test_case "five-app matrix: --jobs 4 hits golden checksums" `Slow
      test_parallel_matches_goldens;
  ]
