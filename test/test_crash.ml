(* Whole-node crash/restart injection and failure-atomic recovery
   (DESIGN.md §13): the crash-churn matrix must recover every app to the
   crash-free answer on both SDSM families, checkpoints must be
   failure-atomic at word granularity, seeded crash schedules must
   reproduce, and platforms without a recovery story must refuse. *)

module Registry = Shm_apps.Registry
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Machines = Shm_platform.Machines
module Lifecycle = Shm_sim.Lifecycle
module Memory = Shm_memsys.Memory
module Ckpt = Shm_tmk.Ckpt

let churn =
  { Lifecycle.none with
    Lifecycle.crashes = [ (1, 500_000) ];
    ckpt_interval = 250_000 }

let run ?crash plat app ~n =
  let p = Machines.get ?crash plat in
  p.Platform.run (Registry.app ~scale:Registry.Quick app) ~nprocs:n

(* ------------------------------------------------------------------ *)
(* Crash-churn matrix: every app on both SDSM families completes with a
   node crashed and restarted mid-run, and the post-recovery checksum is
   pinned to the crash-free golden (quick scale, 4 processors). *)

let golden_quick4 =
  [
    ("sor", 0x1.70d4575719efep+8);
    ("tsp", 0x1.1f2p+11);
    ("water", 0x1.293cc893f694dp+8);
    ("m-water", 0x1.293cc893f694dp+8);
    ("ilink-clp", 0x1.0eeb716a5b77ap+5);
  ]

let test_churn_matrix () =
  List.iter
    (fun plat ->
      List.iter
        (fun (app, golden) ->
          let r = run ~crash:churn plat app ~n:4 in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s on %s post-recovery checksum" app plat)
            golden r.Report.checksum;
          let nonzero name =
            Alcotest.(check bool)
              (Printf.sprintf "%s on %s: %s > 0" app plat name)
              true
              (Report.get r name > 0)
          in
          Alcotest.(check int)
            (Printf.sprintf "%s on %s: one crash" app plat)
            1 (Report.crashes r);
          Alcotest.(check int)
            (Printf.sprintf "%s on %s: one restart" app plat)
            1 (Report.restarts r);
          nonzero "ckpt.count";
          nonzero "ckpt.bytes";
          nonzero "recovery.count";
          nonzero "recovery.cycles")
        golden_quick4)
    [ "treadmarks"; "ivy" ]

(* The same matrix crash-free must hit the same goldens — the pinned
   values above are the crash-free answers, not separate constants. *)
let test_clean_matrix_matches () =
  List.iter
    (fun plat ->
      List.iter
        (fun (app, golden) ->
          let r = run plat app ~n:4 in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s on %s crash-free checksum" app plat)
            golden r.Report.checksum;
          Alcotest.(check int)
            (Printf.sprintf "%s on %s crash-free: no crash counters" app plat)
            0
            (Report.crashes r + Report.ckpt_count r
            + Report.get r "recovery.count"))
        golden_quick4)
    [ "treadmarks"; "ivy" ]

(* ------------------------------------------------------------------ *)
(* Checkpoint delta property: after [page_delta] the image equals the
   source (failure atomicity), the cost is 0 iff the page was already
   clean, and the cost never exceeds the whole-page bound. *)

let prop_page_delta =
  let gen =
    QCheck.(
      pair
        (array_of_size (Gen.return 64) (int_bound 7))
        (array_of_size (Gen.return 64) (int_bound 7)))
  in
  QCheck.Test.make ~count:300
    ~name:"ckpt page_delta: image = src afterwards, bytes honest" gen
    (fun (a, b) ->
      let words = Array.length a in
      let src = Memory.create ~words and image = Memory.create ~words in
      Array.iteri (fun i v -> Memory.set_int src i v) a;
      Array.iteri (fun i v -> Memory.set_int image i v) b;
      let clean_before = a = b in
      let bytes =
        Ckpt.page_delta ~src ~src_base:0 ~image ~image_base:0 ~words
      in
      let restored = ref true in
      for i = 0 to words - 1 do
        if Memory.get_int image i <> Memory.get_int src i then
          restored := false
      done;
      let second =
        Ckpt.page_delta ~src ~src_base:0 ~image ~image_base:0 ~words
      in
      !restored
      && (bytes = 0) = clean_before
      && bytes <= 16 + (words * 12)
      && second = 0)

(* ------------------------------------------------------------------ *)
(* Seeded crash schedules reproduce: the same policy yields the same
   crash cycles, the same recovery work and the same cycle count. *)

let test_seeded_reproducibility () =
  let policy =
    { Lifecycle.none with Lifecycle.crash_rate = 0.5; crash_seed = 7 }
  in
  let a = run ~crash:policy "treadmarks" "sor" ~n:4 in
  let b = run ~crash:policy "treadmarks" "sor" ~n:4 in
  Alcotest.(check bool)
    "seeded draw crashes at least once" true
    (Report.crashes a > 0);
  Alcotest.(check int) "cycles reproduce" a.Report.cycles b.Report.cycles;
  Alcotest.(check (float 0.0))
    "checksum reproduces" a.Report.checksum b.Report.checksum;
  Alcotest.(check (list (pair string int)))
    "all counters reproduce" a.Report.counters b.Report.counters

(* A different seed draws a different schedule (with rate 0.5 over
   several windows the chance of identity is negligible — and the point
   is that the seed is actually consulted). *)
let test_seed_matters () =
  let policy seed =
    { Lifecycle.none with Lifecycle.crash_rate = 0.5; crash_seed = seed }
  in
  let a = run ~crash:(policy 7) "treadmarks" "sor" ~n:4 in
  let b = run ~crash:(policy 8) "treadmarks" "sor" ~n:4 in
  Alcotest.(check bool)
    "different seeds give different runs" true
    (a.Report.cycles <> b.Report.cycles
    || a.Report.counters <> b.Report.counters)

(* ------------------------------------------------------------------ *)
(* Refusals: hardware platforms refuse an active crash policy at
   [Machines.get]; the Tardis engine refuses at mount (no lease
   recovery).  An inactive policy is accepted everywhere. *)

let test_refusals () =
  List.iter
    (fun plat ->
      match Machines.get ~crash:churn plat with
      | _ -> Alcotest.failf "%s accepted an active crash policy" plat
      | exception Invalid_argument _ -> ())
    [ "dec"; "sgi"; "sgi-fast"; "ah"; "hs" ];
  (match
     run ~crash:churn "treadmarks" "sor" ~n:4
     |> fun _ -> `Ran
   with
  | `Ran -> ()
  | exception Invalid_argument msg ->
      Alcotest.failf "treadmarks refused a crash policy: %s" msg);
  (match
     let p = Machines.get ~crash:churn ~protocol:"tardis" "treadmarks" in
     p.Platform.run (Registry.app ~scale:Registry.Quick "sor") ~nprocs:4
   with
  | _ -> Alcotest.fail "tardis mounted under a crash policy"
  | exception Invalid_argument _ -> ());
  List.iter
    (fun plat ->
      ignore (Machines.get ~crash:Lifecycle.none plat : Platform.t))
    [ "dec"; "sgi"; "ah"; "hs"; "treadmarks"; "ivy" ]

let suite =
  [
    Alcotest.test_case "crash-churn matrix recovers to goldens" `Slow
      test_churn_matrix;
    Alcotest.test_case "crash-free matrix hits the same goldens" `Slow
      test_clean_matrix_matches;
    QCheck_alcotest.to_alcotest prop_page_delta;
    Alcotest.test_case "seeded crash schedule reproduces" `Quick
      test_seeded_reproducibility;
    Alcotest.test_case "crash seed is consulted" `Quick test_seed_matters;
    Alcotest.test_case "refusals: hardware and tardis" `Quick test_refusals;
  ]
