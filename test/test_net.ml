(* Tests for the network substrate: message sizing, software-overhead
   charging, wire latency/bandwidth, per-link contention. *)

module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Msg = Shm_net.Msg
module Overhead = Shm_net.Overhead
module Fabric = Shm_net.Fabric

let test_msg_sizes () =
  let s = Msg.sizes ~consistency:100 ~payload:400 () in
  Alcotest.(check int) "total" (Msg.default_header_bytes + 500)
    (Msg.total_bytes s);
  Alcotest.(check string) "class names" "miss,sync"
    (String.concat "," [ Msg.class_name Msg.Miss; Msg.class_name Msg.Sync ])

let test_overhead_presets () =
  let u = Overhead.treadmarks_user and k = Overhead.treadmarks_kernel in
  Alcotest.(check bool) "kernel cheaper" true (k.fixed_send < u.fixed_send);
  Alcotest.(check bool) "kernel handler cheaper" true (k.handler < u.handler);
  let s = Overhead.sweep ~fixed:100 ~per_word:1 in
  Alcotest.(check int) "sweep fixed" 100 s.fixed_send;
  Alcotest.(check int) "sweep per-word" 1 s.per_word;
  Alcotest.(check int) "hardware free" 0 Overhead.hardware.fixed_send

let zero_overhead_fabric ?(faults = Fabric.no_faults) eng counters ~nodes =
  Fabric.create eng counters
    { Fabric.name = "test"; latency_cycles = 100; bytes_per_cycle = 1.0;
      overhead = Overhead.hardware; faults }
    ~nodes

let test_wire_time () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fab = zero_overhead_fabric eng counters ~nodes:2 in
  let arrival = ref 0 in
  ignore
    (Engine.spawn eng ~name:"rx" ~at:0 (fun f ->
         let env = Fabric.recv fab f ~node:1 in
         arrival := Engine.clock f;
         Alcotest.(check int) "src" 0 env.Msg.src));
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         (* 32-byte header at 1 byte/cycle + 100 latency, on both links. *)
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Sync ~size:(Msg.sizes ())
           ()));
  Engine.run eng;
  (* tx occupies 32, +100 latency, rx link occupies another 32. *)
  Alcotest.(check int) "delivery time" (32 + 100 + 32) !arrival

let test_sender_released_early () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fab = zero_overhead_fabric eng counters ~nodes:2 in
  ignore
    (Engine.spawn eng ~daemon:true ~name:"rx" ~at:0 (fun f ->
         ignore (Fabric.recv fab f ~node:1)));
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Sync ~size:(Msg.sizes ())
           ();
         (* Sender resumes once the message leaves its link, not at
            delivery. *)
         Alcotest.(check int) "tx released at link drain" 32 (Engine.clock f)));
  Engine.run eng

let test_overhead_charging () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let overhead =
    { Overhead.fixed_send = 1000; fixed_recv = 2000; per_word = 10;
      handler = 0; diff_per_word = 0 }
  in
  let fab =
    Fabric.create eng counters
      { Fabric.name = "test"; latency_cycles = 0; bytes_per_cycle = 1e9;
        overhead; faults = Fabric.no_faults }
      ~nodes:2
  in
  let payload = 80 (* = 10 words *) in
  ignore
    (Engine.spawn eng ~name:"rx" ~at:0 (fun f ->
         let t0 = Engine.clock f in
         ignore (Fabric.recv fab f ~node:1);
         ignore t0;
         (* Receive charge: fixed_recv + 10 words * 10 cycles. *)
         let charged = 2000 + 100 in
         Alcotest.(check bool) "receive charged" true
           (Engine.clock f >= charged)));
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Sync
           ~size:(Msg.sizes ~payload ())
           ();
         (* Send charge: fixed_send + 10 words * 10 cycles (+ ~0 wire). *)
         Alcotest.(check bool) "send charged" true (Engine.clock f >= 1100)));
  Engine.run eng

let test_link_contention () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fab = zero_overhead_fabric eng counters ~nodes:3 in
  (* Two senders to the same destination: the rx link serializes them.
     Disjoint pairs would not contend (ATM switch). *)
  let deliveries = ref [] in
  ignore
    (Engine.spawn eng ~name:"rx" ~at:0 (fun f ->
         for _ = 1 to 2 do
           ignore (Fabric.recv fab f ~node:2);
           deliveries := Engine.clock f :: !deliveries
         done));
  for src = 0 to 1 do
    ignore
      (Engine.spawn eng ~name:(Printf.sprintf "tx%d" src) ~at:0 (fun f ->
           Fabric.send fab f ~src ~dst:2 ~class_:Msg.Sync ~size:(Msg.sizes ())
             ()))
  done;
  Engine.run eng;
  match List.sort compare !deliveries with
  | [ d1; d2 ] ->
      Alcotest.(check int) "first" 164 d1;
      (* Second message waits for the rx link: 32 cycles later. *)
      Alcotest.(check int) "second serialized" (164 + 32) d2
  | _ -> Alcotest.fail "expected two deliveries"

let test_counters () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fab = zero_overhead_fabric eng counters ~nodes:2 in
  ignore
    (Engine.spawn eng ~daemon:true ~name:"rx" ~at:0 (fun f ->
         ignore (Fabric.recv fab f ~node:1);
         ignore (Fabric.recv fab f ~node:1)));
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Miss
           ~size:(Msg.sizes ~payload:256 ())
           ();
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Sync
           ~size:(Msg.sizes ~consistency:64 ())
           ()));
  Engine.run eng;
  Alcotest.(check int) "miss msgs" 1 (Counters.get counters "net.msgs.miss");
  Alcotest.(check int) "sync msgs" 1 (Counters.get counters "net.msgs.sync");
  Alcotest.(check int) "payload bytes" 256
    (Counters.get counters "net.bytes.payload");
  Alcotest.(check int) "consistency bytes" 64
    (Counters.get counters "net.bytes.consistency");
  Alcotest.(check int) "header bytes" 64
    (Counters.get counters "net.bytes.header")

let test_offered_vs_delivered () =
  (* Accounting happens at delivery decision time: a dropped message counts
     as offered but contributes nothing to traffic counters. *)
  let eng = Engine.create () in
  let counters = Counters.create () in
  let faults = { Fabric.no_faults with Fabric.drop_miss = 1.0; fault_seed = 7 } in
  let fab = zero_overhead_fabric ~faults eng counters ~nodes:2 in
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Miss
           ~size:(Msg.sizes ~payload:256 ())
           ();
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Sync ~size:(Msg.sizes ())
           ()));
  ignore
    (Engine.spawn eng ~daemon:true ~name:"rx" ~at:0 (fun f ->
         ignore (Fabric.recv fab f ~node:1)));
  Engine.run eng;
  Alcotest.(check int) "offered" 2 (Counters.get counters "net.msgs.offered");
  Alcotest.(check int) "delivered" 1
    (Counters.get counters "net.msgs.delivered");
  Alcotest.(check int) "dropped" 1 (Counters.get counters "net.faults.dropped");
  Alcotest.(check int) "miss traffic suppressed" 0
    (Counters.get counters "net.msgs.miss");
  Alcotest.(check int) "payload bytes suppressed" 0
    (Counters.get counters "net.bytes.payload");
  Alcotest.(check int) "sync traffic delivered" 1
    (Counters.get counters "net.msgs.sync")

let test_blackout_window () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let faults =
    { Fabric.no_faults with
      Fabric.blackouts =
        [ { Fabric.bo_src = Some 0; bo_dst = None; bo_from = 0; bo_until = 50 } ]
    }
  in
  let fab = zero_overhead_fabric ~faults eng counters ~nodes:2 in
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         (* Launched at t=0: inside the outage. *)
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Sync ~size:(Msg.sizes ())
           ();
         (* Past the outage end: delivered. *)
         Engine.wait_until f 100;
         Fabric.send fab f ~src:0 ~dst:1 ~class_:Msg.Sync ~size:(Msg.sizes ())
           ()));
  ignore
    (Engine.spawn eng ~daemon:true ~name:"rx" ~at:0 (fun f ->
         ignore (Fabric.recv fab f ~node:1)));
  Engine.run eng;
  Alcotest.(check int) "blackout drop" 1
    (Counters.get counters "net.faults.blackout");
  Alcotest.(check int) "delivered after window" 1
    (Counters.get counters "net.msgs.delivered")

let test_self_send_rejected () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fab = zero_overhead_fabric eng counters ~nodes:2 in
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         Alcotest.check_raises "src = dst"
           (Invalid_argument "Fabric.send: src = dst") (fun () ->
             Fabric.send fab f ~src:0 ~dst:0 ~class_:Msg.Sync
               ~size:(Msg.sizes ()) ())));
  Engine.run eng

let suite =
  [
    Alcotest.test_case "message sizes" `Quick test_msg_sizes;
    Alcotest.test_case "overhead presets" `Quick test_overhead_presets;
    Alcotest.test_case "wire latency and bandwidth" `Quick test_wire_time;
    Alcotest.test_case "sender releases at link drain" `Quick
      test_sender_released_early;
    Alcotest.test_case "software overheads charged" `Quick
      test_overhead_charging;
    Alcotest.test_case "receive-link contention" `Quick test_link_contention;
    Alcotest.test_case "message/byte counters" `Quick test_counters;
    Alcotest.test_case "offered vs delivered accounting" `Quick
      test_offered_vs_delivered;
    Alcotest.test_case "blackout window" `Quick test_blackout_window;
    Alcotest.test_case "self-send rejected" `Quick test_self_send_rejected;
  ]
