(* Execution-time attribution: every simulated cycle of every fiber lands
   in exactly one category, instrumentation never perturbs the simulation,
   and the counter names the reporting layer reads are the names the
   subsystems actually emit. *)

module Engine = Shm_sim.Engine
module Trace = Shm_sim.Trace
module Mailbox = Shm_sim.Mailbox
module Counters = Shm_stats.Counters
module Registry = Shm_apps.Registry
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Machines = Shm_platform.Machines
module Instrument = Shm_platform.Instrument
module Fabric = Shm_net.Fabric

(* ------------------------------------------------------------------ *)
(* qcheck: per-fiber category sums equal the fiber clock for arbitrary  *)
(* nestings of scoped work.                                             *)

type op = Work of int | Scoped of Engine.category * op list

let category_gen = QCheck.Gen.oneofl Engine.categories

let op_gen =
  QCheck.Gen.(
    sized (fun n ->
        fix
          (fun self n ->
            if n = 0 then map (fun c -> Work c) (int_bound 50)
            else
              frequency
                [
                  (2, map (fun c -> Work c) (int_bound 50));
                  ( 3,
                    map2
                      (fun cat ops -> Scoped (cat, ops))
                      category_gen
                      (list_size (int_bound 4) (self (n / 2))) );
                ])
          (min n 20)))

let rec print_op = function
  | Work n -> Printf.sprintf "Work %d" n
  | Scoped (c, ops) ->
      Printf.sprintf "Scoped (%s, [%s])" (Engine.category_name c)
        (String.concat "; " (List.map print_op ops))

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_bound 8) op_gen)

let rec interp f = function
  | Work n -> Engine.advance f n
  | Scoped (cat, ops) ->
      Engine.with_category f cat (fun () -> List.iter (interp f) ops)

let prop_attribution_sums =
  QCheck.Test.make ~count:300
    ~name:"category sums equal the fiber clock (nested scopes)" ops_arb
    (fun ops ->
      let eng = Engine.create ~instrument:true () in
      let f = Engine.spawn eng ~name:"w" ~at:0 (fun f -> List.iter (interp f) ops) in
      Engine.run eng;
      Engine.check_attribution f;
      let total =
        List.fold_left (fun acc (_, v) -> acc + v) 0 (Engine.breakdown f)
      in
      total = Engine.clock f)

(* A blocked receiver's wait lands in the category it suspended under:
   exercises the [set_clock] forward-jump attribution path. *)
let test_wait_attribution () =
  let eng = Engine.create ~instrument:true () in
  let mb = Mailbox.create eng in
  let recv =
    Engine.spawn eng ~name:"recv" ~at:0 (fun f ->
        Engine.with_category f Engine.Net_wait (fun () ->
            ignore (Mailbox.recv f mb));
        Engine.advance f 10)
  in
  let _send =
    Engine.spawn eng ~name:"send" ~at:0 (fun f ->
        Engine.advance f 500;
        Mailbox.post mb ~at:(Engine.clock f) ())
  in
  Engine.run eng;
  Engine.check_attribution recv;
  let bd = Engine.breakdown recv in
  Alcotest.(check int) "recv clock" 510 (Engine.clock recv);
  Alcotest.(check int)
    "waited cycles attributed to net_wait" 500
    (List.assoc Engine.Net_wait bd);
  Alcotest.(check int) "compute remainder" 10 (List.assoc Engine.Compute bd)

(* ------------------------------------------------------------------ *)
(* The invariant holds on real runs: five applications, the software     *)
(* DSMs and the bus machine.  [Instrument.finish] raises if any fiber's  *)
(* per-category sums disagree with its clock, so a clean run IS the      *)
(* check; on top we confirm the aggregate counters cover every app       *)
(* processor's full clock.                                               *)

let bd_apps = [ "ilink-clp"; "sor"; "tsp"; "water"; "m-water" ]
let bd_platforms = [ "treadmarks"; "ivy"; "sgi" ]

let run_instrumented ?(instrument = Instrument.breakdown_only) ~platform
    ~app ~n () =
  let p = Machines.get ~instrument platform in
  p.Platform.run (Registry.app ~scale:Registry.Quick app) ~nprocs:n

let test_invariant_on_apps () =
  List.iter
    (fun platform ->
      List.iter
        (fun app ->
          let r = run_instrumented ~platform ~app ~n:4 () in
          let bd = Report.breakdown r in
          Alcotest.(check int)
            (Printf.sprintf "%s/%s: all categories reported" app platform)
            (List.length Engine.categories)
            (List.length bd);
          let total = List.fold_left (fun acc (_, v) -> acc + v) 0 bd in
          (* Aggregate over the app processors: each runs from cycle 0 to
             its own finish, the run's cycle count is the max finish. *)
          if not (total >= r.Report.cycles && total <= 4 * r.Report.cycles)
          then
            Alcotest.failf "%s/%s: aggregate %d outside [%d, %d]" app
              platform total r.Report.cycles (4 * r.Report.cycles))
        bd_apps)
    bd_platforms

(* ------------------------------------------------------------------ *)
(* Instrumentation is free: breakdown-only and full tracing leave        *)
(* cycles, checksum and every non-time counter byte-identical.           *)

let strip_time counters =
  List.filter
    (fun (name, _) ->
      String.length name < 5 || String.sub name 0 5 <> "time.")
    counters

let test_instrumentation_is_free () =
  List.iter
    (fun (platform, app) ->
      let plain = run_instrumented ~instrument:Instrument.off ~platform ~app ~n:4 () in
      let bd = run_instrumented ~platform ~app ~n:4 () in
      let tr = Trace.create () in
      let traced =
        run_instrumented ~instrument:(Instrument.with_trace tr) ~platform
          ~app ~n:4 ()
      in
      List.iter
        (fun (what, (r : Report.t)) ->
          Alcotest.(check int)
            (Printf.sprintf "%s/%s cycles (%s)" app platform what)
            plain.Report.cycles r.Report.cycles;
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s/%s checksum (%s)" app platform what)
            plain.Report.checksum r.Report.checksum;
          Alcotest.(check (list (pair string int)))
            (Printf.sprintf "%s/%s counters (%s)" app platform what)
            plain.Report.counters
            (strip_time r.Report.counters))
        [ ("breakdown", bd); ("traced", traced) ];
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s trace has spans" app platform)
        true
        (Trace.span_count tr > 0))
    [ ("treadmarks", "sor"); ("sgi", "water"); ("ivy", "tsp") ]

(* The trace file itself: one object per line, known event kinds,
   non-decreasing timestamps (the writer's documented contract, which
   `shmsim trace-check` relies on). *)
let test_trace_file_wellformed () =
  let tr = Trace.create () in
  ignore
    (run_instrumented ~instrument:(Instrument.with_trace tr)
       ~platform:"treadmarks" ~app:"sor" ~n:4 ());
  let path = Filename.temp_file "shmcs_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write_chrome_file tr path ~clock_mhz:40.0;
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let header = input_line ic in
          Alcotest.(check string) "header" "{\"traceEvents\":[" header;
          let last_ts = ref neg_infinity in
          let spans = ref 0 in
          (try
             while true do
               let line = input_line ic in
               let has re =
                 let mlen = String.length re in
                 let rec scan i =
                   i + mlen <= String.length line
                   && (String.sub line i mlen = re || scan (i + 1))
                 in
                 scan 0
               in
               if has "\"ph\":\"X\"" then incr spans;
               (* Extract the ts value: the writer emits a fixed-form
                  "ts":<float> field, one object per line. *)
               let marker = "\"ts\":" in
               let mlen = String.length marker in
               let rec find i =
                 if i + mlen > String.length line then None
                 else if String.sub line i mlen = marker then Some (i + mlen)
                 else find (i + 1)
               in
               (match find 0 with
               | None -> ()
               | Some start ->
                   let stop = ref start in
                   while
                     !stop < String.length line
                     && not (List.mem line.[!stop] [ ','; '}' ])
                   do
                     incr stop
                   done;
                   let ts =
                     float_of_string
                       (String.sub line start (!stop - start))
                   in
                   Alcotest.(check bool) "ts monotone" true (ts >= !last_ts);
                   last_ts := ts)
             done
           with End_of_file -> ());
          Alcotest.(check bool) "has spans" true (!spans > 0)))

(* ------------------------------------------------------------------ *)
(* Zero-denominator guards: an empty run must not leak NaN/inf.         *)

let empty_report =
  {
    Report.platform = "none";
    app = "empty";
    nprocs = 1;
    cycles = 0;
    clock_mhz = 40.0;
    checksum = 0.0;
    counters = [];
  }

let test_zero_denominators () =
  let r = empty_report in
  Alcotest.(check (float 0.0)) "rate on empty run" 0.0 (Report.rate r "x");
  Alcotest.(check (float 0.0))
    "speedup vs empty run" 0.0
    (Report.speedup ~base:empty_report r);
  let finite f = Float.is_finite f in
  Alcotest.(check bool) "rate finite" true (finite (Report.rate r "net.msgs.total"));
  Alcotest.(check bool)
    "speedup finite" true
    (finite (Report.speedup ~base:r r))

(* ------------------------------------------------------------------ *)
(* Strict counter lookup.                                               *)

let test_counters_strict () =
  let c = Counters.create () in
  Counters.add c "a.b" 3;
  Alcotest.(check bool) "mem hit" true (Counters.mem c "a.b");
  Alcotest.(check bool) "mem miss" false (Counters.mem c "a.c");
  Alcotest.(check int) "find hit" 3 (Counters.find c "a.b");
  Alcotest.check_raises "find miss raises"
    (Invalid_argument "Counters.find: no counter named \"a.c\" (known: a.b)")
    (fun () -> ignore (Counters.find c "a.c"))

(* Name-drift audit: every counter name the reporting layer and the bench
   tables read must be emitted by an actual run, so a rename on either
   side cannot silently start reading zero. *)
let bench_read_names =
  [
    "tmk.barriers"; "tmk.lock_remote"; "net.msgs.total"; "net.bytes.total";
    "net.msgs.miss"; "net.msgs.sync"; "net.bytes.payload";
    "net.bytes.consistency"; "net.bytes.header";
  ]

let test_counter_name_audit () =
  let emitted = Hashtbl.create 64 in
  let note (r : Report.t) =
    List.iter (fun (name, _) -> Hashtbl.replace emitted name ()) r.Report.counters
  in
  List.iter
    (fun app -> note (run_instrumented ~platform:"treadmarks" ~app ~n:4 ()))
    bd_apps;
  (* A chaos run exercises the drop/duplicate/retransmission names. *)
  let faults =
    { Fabric.no_faults with
      Fabric.drop_miss = 0.05;
      drop_sync = 0.05;
      dup_rate = 0.05;
      fault_seed = 7 }
  in
  let p = Machines.get ~faults "treadmarks" in
  note (p.Platform.run (Registry.app ~scale:Registry.Quick "sor") ~nprocs:4);
  (* Crash runs exercise the checkpoint/recovery names on both SDSM
     families (TSP invalidates and re-homes on both). *)
  let crash =
    { Shm_sim.Lifecycle.none with
      Shm_sim.Lifecycle.crashes = [ (1, 500_000) ];
      ckpt_interval = 250_000 }
  in
  List.iter
    (fun plat ->
      let p = Machines.get ~crash plat in
      note (p.Platform.run (Registry.app ~scale:Registry.Quick "tsp") ~nprocs:4))
    [ "treadmarks"; "ivy" ];
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (Printf.sprintf "%S is emitted by some subsystem" name)
        true (Hashtbl.mem emitted name))
    (Report.consumed_names @ bench_read_names
    @ List.map (fun c -> "time." ^ Engine.category_name c) Engine.categories)

(* ------------------------------------------------------------------ *)
(* Pinned golden breakdowns: the attribution of two representative runs  *)
(* is part of the repo's contract — a change here is a timing-model      *)
(* change and must be deliberate.                                        *)

let render_breakdown r =
  String.concat ","
    (List.map
       (fun (c, v) -> Printf.sprintf "%s:%d" (Engine.category_name c) v)
       (Report.breakdown r))

let golden =
  [
    ( ("treadmarks", "sor"),
      "compute:1420349,protocol:1215610,net_wait:1003995,lock_wait:0,\
       barrier_wait:1925759,diff:185899,twin:273672,mem_stall:0" );
    ( ("treadmarks", "tsp"),
      "compute:4280172,protocol:1425022,net_wait:448434,lock_wait:2207267,\
       barrier_wait:420326,diff:23701,twin:34776,mem_stall:0" );
    ( ("sgi", "sor"),
      "compute:1369023,protocol:0,net_wait:0,lock_wait:0,\
       barrier_wait:41624,diff:0,twin:0,mem_stall:110269" );
    ( ("sgi", "water"),
      "compute:32318610,protocol:0,net_wait:0,lock_wait:4160,\
       barrier_wait:24640176,diff:0,twin:0,mem_stall:157134" );
  ]

let test_golden_breakdowns () =
  List.iter
    (fun ((platform, app), expected) ->
      let r = run_instrumented ~platform ~app ~n:4 () in
      Alcotest.(check string)
        (Printf.sprintf "%s/%s breakdown" platform app)
        expected (render_breakdown r))
    golden

(* Ivy protocol-state satellite: the manager refusing an [Invalid] page
   raises a descriptive error, not [assert false].  Reaching that state
   needs a corrupted manager, so poke the exception directly. *)
let test_ivy_proto_error_printable () =
  let e =
    Shm_ivy.System.Proto_error
      { page = 3; requester = 1; manager = 0; state = "owner=-1 copyset={}" }
  in
  let s = Printexc.to_string e in
  List.iter
    (fun frag ->
      Alcotest.(check bool)
        (Printf.sprintf "message mentions %S" frag)
        true
        (let mlen = String.length frag in
         let rec scan i =
           i + mlen <= String.length s
           && (String.sub s i mlen = frag || scan (i + 1))
         in
         scan 0))
    [ "page 3"; "requester 1"; "manager 0"; "owner=-1" ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_attribution_sums;
    Alcotest.test_case "wait cycles attributed to scope" `Quick
      test_wait_attribution;
    Alcotest.test_case "invariant holds on apps x platforms" `Slow
      test_invariant_on_apps;
    Alcotest.test_case "instrumentation is free" `Slow
      test_instrumentation_is_free;
    Alcotest.test_case "trace file well-formed" `Quick
      test_trace_file_wellformed;
    Alcotest.test_case "no NaN/inf on empty runs" `Quick test_zero_denominators;
    Alcotest.test_case "strict counter lookup" `Quick test_counters_strict;
    Alcotest.test_case "counter-name audit" `Slow test_counter_name_audit;
    Alcotest.test_case "golden breakdowns" `Quick test_golden_breakdowns;
    Alcotest.test_case "ivy proto error printable" `Quick
      test_ivy_proto_error_printable;
  ]
