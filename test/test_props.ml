(* Property tests over the pure cores: diffs, vector clocks, the event
   queue, message sizing, and application building blocks. *)

module Pqueue = Shm_sim.Pqueue
module Prng = Shm_sim.Prng
module Memory = Shm_memsys.Memory
module Msg = Shm_net.Msg
module Vc = Shm_tmk.Vc
module Diff = Shm_tmk.Diff
module Layout = Shm_apps.Layout
module Water = Shm_apps.Water
module Sor = Shm_apps.Sor
module Tsp = Shm_apps.Tsp
module Ilink = Shm_apps.Ilink

let vc5 = QCheck.(array_of_size (QCheck.Gen.return 5) small_nat)

let prop_vc_partial_order =
  QCheck.Test.make ~count:200 ~name:"vc dominance is a partial order"
    QCheck.(triple vc5 vc5 vc5)
    (fun (a, b, c) ->
      Vc.dominates a a
      && ((not (Vc.dominates a b && Vc.dominates b a)) || a = b)
      && ((not (Vc.dominates a b && Vc.dominates b c)) || Vc.dominates a c))

let prop_vc_join_laws =
  QCheck.Test.make ~count:200 ~name:"vc join: idempotent, commutative, assoc"
    QCheck.(triple vc5 vc5 vc5)
    (fun (a, b, c) ->
      Vc.join a a = a
      && Vc.join a b = Vc.join b a
      && Vc.join (Vc.join a b) c = Vc.join a (Vc.join b c))

let prop_vc_sum_strictly_monotone =
  QCheck.Test.make ~count:200 ~name:"vc sum strictly monotone on dominance"
    QCheck.(pair vc5 vc5)
    (fun (a, b) ->
      (not (Vc.dominates a b && a <> b)) || Vc.sum a > Vc.sum b)

let mem_of_array a =
  let m = Memory.create ~words:(Array.length a) in
  Array.iteri (fun i v -> Memory.set_int m i v) a;
  m

let small_page = QCheck.(array_of_size (QCheck.Gen.return 64) (int_bound 8))

let prop_diff_identical_is_empty =
  QCheck.Test.make ~count:100 ~name:"diff of identical page is empty"
    small_page
    (fun a ->
      let twin = mem_of_array a in
      let mem = mem_of_array a in
      Diff.is_empty (Diff.make ~page:0 ~twin ~current:mem ~base:0 ~words:64))

let prop_diff_apply_idempotent =
  QCheck.Test.make ~count:100 ~name:"diff application is idempotent"
    QCheck.(pair small_page small_page)
    (fun (before, after) ->
      let twin = mem_of_array before in
      let mem = mem_of_array after in
      let d = Diff.make ~page:0 ~twin ~current:mem ~base:0 ~words:64 in
      let m1 = mem_of_array before in
      Diff.apply d m1 ~base:0;
      let once = Array.init 64 (Memory.get_int m1) in
      Diff.apply d m1 ~base:0;
      let twice = Array.init 64 (Memory.get_int m1) in
      once = twice)

let prop_diff_twin_apply_matches =
  QCheck.Test.make ~count:100 ~name:"apply_to_twin matches apply"
    QCheck.(pair small_page small_page)
    (fun (before, after) ->
      let twin = mem_of_array before in
      let mem = mem_of_array after in
      let d = Diff.make ~page:0 ~twin ~current:mem ~base:0 ~words:64 in
      let tw = mem_of_array before in
      Diff.apply_to_twin d tw;
      let m = mem_of_array before in
      Diff.apply d m ~base:0;
      Memory.equal_range tw m ~pos:0 ~len:64)

let prop_diff_words_bound =
  QCheck.Test.make ~count:100 ~name:"diff carries at most the changed words"
    QCheck.(pair small_page small_page)
    (fun (before, after) ->
      let changed = ref 0 in
      Array.iteri (fun i v -> if v <> after.(i) then incr changed) before;
      let twin = mem_of_array before in
      let mem = mem_of_array after in
      let d = Diff.make ~page:0 ~twin ~current:mem ~base:0 ~words:64 in
      Diff.words d = !changed && Diff.bytes d >= 16)

let prop_pqueue_sorts =
  QCheck.Test.make ~count:100 ~name:"pqueue pops a sorted sequence"
    QCheck.(small_list small_nat)
    (fun times ->
      let q = Pqueue.create ~dummy:0 in
      List.iter (fun time -> Pqueue.push q ~time time) times;
      let out = ref [] in
      while not (Pqueue.is_empty q) do
        out := fst (Pqueue.pop q) :: !out
      done;
      List.rev !out = List.sort compare times)

(* Observational equivalence of the timing wheel against a naive stable
   reference queue.  Generated scripts interleave pushes and pops; push
   times mix same-tick ties (FIFO order must hold), small steps that stay
   in wheel level 0, strides that land in levels 1-2, and far-future
   outliers that take the heap tier.  Because pops advance the wheel's
   internal horizon, later small pushes also exercise the past-time heap
   path.  Pop results, peeked minima and lengths must match the reference
   at every step. *)
let prop_pqueue_wheel_matches_reference =
  let time_gen =
    QCheck.Gen.(
      frequency
        [
          (4, int_bound 300);
          (3, int_bound 0x20000);
          (2, int_bound 0x2000000);
          (1, int_bound 0x20000000);
        ])
  in
  let arb_ops =
    QCheck.make
      ~print:(fun ops ->
        String.concat "; "
          (List.map
             (function
               | true, t -> "push " ^ string_of_int t
               | false, _ -> "pop")
             ops))
      QCheck.Gen.(list_size (int_bound 400) (pair bool time_gen))
  in
  QCheck.Test.make ~count:200
    ~name:"timing wheel matches stable reference queue (FIFO ties)" arb_ops
    (fun ops ->
      let q = Pqueue.create ~dummy:(-1) in
      (* Reference: (time, seq) pairs; min is lexicographic (time, seq),
         which is exactly FIFO order among equal times. *)
      let reference = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun (is_push, t) ->
          (if is_push then begin
             Pqueue.push q ~time:t !seq;
             reference := (t, !seq) :: !reference;
             incr seq
           end
           else
             let best =
               List.fold_left
                 (fun best (t, s) ->
                   match best with
                   | Some (bt, bs) when bt < t || (bt = t && bs < s) -> best
                   | _ -> Some (t, s))
                 None !reference
             in
             match best with
             | None -> if not (Pqueue.is_empty q) then ok := false
             | Some (bt, bs) ->
                 let time, v = Pqueue.pop q in
                 if time <> bt || v <> bs then ok := false;
                 reference := List.filter (fun (_, s) -> s <> bs) !reference);
          let rmin =
            List.fold_left (fun acc (t, _) -> min acc t) max_int !reference
          in
          if Pqueue.min_time_exn q <> rmin then ok := false;
          if Pqueue.length q <> List.length !reference then ok := false)
        ops;
      !ok)

let prop_msg_total =
  QCheck.Test.make ~count:100 ~name:"message size totals add up"
    QCheck.(pair small_nat small_nat)
    (fun (c, p) ->
      let s = Msg.sizes ~consistency:c ~payload:p () in
      Msg.total_bytes s = Msg.default_header_bytes + c + p)

let prop_layout_aligned =
  QCheck.Test.make ~count:100 ~name:"aligned allocations are aligned"
    QCheck.(small_list (pair (int_range 1 100) bool))
    (fun allocs ->
      let l = Layout.create () in
      List.for_all
        (fun (words, aligned) ->
          if aligned then Layout.alloc_aligned l words ~align:512 mod 512 = 0
          else Layout.alloc l words >= 0)
        allocs)

let prop_tsp_distances_symmetric =
  QCheck.Test.make ~count:30 ~name:"tsp instances are symmetric and positive"
    QCheck.(int_range 1 200)
    (fun seed ->
      let p = { (Tsp.params_n 8) with Tsp.seed } in
      (* Probe via the public app: the init writes the matrix. *)
      let app = Tsp.make p in
      let mem = Memory.create ~words:app.Shm_parmacs.Parmacs.shared_words in
      app.Shm_parmacs.Parmacs.init mem;
      let ok = ref true in
      for i = 0 to 7 do
        for j = 0 to 7 do
          let d = Memory.get_int mem ((i * 8) + j) in
          if i <> j && d <= 0 then ok := false;
          if d <> Memory.get_int mem ((j * 8) + i) then ok := false
        done
      done;
      !ok)

let test_water_pair_cost_is_positive () =
  let p = Water.default_params Water.Batched in
  Alcotest.(check bool) "pair cost sane" true (p.Water.pair_cycles > 0)

let prop_ilink_costs_positive =
  QCheck.Test.make ~count:30 ~name:"ilink family costs are positive"
    QCheck.(int_range 1 100)
    (fun seed ->
      let p = { (Ilink.default_params Ilink.Bad) with Ilink.seed } in
      Array.for_all (fun c -> c > 0) (Ilink.family_costs p))

let prop_sor_stays_bounded =
  QCheck.Test.make ~count:10 ~name:"sor stays within boundary values"
    QCheck.(int_range 1 8)
    (fun iters ->
      let p = { Sor.default_params with rows = 16; cols = 16; iters } in
      let app = Sor.make p in
      let mem = Shm_parmacs.Parmacs.run_sequential app in
      (* Every interior point lies in [0, 1]: convex combinations of a hot
         boundary (1.0) and a cold interior (0.0). *)
      let ok = ref true in
      for i = 1 to 16 do
        for j = 1 to 14 do
          let v = Memory.get_float mem ((i * 16) + j) in
          if v < -1e-12 || v > 1.0 +. 1e-12 then ok := false
        done
      done;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_vc_partial_order;
    QCheck_alcotest.to_alcotest prop_vc_join_laws;
    QCheck_alcotest.to_alcotest prop_vc_sum_strictly_monotone;
    QCheck_alcotest.to_alcotest prop_diff_identical_is_empty;
    QCheck_alcotest.to_alcotest prop_diff_apply_idempotent;
    QCheck_alcotest.to_alcotest prop_diff_twin_apply_matches;
    QCheck_alcotest.to_alcotest prop_diff_words_bound;
    QCheck_alcotest.to_alcotest prop_pqueue_sorts;
    QCheck_alcotest.to_alcotest prop_pqueue_wheel_matches_reference;
    QCheck_alcotest.to_alcotest prop_msg_total;
    QCheck_alcotest.to_alcotest prop_layout_aligned;
    QCheck_alcotest.to_alcotest prop_tsp_distances_symmetric;
    Alcotest.test_case "water pair cost" `Quick test_water_pair_cost_is_positive;
    QCheck_alcotest.to_alcotest prop_ilink_costs_positive;
    QCheck_alcotest.to_alcotest prop_sor_stays_bounded;
  ]
