(* Tests for counters, table rendering and the latency histogram. *)

module Counters = Shm_stats.Counters
module Table = Shm_stats.Table
module Hist = Shm_stats.Hist

let test_counters_basic () =
  let c = Counters.create () in
  Counters.incr c "a";
  Counters.add c "a" 4;
  Counters.add c "b" 10;
  Alcotest.(check int) "a" 5 (Counters.get c "a");
  Alcotest.(check int) "b" 10 (Counters.get c "b");
  Alcotest.(check int) "missing is zero" 0 (Counters.get c "zzz")

let test_counters_merge_reset () =
  let a = Counters.create () and b = Counters.create () in
  Counters.add a "x" 1;
  Counters.add b "x" 2;
  Counters.add b "y" 3;
  Counters.merge ~into:a b;
  Alcotest.(check (list (pair string int)))
    "merged sorted"
    [ ("x", 3); ("y", 3) ]
    (Counters.to_list a);
  Counters.reset a;
  Alcotest.(check int) "reset" 0 (Counters.get a "x")

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 1 = "T");
  let index_of needle =
    let n = String.length needle and len = String.length s in
    let rec go i =
      if i + n > len then -1
      else if String.sub s i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "row order preserved" true
    (let a = index_of "alpha" and b = index_of "22" in
     a >= 0 && b >= 0 && a < b)

let test_table_arity () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "only-one" ])

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "digits" "3.1416" (Table.cell_f ~digits:4 3.14159);
  Alcotest.(check string) "int" "42" (Table.cell_i 42);
  Alcotest.(check string) "speedup" "7.40" (Table.cell_speedup 7.4)

(* ------------------------------------------------------------------ *)
(* Latency histogram (DESIGN.md §14)                                   *)

(* Small values are exact: every bucket below [2 * subbuckets] holds a
   single value, so percentiles there are not approximations. *)
let test_hist_small_exact () =
  let h = Hist.create () in
  for v = 0 to (2 * Hist.subbuckets) - 1 do
    Hist.record h v;
    Alcotest.(check (pair int int))
      (Printf.sprintf "bounds of %d" v)
      (v, v)
      (Hist.bounds (Hist.bucket_of v))
  done;
  Alcotest.(check int) "p50 exact" 15 (Hist.percentile h 50.0);
  Alcotest.(check int) "p100 exact" 31 (Hist.percentile h 100.0)

(* Above the exact range, [bucket_of] must land every value inside its
   bucket's [lo, hi] and consecutive buckets must tile the axis. *)
let test_hist_bucket_boundaries () =
  List.iter
    (fun v ->
      let lo, hi = Hist.bounds (Hist.bucket_of v) in
      Alcotest.(check bool)
        (Printf.sprintf "%d in [%d, %d]" v lo hi)
        true
        (lo <= v && v <= hi))
    [ 32; 33; 63; 64; 100; 1_000; 65_535; 65_536; 1_000_000; max_int / 2 ];
  for i = 0 to 500 do
    let _, hi = Hist.bounds i in
    let lo', _ = Hist.bounds (i + 1) in
    Alcotest.(check int) (Printf.sprintf "bucket %d tiles" i) (hi + 1) lo'
  done

(* The relative error bound: with 16 sub-buckets per octave, a reported
   percentile is within 6.25% of the true value. *)
let test_hist_error_bound () =
  let h = Hist.create () in
  List.iter (fun v -> Hist.record h v) [ 1_000; 10_000; 100_000 ];
  List.iteri
    (fun i v ->
      let p = float_of_int (i + 1) /. 3.0 *. 100.0 in
      let got = Hist.percentile h p in
      Alcotest.(check bool)
        (Printf.sprintf "P%.0f ~ %d (got %d)" p v got)
        true
        (float_of_int (abs (got - v)) <= 0.0625 *. float_of_int v))
    [ 1_000; 10_000; 100_000 ];
  (* The top percentile is clamped to the exact recorded maximum. *)
  Alcotest.(check int) "p100 is the exact max" 100_000
    (Hist.percentile h 100.0)

let test_hist_merge () =
  let a = Hist.create () and b = Hist.create () and all = Hist.create () in
  List.iter
    (fun v ->
      Hist.record all v;
      Hist.record (if v mod 2 = 0 then a else b) v)
    [ 3; 17; 400; 9_000; 123_456; 7; 88 ];
  Hist.merge ~into:a b;
  Alcotest.(check bool) "merge = record-all" true (Hist.equal a all);
  Alcotest.(check int) "count" 7 (Hist.count a);
  Alcotest.(check int) "max" 123_456 (Hist.max_value a);
  Alcotest.(check int) "min" 3 (Hist.min_value a)

let prop_hist_percentile_monotone =
  QCheck.Test.make ~count:200 ~name:"hist: percentiles are monotone in p"
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 50) (int_bound 2_000_000))
              (pair (int_bound 999) (int_bound 999)))
    (fun (vs, (pa, pb)) ->
      let h = Hist.create () in
      List.iter (Hist.record h) vs;
      let pa = 0.1 +. (float_of_int pa /. 10.0)
      and pb = 0.1 +. (float_of_int pb /. 10.0) in
      let lo = min pa pb and hi = max pa pb in
      Hist.percentile h lo <= Hist.percentile h hi)

let prop_hist_merge_assoc =
  QCheck.Test.make ~count:100 ~name:"hist: merge is associative"
    QCheck.(triple (small_list (int_bound 1_000_000))
              (small_list (int_bound 1_000_000))
              (small_list (int_bound 1_000_000)))
    (fun (xs, ys, zs) ->
      let mk vs =
        let h = Hist.create () in
        List.iter (Hist.record h) vs;
        h
      in
      (* (x <- y) <- z  vs  x <- (y <- z) *)
      let left = mk xs in
      Hist.merge ~into:left (mk ys);
      Hist.merge ~into:left (mk zs);
      let yz = mk ys in
      Hist.merge ~into:yz (mk zs);
      let right = mk xs in
      Hist.merge ~into:right yz;
      Hist.equal left right)

(* The recorder must be allocation-free on the hot path: recording into
   an existing histogram does zero minor-heap allocation, so it can sit
   inside the per-request loop of a simulated server without perturbing
   GC behaviour. *)
let test_hist_zero_alloc () =
  let h = Hist.create () in
  Hist.record h 1;
  let before = Gc.minor_words () in
  for v = 0 to 9_999 do
    Hist.record h (v * 37)
  done;
  let allocated = Gc.minor_words () -. before in
  (* Allow a tiny constant slack for the measurement itself. *)
  Alcotest.(check bool)
    (Printf.sprintf "10k records allocated %.0f words" allocated)
    true (allocated < 256.0)

let suite =
  [
    Alcotest.test_case "counters add/get" `Quick test_counters_basic;
    Alcotest.test_case "counters merge/reset" `Quick test_counters_merge_reset;
    Alcotest.test_case "table renders rows in order" `Quick test_table_render;
    Alcotest.test_case "table rejects wrong arity" `Quick test_table_arity;
    Alcotest.test_case "cell formatting" `Quick test_cells;
    Alcotest.test_case "hist: small values exact" `Quick test_hist_small_exact;
    Alcotest.test_case "hist: bucket boundaries tile" `Quick
      test_hist_bucket_boundaries;
    Alcotest.test_case "hist: bounded relative error" `Quick
      test_hist_error_bound;
    Alcotest.test_case "hist: merge equals record-all" `Quick test_hist_merge;
    QCheck_alcotest.to_alcotest prop_hist_percentile_monotone;
    QCheck_alcotest.to_alcotest prop_hist_merge_assoc;
    Alcotest.test_case "hist: recording is allocation-free" `Quick
      test_hist_zero_alloc;
  ]
