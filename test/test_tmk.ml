(* Protocol-level tests of the TreadMarks lazy-release-consistency engine:
   propagation through locks and barriers, multiple-writer merging, lazy
   staleness, eager release, fault merging, and protocol invariants. *)

module Engine = Shm_sim.Engine
module Prng = Shm_sim.Prng
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Vc = Shm_tmk.Vc
module Diff = Shm_tmk.Diff
module Record = Shm_tmk.Record
module Config = Shm_tmk.Config
module System = Shm_tmk.System

type cluster = {
  eng : Engine.t;
  sys : System.t;
  counters : Counters.t;
}

let make_cluster ?(eager_locks = []) ~nodes ~shared_words () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fabric =
    Fabric.create eng counters
      (Fabric.atm_dec ~overhead:Overhead.treadmarks_user)
      ~nodes
  in
  let memories = Array.init nodes (fun _ -> Memory.create ~words:shared_words) in
  let cfg = { (Config.default ~n_nodes:nodes ~shared_words) with eager_locks } in
  let sys = System.create eng counters fabric cfg ~memories in
  System.start sys;
  { eng; sys; counters }

let spawn_node c ~node body =
  ignore
    (Engine.spawn c.eng ~name:(Printf.sprintf "node%d" node) ~at:0 (fun f ->
         body f))

let read c f ~node addr =
  System.read_guard c.sys f ~node addr;
  Memory.get_int (System.memory c.sys ~node) addr

let write c f ~node addr v =
  System.write_guard c.sys f ~node addr;
  Memory.set_int (System.memory c.sys ~node) addr v

let test_lock_counter () =
  let nodes = 4 in
  let c = make_cluster ~nodes ~shared_words:1024 () in
  let final = ref (-1) in
  for node = 0 to nodes - 1 do
    spawn_node c ~node (fun f ->
        for _ = 1 to 10 do
          System.acquire c.sys f ~node ~lock:3;
          let v = read c f ~node 0 in
          write c f ~node 0 (v + 1);
          System.release c.sys f ~node ~lock:3
        done;
        System.barrier_arrive c.sys f ~node ~id:0;
        if node = 0 then final := read c f ~node 0)
  done;
  Engine.run c.eng;
  Alcotest.(check int) "all increments visible" 40 !final;
  System.check_invariants c.sys

let test_barrier_propagation () =
  let nodes = 3 in
  let c = make_cluster ~nodes ~shared_words:4096 () in
  let sums = Array.make nodes 0 in
  for node = 0 to nodes - 1 do
    spawn_node c ~node (fun f ->
        if node = 0 then
          for i = 0 to 99 do
            write c f ~node i (i * i)
          done;
        System.barrier_arrive c.sys f ~node ~id:0;
        let s = ref 0 in
        for i = 0 to 99 do
          s := !s + read c f ~node i
        done;
        sums.(node) <- !s)
  done;
  Engine.run c.eng;
  let expected = ref 0 in
  for i = 0 to 99 do
    expected := !expected + (i * i)
  done;
  Array.iteri
    (fun n s -> Alcotest.(check int) (Printf.sprintf "node %d sum" n) !expected s)
    sums;
  System.check_invariants c.sys

(* Two nodes write disjoint halves of the same page between barriers: the
   multiple-writer protocol must merge both sets of writes everywhere. *)
let test_multiple_writer_merge () =
  let nodes = 2 in
  let c = make_cluster ~nodes ~shared_words:1024 () in
  let ok = Array.make nodes false in
  for node = 0 to nodes - 1 do
    spawn_node c ~node (fun f ->
        let base = if node = 0 then 0 else 256 in
        for i = 0 to 255 do
          write c f ~node (base + i) ((node * 1000) + i)
        done;
        System.barrier_arrive c.sys f ~node ~id:0;
        let good = ref true in
        for i = 0 to 255 do
          if read c f ~node i <> i then good := false;
          if read c f ~node (256 + i) <> 1000 + i then good := false
        done;
        ok.(node) <- !good)
  done;
  Engine.run c.eng;
  Array.iteri
    (fun n g -> Alcotest.(check bool) (Printf.sprintf "node %d merged" n) true g)
    ok;
  System.check_invariants c.sys

(* LRC is lazy: without an acquire, a node keeps reading its stale copy. *)
let test_lazy_staleness () =
  let c = make_cluster ~nodes:2 ~shared_words:1024 () in
  let observed = ref (-1) in
  spawn_node c ~node:0 (fun f ->
      System.acquire c.sys f ~node:0 ~lock:0;
      write c f ~node:0 0 7;
      System.release c.sys f ~node:0 ~lock:0;
      System.barrier_arrive c.sys f ~node:0 ~id:0);
  spawn_node c ~node:1 (fun f ->
      (* Wait long enough that node 0's release has surely happened. *)
      Engine.wait_until f 100_000_000;
      observed := read c f ~node:1 0;
      System.barrier_arrive c.sys f ~node:1 ~id:0);
  Engine.run c.eng;
  Alcotest.(check int) "unsynchronized read stays stale" 0 !observed

(* With an eager lock the release pushes the new value everywhere. *)
let test_eager_release_propagates () =
  let c = make_cluster ~eager_locks:[ 0 ] ~nodes:2 ~shared_words:1024 () in
  let observed = ref (-1) in
  spawn_node c ~node:0 (fun f ->
      System.acquire c.sys f ~node:0 ~lock:0;
      write c f ~node:0 0 7;
      System.release c.sys f ~node:0 ~lock:0;
      System.barrier_arrive c.sys f ~node:0 ~id:0);
  spawn_node c ~node:1 (fun f ->
      Engine.wait_until f 100_000_000;
      observed := read c f ~node:1 0;
      System.barrier_arrive c.sys f ~node:1 ~id:0);
  Engine.run c.eng;
  Alcotest.(check int) "eager release pushed the update" 7 !observed

(* A lock whose token is already on-node costs no messages. *)
let test_token_locality () =
  let c = make_cluster ~nodes:2 ~shared_words:1024 () in
  spawn_node c ~node:0 (fun f ->
      (* Lock 0's manager is node 0, so every acquire is local. *)
      for _ = 1 to 5 do
        System.acquire c.sys f ~node:0 ~lock:0;
        System.release c.sys f ~node:0 ~lock:0
      done;
      System.barrier_arrive c.sys f ~node:0 ~id:0);
  spawn_node c ~node:1 (fun f -> System.barrier_arrive c.sys f ~node:1 ~id:0);
  Engine.run c.eng;
  Alcotest.(check int) "local acquires" 5 (Counters.get c.counters "tmk.lock_local");
  Alcotest.(check int) "no remote acquires" 0
    (Counters.get c.counters "tmk.lock_remote")

(* Two processors of the same (HS-style) node faulting on one page merge
   into a single fetch. *)
let test_fault_merging () =
  let c = make_cluster ~nodes:2 ~shared_words:1024 () in
  let vals = ref [] in
  spawn_node c ~node:0 (fun f ->
      write c f ~node:0 0 41;
      System.barrier_arrive c.sys f ~node:0 ~id:0);
  (* Node 1 has two processor fibers; only one calls the barrier (as the
     platform would do for an SMP node). *)
  let arrived = ref false in
  for cpu = 0 to 1 do
    ignore
      (Engine.spawn c.eng ~name:(Printf.sprintf "n1cpu%d" cpu) ~at:0 (fun f ->
           if not !arrived then begin
             arrived := true;
             System.barrier_arrive c.sys f ~node:1 ~id:0
           end
           else Engine.wait_until f 200_000_000;
           vals := read c f ~node:1 0 :: !vals))
  done;
  Engine.run c.eng;
  Alcotest.(check (list int)) "both read the value" [ 41; 41 ] !vals;
  Alcotest.(check int) "one page fault" 1 (Counters.get c.counters "tmk.faults")

(* Runs with identical inputs produce identical timing and counters. *)
let test_protocol_determinism () =
  let run () =
    let c = make_cluster ~nodes:4 ~shared_words:8192 () in
    let rng = Prng.create ~seed:11 in
    let plan =
      Array.init 4 (fun _ ->
          Array.init 20 (fun _ -> (Prng.int rng 1000, Prng.int rng 4)))
    in
    for node = 0 to 3 do
      spawn_node c ~node (fun f ->
          Array.iter
            (fun (addr, lck) ->
              System.acquire c.sys f ~node ~lock:lck;
              let v = read c f ~node addr in
              write c f ~node addr (v + 1);
              System.release c.sys f ~node ~lock:lck)
            plan.(node);
          System.barrier_arrive c.sys f ~node ~id:0)
    done;
    Engine.run c.eng;
    (Engine.now c.eng, Counters.to_list c.counters)
  in
  let t1, c1 = run () and t2, c2 = run () in
  Alcotest.(check int) "same final time" t1 t2;
  Alcotest.(check (list (pair string int))) "same counters" c1 c2

(* After a barrier every node's copy of the whole shared space is
   word-for-word identical (qcheck over random write patterns). *)
let prop_barrier_converges =
  QCheck.Test.make ~count:30 ~name:"barrier converges all copies"
    QCheck.(pair small_int (small_list (pair small_nat small_nat)))
    (fun (seed, _) ->
      let nodes = 3 in
      let shared_words = 2048 in
      let c = make_cluster ~nodes ~shared_words () in
      let rng = Prng.create ~seed in
      let plans =
        Array.init nodes (fun node ->
            Array.init 30 (fun _ ->
                (* Disjoint word ranges per node to stay data-race-free. *)
                let addr = Prng.int rng 600 in
                ((node * 640) + addr, Prng.int rng 1_000_000)))
      in
      for node = 0 to nodes - 1 do
        spawn_node c ~node (fun f ->
            Array.iter (fun (addr, v) -> write c f ~node addr v) plans.(node);
            System.barrier_arrive c.sys f ~node ~id:0;
            (* Touch every page to revalidate before comparing. *)
            for p = 0 to (shared_words / 512) - 1 do
              ignore (read c f ~node (p * 512))
            done;
            System.barrier_arrive c.sys f ~node ~id:1)
      done;
      Engine.run c.eng;
      let m0 = System.memory c.sys ~node:0 in
      let ok = ref true in
      for n = 1 to nodes - 1 do
        let mn = System.memory c.sys ~node:n in
        if not (Memory.equal_range m0 mn ~pos:0 ~len:shared_words) then
          ok := false
      done;
      System.check_invariants c.sys;
      !ok)

(* Reading after revalidation applies exactly the written values. *)
let prop_diff_roundtrip =
  QCheck.Test.make ~count:100 ~name:"diff make/apply roundtrip"
    QCheck.(small_list (pair small_nat (int_bound 1000)))
    (fun writes ->
      let words = 128 in
      let twin = Memory.create ~words in
      for i = 0 to words - 1 do
        Memory.set_int twin i i
      done;
      let mem = Memory.create ~words in
      Memory.copy_all ~src:twin ~dst:mem;
      List.iter
        (fun (off, v) -> Memory.set_int mem (off mod words) (v + 2000))
        writes;
      let diff = Diff.make ~page:0 ~twin ~current:mem ~base:0 ~words in
      (* Apply onto a fresh copy of the twin. *)
      let mem2 = Memory.create ~words in
      Memory.copy_all ~src:twin ~dst:mem2;
      Diff.apply diff mem2 ~base:0;
      Memory.equal_range mem mem2 ~pos:0 ~len:words)

let prop_vc_join_lub =
  QCheck.Test.make ~count:200 ~name:"vc join is the least upper bound"
    QCheck.(pair (array_of_size (QCheck.Gen.return 5) small_nat)
              (array_of_size (QCheck.Gen.return 5) small_nat))
    (fun (a, b) ->
      let j = Vc.join a b in
      Vc.dominates j a && Vc.dominates j b
      && Array.for_all2 (fun x y -> x = max y (j.(0) * 0) || true) j a
      && Vc.sum j <= Vc.sum a + Vc.sum b)

let test_record_store () =
  let s = Record.Store.create ~nodes:2 in
  let mk seqno = { Record.creator = 1; seqno; vc = [| 0; seqno |]; pages = [ 0 ] } in
  Alcotest.(check bool) "add new" true (Record.Store.add s (mk 1));
  Alcotest.(check bool) "add dup" false (Record.Store.add s (mk 1));
  ignore (Record.Store.add s (mk 2));
  ignore (Record.Store.add s (mk 4));
  Alcotest.(check int) "contiguous stops at gap" 2
    (Record.Store.contiguous s ~creator:1);
  let r = Record.Store.range s ~creator:1 ~lo:0 ~hi:2 in
  Alcotest.(check (list int)) "range seqnos" [ 1; 2 ]
    (List.map (fun (x : Record.t) -> x.seqno) r);
  Alcotest.check_raises "gap raises"
    (Invalid_argument "Record.Store.range: creator 1 missing seq 3")
    (fun () -> ignore (Record.Store.range s ~creator:1 ~lo:0 ~hi:4))

let suite =
  [
    Alcotest.test_case "lock-protected counter" `Quick test_lock_counter;
    Alcotest.test_case "barrier propagates writes" `Quick test_barrier_propagation;
    Alcotest.test_case "multiple-writer pages merge" `Quick
      test_multiple_writer_merge;
    Alcotest.test_case "unsynchronized reads stay stale" `Quick
      test_lazy_staleness;
    Alcotest.test_case "eager release propagates" `Quick
      test_eager_release_propagates;
    Alcotest.test_case "on-node token costs no messages" `Quick
      test_token_locality;
    Alcotest.test_case "same-node faults merge" `Quick test_fault_merging;
    Alcotest.test_case "protocol is deterministic" `Quick
      test_protocol_determinism;
    QCheck_alcotest.to_alcotest prop_barrier_converges;
    QCheck_alcotest.to_alcotest prop_diff_roundtrip;
    QCheck_alcotest.to_alcotest prop_vc_join_lub;
    Alcotest.test_case "record store ranges" `Quick test_record_store;
  ]
