(* The pluggable-protocol layer: every registered engine must be a
   drop-in replacement semantically — same application results as the
   reference engine — even though timing, message counts and the
   resulting cycle counts legitimately differ.

   One documented exception: Water (the original, per-pair-locked
   variant) accumulates floating-point forces under molecule locks, so
   its last few result bits depend on the order processors win those
   locks.  An engine that shifts timing enough to reorder two grants
   changes the sum's association order — not its members.  The integer
   contention patterns (migratory, producer-consumer, false-sharing,
   read-mostly) are order-insensitive and must match bit-for-bit, which
   pins down that no engine loses or corrupts an update; Water is
   compared within a small relative tolerance instead. *)

module Parmacs = Shm_parmacs.Parmacs
module Registry = Shm_apps.Registry
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Machines = Shm_platform.Machines

let paper_apps = [ "sor"; "tsp"; "water"; "m-water"; "ilink-clp" ]
let sdsm_engines = [ "lrc"; "eager-lrc"; "erc"; "ivy"; "tardis" ]
let reference = "lrc"

let run ~protocol ~app ~nprocs =
  let a = Registry.app ~scale:Registry.Quick app in
  (Machines.get ~protocol "treadmarks").Platform.run a ~nprocs

(* Memoised reference results so the property does not rerun the same
   (app, nprocs) reference simulation for every candidate engine. *)
let ref_memo : (string * int, Report.t) Hashtbl.t = Hashtbl.create 16

let reference_run ~app ~nprocs =
  match Hashtbl.find_opt ref_memo (app, nprocs) with
  | Some r -> r
  | None ->
      let r = run ~protocol:reference ~app ~nprocs in
      Hashtbl.add ref_memo (app, nprocs) r;
      r

let checksums_agree ~app a b =
  if app = "water" then
    Float.abs (a -. b) <= 1e-4 *. Float.abs b
  else a = b

let prop_engines_match_reference =
  QCheck.Test.make ~count:10
    ~name:"proto: every engine reproduces the reference results"
    QCheck.(triple (int_bound 4) (int_bound 3) bool)
    (fun (app_i, eng_i, wide) ->
      let app = List.nth paper_apps app_i in
      let protocol = List.nth (List.tl sdsm_engines) eng_i in
      let nprocs = if wide then 4 else 2 in
      let expect = (reference_run ~app ~nprocs).Report.checksum in
      let got = (run ~protocol ~app ~nprocs).Report.checksum in
      if not (checksums_agree ~app got expect) then
        QCheck.Test.fail_reportf
          "%s on %s at %d procs: checksum %h, reference %h" app protocol
          nprocs got expect
      else true)

(* Golden cycle counts and checksums for the two engines this layer
   introduced, at the canonical 4-processor quick-scale runs.  Timing
   regressions or semantic drift in either engine show up here first. *)

let golden_tardis =
  [
    ("sor", 3_915_959, 0x1.70d4575719efep+8);
    ("tsp", 4_682_859, 0x1.1f2p+11);
    ("water", 155_927_757, 0x1.293cc893f694dp+8);
    ("m-water", 18_453_868, 0x1.293cc893f694dp+8);
    ("ilink-clp", 9_722_988, 0x1.0eeb716a5b77ap+5);
  ]

(* Water's checksum here matches the reference engine bit-for-bit: since
   eager updates ride the ordered notice/fault machinery (they used to be
   patched into memory on arrival, which could reorder against other
   intervals), the force-accumulation order no longer drifts. *)
let golden_eager_lrc =
  [
    ("sor", 1_719_081, 0x1.70d4575719efep+8);
    ("tsp", 2_079_699, 0x1.1f2p+11);
    ("water", 74_101_331, 0x1.293cc893f694dp+8);
    ("m-water", 19_534_657, 0x1.293cc893f694dp+8);
    ("ilink-clp", 6_915_444, 0x1.0eeb716a5b77ap+5);
  ]

let check_goldens ~protocol goldens () =
  List.iter
    (fun (app, cycles, checksum) ->
      let r = run ~protocol ~app ~nprocs:4 in
      Alcotest.(check int)
        (Printf.sprintf "%s %s cycles" protocol app)
        cycles r.Report.cycles;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "%s %s checksum" protocol app)
        checksum r.Report.checksum)
    goldens

(* The integer contention patterns are associative-commutative, so they
   must agree bit-for-bit on every engine: any difference is a lost or
   corrupted update, not reordering. *)
let test_patterns_exact () =
  List.iter
    (fun app ->
      let a = Registry.app ~scale:Registry.Quick app in
      let expect =
        ((Machines.get ~protocol:reference "treadmarks").Platform.run a
           ~nprocs:4)
          .Report.checksum
      in
      List.iter
        (fun protocol ->
          let got =
            ((Machines.get ~protocol "treadmarks").Platform.run a ~nprocs:4)
              .Report.checksum
          in
          Alcotest.(check (float 0.0))
            (Printf.sprintf "%s on %s" app protocol)
            expect got)
        (List.tl sdsm_engines))
    [ "migratory"; "producer-consumer"; "false-sharing"; "read-mostly" ]

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let expect_invalid_arg ~substring f =
  match f () with
  | _ -> Alcotest.failf "expected Invalid_argument (.. %s ..)" substring
  | exception Invalid_argument msg ->
      if not (contains ~sub:substring msg) then
        Alcotest.failf "Invalid_argument %S does not mention %S" msg substring

let test_registry_rejects_duplicates () =
  let module Dup = struct
    let name = "lrc"
    let kind = Shm_proto.Sdsm
    let describe = "an impostor"
    let mount _ = assert false
  end in
  expect_invalid_arg ~substring:"already taken" (fun () ->
      Shm_proto.Registry.register Shm_engines.registry
        (module Dup : Shm_proto.ENGINE))

let test_kind_mismatches_refused () =
  expect_invalid_arg ~substring:"hardware cache-coherence engine" (fun () ->
      Machines.get ~protocol:"mesi" "treadmarks");
  expect_invalid_arg ~substring:"hardware cache-coherence engine" (fun () ->
      Machines.get ~protocol:"directory" "as");
  expect_invalid_arg ~substring:"software-DSM engine" (fun () ->
      Machines.get ~protocol:"lrc" "sgi");
  expect_invalid_arg ~substring:"software-DSM engine" (fun () ->
      Machines.get ~protocol:"tardis" "ah");
  expect_invalid_arg ~substring:"hardware cache-coherence engine" (fun () ->
      Machines.get ~protocol:"mesi" "hs");
  expect_invalid_arg ~substring:"uniprocessor" (fun () ->
      Machines.get ~protocol:"tardis" "dec");
  expect_invalid_arg ~substring:"unknown protocol" (fun () ->
      Machines.get ~protocol:"mosi" "treadmarks")

let test_protocol_listing () =
  List.iter
    (fun p ->
      Alcotest.(check bool)
        (Printf.sprintf "%s registered" p)
        true
        (List.mem p Machines.protocols))
    (sdsm_engines @ [ "mesi"; "directory" ]);
  (* Mounting each sdsm engine renames the platform predictably. *)
  Alcotest.(check string)
    "tardis platform name" "treadmarks-user+tardis"
    (Machines.get ~protocol:"tardis" "treadmarks").Platform.name;
  Alcotest.(check string)
    "default keeps historical name" "treadmarks-user"
    (Machines.get "treadmarks").Platform.name

let suite =
  [
    Alcotest.test_case "goldens: tardis" `Slow
      (check_goldens ~protocol:"tardis" golden_tardis);
    Alcotest.test_case "goldens: eager-lrc" `Slow
      (check_goldens ~protocol:"eager-lrc" golden_eager_lrc);
    Alcotest.test_case "patterns exact on every engine" `Slow
      test_patterns_exact;
    QCheck_alcotest.to_alcotest prop_engines_match_reference;
    Alcotest.test_case "registry rejects duplicate names" `Quick
      test_registry_rejects_duplicates;
    Alcotest.test_case "machine x protocol mismatches refused" `Quick
      test_kind_mismatches_refused;
    Alcotest.test_case "protocol listing and naming" `Quick
      test_protocol_listing;
  ]
