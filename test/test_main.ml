let () =
  Alcotest.run "shmcs"
    [
      ("sim", Test_sim.suite);
      ("sim-extra", Test_sim_extra.suite);
      ("stats", Test_stats.suite);
      ("props", Test_props.suite);
      ("net", Test_net.suite);
      ("reliable", Test_reliable.suite);
      ("memsys", Test_memsys.suite);
      ("tmk", Test_tmk.suite);
      ("tmk-edge", Test_tmk_edge.suite);
      ("ivy", Test_ivy.suite);
      ("erc", Test_erc.suite);
      ("proto", Test_proto.suite);
      ("apps", Test_apps.suite);
      ("apps-extra", Test_apps_extra.suite);
      ("patterns", Test_patterns.suite);
      ("fuzz", Test_fuzz.suite);
      ("ranges", Test_ranges.suite);
      ("platform", Test_platform.suite);
      ("runner", Test_runner.suite);
      ("breakdown", Test_breakdown.suite);
      ("crash", Test_crash.suite);
      ("kv", Test_kv.suite);
    ]
