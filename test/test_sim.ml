(* Tests for the discrete-event kernel: event ordering, fiber clocks,
   mailboxes, resources, deadlock detection. *)

module Engine = Shm_sim.Engine
module Mailbox = Shm_sim.Mailbox
module Resource = Shm_sim.Resource
module Waitq = Shm_sim.Waitq
module Pqueue = Shm_sim.Pqueue
module Prng = Shm_sim.Prng

let test_pqueue_order () =
  let q = Pqueue.create ~dummy:0 in
  let rng = Prng.create ~seed:42 in
  let items = List.init 1000 (fun i -> (Prng.int rng 100, i)) in
  List.iter (fun (time, v) -> Pqueue.push q ~time v) items;
  let last_time = ref (-1) in
  let seen = ref [] in
  while not (Pqueue.is_empty q) do
    let time, v = Pqueue.pop q in
    Alcotest.(check bool) "non-decreasing" true (time >= !last_time);
    last_time := time;
    seen := v :: !seen
  done;
  Alcotest.(check int) "all popped" 1000 (List.length !seen)

let test_pqueue_fifo_ties () =
  let q = Pqueue.create ~dummy:0 in
  for i = 0 to 99 do
    Pqueue.push q ~time:7 i
  done;
  for i = 0 to 99 do
    let _, v = Pqueue.pop q in
    Alcotest.(check int) "insertion order on equal keys" i v
  done

let test_fiber_clocks () =
  let eng = Engine.create () in
  let log = ref [] in
  let spawn name at work =
    ignore
      (Engine.spawn eng ~name ~at (fun f ->
           Engine.advance f work;
           Engine.sync f;
           log := (name, Engine.clock f) :: !log))
  in
  spawn "a" 0 10;
  spawn "b" 5 2;
  Engine.run eng;
  let log = List.rev !log in
  Alcotest.(check (list (pair string int)))
    "b syncs at 7 before a at 10"
    [ ("b", 7); ("a", 10) ]
    log

let test_wait_until () =
  let eng = Engine.create () in
  let result = ref 0 in
  ignore
    (Engine.spawn eng ~name:"w" ~at:3 (fun f ->
         Engine.wait_until f 100;
         result := Engine.clock f));
  Engine.run eng;
  Alcotest.(check int) "clock moved" 100 !result

let test_suspend_resume () =
  let eng = Engine.create () in
  let order = ref [] in
  let sleeper = ref None in
  ignore
    (Engine.spawn eng ~name:"sleeper" ~at:0 (fun f ->
         sleeper := Some f;
         Engine.suspend f;
         order := ("woke", Engine.clock f) :: !order));
  ignore
    (Engine.spawn eng ~name:"waker" ~at:50 (fun f ->
         (match !sleeper with
         | Some s -> Engine.resume eng s ~at:(Engine.clock f + 5)
         | None -> Alcotest.fail "sleeper not started");
         order := ("waker", Engine.clock f) :: !order));
  Engine.run eng;
  Alcotest.(check (list (pair string int)))
    "resume at requested time"
    [ ("woke", 55); ("waker", 50) ]
    !order

let test_deadlock_detection () =
  let eng = Engine.create () in
  ignore
    (Engine.spawn eng ~name:"stuck" ~at:0 (fun f ->
         Engine.advance f 12;
         Engine.sync f;
         Engine.suspend f));
  ignore (Engine.spawn eng ~name:"bystander" ~at:0 (fun f -> Engine.advance f 3));
  match Engine.run eng with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Engine.Deadlock { time; blocked = [ ("stuck", clock) ]; _ } ->
      (* The diagnostics carry the drain time and the blocked fiber's own
         clock, so a stall is debuggable from the message alone. *)
      Alcotest.(check int) "blocked fiber clock" 12 clock;
      Alcotest.(check int) "engine time at drain" 12 time
  | exception Engine.Deadlock { blocked; _ } ->
      Alcotest.fail
        ("wrong names: " ^ String.concat "," (List.map fst blocked))

let test_pqueue_pop_releases_entry () =
  (* Regression for a space leak: the vacated slot after [pop] used to
     keep the last heap entry — and the event closure it carried —
     reachable for the queue's lifetime. *)
  let q = Pqueue.create ~dummy:(fun () -> 0) in
  let push_tracked () =
    let payload = Array.make 1024 0 in
    let w = Weak.create 1 in
    Weak.set w 0 (Some payload);
    Pqueue.push q ~time:1 (fun () -> Array.length payload);
    w
  in
  let w = push_tracked () in
  (* A second entry so pop exercises the sift-down path too. *)
  Pqueue.push q ~time:2 (fun () -> 0);
  ignore (Pqueue.pop q);
  ignore (Pqueue.pop q);
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool)
    "popped closure is collectable" true
    (Weak.get w 0 = None)

let test_daemon_no_deadlock () =
  let eng = Engine.create () in
  ignore
    (Engine.spawn eng ~daemon:true ~name:"daemon" ~at:0 (fun f ->
         Engine.suspend f));
  ignore (Engine.spawn eng ~name:"worker" ~at:0 (fun f -> Engine.advance f 5));
  Engine.run eng

let test_mailbox_delivery_time () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref (-1) in
  ignore
    (Engine.spawn eng ~name:"recv" ~at:0 (fun f ->
         let v = Mailbox.recv f mb in
         got := v;
         Alcotest.(check int) "clock at delivery" 40 (Engine.clock f)));
  ignore
    (Engine.spawn eng ~name:"send" ~at:10 (fun f ->
         Mailbox.post mb ~at:(Engine.clock f + 30) 99));
  Engine.run eng;
  Alcotest.(check int) "value" 99 !got

let test_mailbox_ordering () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  let got = ref [] in
  Mailbox.post mb ~at:20 "second";
  Mailbox.post mb ~at:10 "first";
  ignore
    (Engine.spawn eng ~name:"recv" ~at:0 (fun f ->
         let first = Mailbox.recv f mb in
         let second = Mailbox.recv f mb in
         got := [ first; second ]));
  Engine.run eng;
  Alcotest.(check (list string)) "time order" [ "first"; "second" ] !got

let test_resource_contention () =
  let eng = Engine.create () in
  let r = Resource.create ~name:"bus" () in
  let finish = Hashtbl.create 4 in
  for i = 0 to 3 do
    ignore
      (Engine.spawn eng ~name:(string_of_int i) ~at:0 (fun f ->
           Resource.use f r ~cycles:10;
           Hashtbl.replace finish i (Engine.clock f)))
  done;
  Engine.run eng;
  let times = List.init 4 (fun i -> Hashtbl.find finish i) in
  Alcotest.(check (list int)) "serialized" [ 10; 20; 30; 40 ] times;
  Alcotest.(check int) "busy cycles" 40 (Resource.busy_cycles r)

let test_waitq_wake_all () =
  let eng = Engine.create () in
  let wq = Waitq.create eng in
  let woken = ref 0 in
  for i = 0 to 4 do
    ignore
      (Engine.spawn eng ~name:(Printf.sprintf "w%d" i) ~at:0 (fun f ->
           Waitq.wait f wq;
           incr woken))
  done;
  ignore
    (Engine.spawn eng ~name:"waker" ~at:10 (fun f ->
         Engine.sync f;
         let n = Waitq.wake_all wq ~at:(Engine.clock f) in
         Alcotest.(check int) "count" 5 n));
  Engine.run eng;
  Alcotest.(check int) "all woken" 5 !woken

let test_determinism () =
  let run () =
    let eng = Engine.create () in
    let trace = Buffer.create 64 in
    let rng = Prng.create ~seed:7 in
    for i = 0 to 9 do
      let delay = Prng.int rng 20 in
      ignore
        (Engine.spawn eng ~name:(string_of_int i) ~at:delay (fun f ->
             Engine.advance f (Prng.int rng 5);
             Engine.sync f;
             Buffer.add_string trace
               (Printf.sprintf "%s@%d;" (Engine.name f) (Engine.clock f))))
    done;
    Engine.run eng;
    Buffer.contents trace
  in
  Alcotest.(check string) "identical traces" (run ()) (run ())

let suite =
  [
    Alcotest.test_case "pqueue pops in time order" `Quick test_pqueue_order;
    Alcotest.test_case "pqueue breaks ties FIFO" `Quick test_pqueue_fifo_ties;
    Alcotest.test_case "pqueue pop releases the vacated entry" `Quick
      test_pqueue_pop_releases_entry;
    Alcotest.test_case "fiber clocks interleave by time" `Quick test_fiber_clocks;
    Alcotest.test_case "wait_until advances the clock" `Quick test_wait_until;
    Alcotest.test_case "suspend/resume" `Quick test_suspend_resume;
    Alcotest.test_case "deadlock detection" `Quick test_deadlock_detection;
    Alcotest.test_case "daemons don't deadlock" `Quick test_daemon_no_deadlock;
    Alcotest.test_case "mailbox delivery time" `Quick test_mailbox_delivery_time;
    Alcotest.test_case "mailbox time ordering" `Quick test_mailbox_ordering;
    Alcotest.test_case "resource serializes users" `Quick test_resource_contention;
    Alcotest.test_case "waitq wakes all" `Quick test_waitq_wake_all;
    Alcotest.test_case "engine is deterministic" `Quick test_determinism;
  ]
