(* Tests for the eager-invalidate release-consistency mode (the ERC
   ablation): correctness equals lazy mode, invalidations arrive without
   synchronization, message counts blow up. *)

module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Config = Shm_tmk.Config
module System = Shm_tmk.System
module Parmacs = Shm_parmacs.Parmacs
module Registry = Shm_apps.Registry
module Dsm_cluster = Shm_platform.Dsm_cluster
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report

let make_cluster ~nodes ~shared_words () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fabric =
    Fabric.create eng counters
      (Fabric.atm_dec ~overhead:Overhead.treadmarks_user)
      ~nodes
  in
  let memories = Array.init nodes (fun _ -> Memory.create ~words:shared_words) in
  let cfg =
    { (Config.default ~n_nodes:nodes ~shared_words) with
      notice_policy = Config.Eager_invalidate }
  in
  let sys = System.create eng counters fabric cfg ~memories in
  System.start sys;
  (eng, sys, counters)

(* Under ERC an unsynchronized reader eventually sees the new value: the
   release's broadcast invalidates its copy and the next read faults. *)
let test_erc_invalidates_without_sync () =
  let eng, sys, _ = make_cluster ~nodes:2 ~shared_words:1024 () in
  let observed = ref (-1) in
  ignore
    (Engine.spawn eng ~name:"writer" ~at:0 (fun f ->
         System.acquire sys f ~node:0 ~lock:0;
         System.write_guard sys f ~node:0 0;
         Memory.set_int (System.memory sys ~node:0) 0 7;
         System.release sys f ~node:0 ~lock:0));
  ignore
    (Engine.spawn eng ~name:"reader" ~at:0 (fun f ->
         Engine.wait_until f 100_000_000;
         System.read_guard sys f ~node:1 0;
         observed := Memory.get_int (System.memory sys ~node:1) 0));
  Engine.run eng;
  Alcotest.(check int) "eager notice invalidated the stale copy" 7 !observed

let test_erc_page_invalid_after_release () =
  let eng, sys, _ = make_cluster ~nodes:2 ~shared_words:1024 () in
  ignore
    (Engine.spawn eng ~name:"writer" ~at:0 (fun f ->
         System.acquire sys f ~node:0 ~lock:0;
         System.write_guard sys f ~node:0 0;
         Memory.set_int (System.memory sys ~node:0) 0 1;
         System.release sys f ~node:0 ~lock:0));
  ignore
    (Engine.spawn eng ~name:"checker" ~at:0 (fun f ->
         Engine.wait_until f 100_000_000;
         Alcotest.(check bool) "node 1 copy invalidated" false
           (System.page_valid sys ~node:1 ~page:0)));
  Engine.run eng

(* ERC and lazy produce bit-identical results on a real application. *)
let test_erc_matches_lazy_results () =
  let lazy_p = Dsm_cluster.dec ~level:Dsm_cluster.User () in
  let erc_p =
    Dsm_cluster.dec ~protocol:"erc"
      ~level:Dsm_cluster.User ()
  in
  List.iter
    (fun name ->
      let app () = Registry.app ~scale:Registry.Quick name in
      let a = (lazy_p.Platform.run (app ()) ~nprocs:4).Report.checksum in
      let b = (erc_p.Platform.run (app ()) ~nprocs:4).Report.checksum in
      Alcotest.(check (float 0.0)) (name ^ " identical") a b)
    [ "sor"; "tsp-small"; "ilink-clp" ]

(* The defining cost: ERC sends strictly more messages than LRC. *)
let test_erc_message_blowup () =
  let lazy_p = Dsm_cluster.dec ~level:Dsm_cluster.User () in
  let erc_p =
    Dsm_cluster.dec ~protocol:"erc"
      ~level:Dsm_cluster.User ()
  in
  let msgs p =
    let app = Registry.app ~scale:Registry.Quick "m-water" in
    Report.get (p.Platform.run app ~nprocs:8) "net.msgs.total"
  in
  let l = msgs lazy_p and e = msgs erc_p in
  Alcotest.(check bool)
    (Printf.sprintf "ERC %d > 1.5x LRC %d" e l)
    true
    (e > l * 3 / 2)

let suite =
  [
    Alcotest.test_case "ERC invalidates without sync" `Quick
      test_erc_invalidates_without_sync;
    Alcotest.test_case "ERC page state after release" `Quick
      test_erc_page_invalid_after_release;
    Alcotest.test_case "ERC matches lazy results" `Slow
      test_erc_matches_lazy_results;
    Alcotest.test_case "ERC sends more messages" `Slow test_erc_message_blowup;
  ]
