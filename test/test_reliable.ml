(* The unreliable-network fault model and the user-level reliable
   request/reply layer.

   Unit level: duplicate suppression, FIFO preservation under jitter, the
   exponential-backoff retransmission schedule, Peer_unreachable after
   retry exhaustion, and the watchdog's pending-retransmission note.

   Application level: the reliability contract of DESIGN.md §9 — for any
   seeded fault schedule (drop/dup up to 20%, delay jitter), every Quick
   five-app run on the software-DSM platforms completes with checksums
   identical to the fault-free run, with nonzero retransmission counters
   whenever drops occurred, and with a reproducible trace per seed. *)

module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Msg = Shm_net.Msg
module Overhead = Shm_net.Overhead
module Fabric = Shm_net.Fabric
module Reliable = Shm_net.Reliable
module Registry = Shm_apps.Registry
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A two-node channel with a recv-loop daemon per node (mirroring the DSM
   systems' handler fibers, which is what keeps acks flowing). *)
let mk_channel ~faults ~nodes () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fab =
    Fabric.create eng counters
      { Fabric.name = "test"; latency_cycles = 100; bytes_per_cycle = 1.0;
        overhead = Overhead.hardware; faults }
      ~nodes
  in
  let rel = Reliable.create eng counters fab in
  Reliable.start rel;
  (eng, counters, rel)

let spawn_handler eng rel ~node ~on_msg =
  ignore
    (Engine.spawn eng ~daemon:true
       ~name:(Printf.sprintf "h%d" node)
       ~at:0
       (fun f ->
         let rec loop () =
           let env = Reliable.recv rel f ~node in
           on_msg env;
           loop ()
         in
         loop ()))

let test_passthrough_inert () =
  let eng, counters, rel = mk_channel ~faults:Fabric.no_faults ~nodes:2 () in
  Alcotest.(check bool) "not armed" false (Reliable.armed rel);
  let got = ref 0 in
  spawn_handler eng rel ~node:1 ~on_msg:(fun _ -> incr got);
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         for i = 0 to 2 do
           Reliable.send rel f ~src:0 ~dst:1 ~class_:Msg.Sync
             ~size:(Msg.sizes ()) i
         done));
  Engine.run eng;
  Alcotest.(check int) "all delivered" 3 !got;
  Alcotest.(check int) "no sequencing machinery" 0
    (Counters.get counters "net.reliable.data");
  Alcotest.(check int) "no retransmissions" 0
    (Counters.get counters "net.retrans.total");
  Alcotest.(check int) "offered = delivered" 3
    (Counters.get counters "net.msgs.delivered")

let test_duplicate_suppression () =
  let faults = { Fabric.no_faults with Fabric.dup_rate = 1.0; fault_seed = 5 } in
  let eng, counters, rel = mk_channel ~faults ~nodes:2 () in
  let got = ref [] in
  spawn_handler eng rel ~node:0 ~on_msg:ignore;
  spawn_handler eng rel ~node:1 ~on_msg:(fun env ->
      got := env.Msg.body :: !got);
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         for i = 0 to 4 do
           Reliable.send rel f ~src:0 ~dst:1 ~class_:Msg.Sync
             ~size:(Msg.sizes ()) i
         done));
  Engine.run eng;
  Alcotest.(check (list int)) "exactly once, in order" [ 0; 1; 2; 3; 4 ]
    (List.rev !got);
  Alcotest.(check int) "each data packet crossed the wire once" 5
    (Counters.get counters "net.reliable.data");
  (* dup_rate = 1.0: every data packet arrives twice; the second copy is
     suppressed.  (Acks are duplicated too, but dup acks are consumed
     silently and never counted here.) *)
  Alcotest.(check int) "one suppression per data packet" 5
    (Counters.get counters "net.reliable.dups")

let test_fifo_under_faults () =
  (* Jitter alone cannot reorder a single src->dst stream (the rx link
     serializes deliveries in send order); reordering comes from a drop
     whose retransmission lands after its successors.  The sequence layer
     buffers the early packets and releases them in order. *)
  let faults =
    { Fabric.no_faults with Fabric.drop_sync = 0.3; jitter_cycles = 500;
      fault_seed = 3 }
  in
  let eng, counters, rel = mk_channel ~faults ~nodes:2 () in
  let got = ref [] in
  spawn_handler eng rel ~node:0 ~on_msg:ignore;
  spawn_handler eng rel ~node:1 ~on_msg:(fun env ->
      got := env.Msg.body :: !got);
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         for i = 0 to 19 do
           Reliable.send rel f ~src:0 ~dst:1 ~class_:Msg.Sync
             ~size:(Msg.sizes ()) i
         done));
  Engine.run eng;
  Alcotest.(check (list int)) "delivered exactly once, in order"
    (List.init 20 Fun.id) (List.rev !got);
  Alcotest.(check bool) "drops occurred" true
    (Counters.get counters "net.faults.dropped" > 0);
  Alcotest.(check bool) "early packets were buffered" true
    (Counters.get counters "net.reliable.ooo" > 0)

let drop_everything =
  { Fabric.no_faults with Fabric.drop_miss = 1.0; drop_sync = 1.0;
    fault_seed = 1 }

let test_backoff_and_peer_unreachable () =
  let eng, counters, rel = mk_channel ~faults:drop_everything ~nodes:2 () in
  spawn_handler eng rel ~node:1 ~on_msg:ignore;
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         Reliable.send rel f ~src:0 ~dst:1 ~class_:Msg.Miss
           ~size:(Msg.sizes ()) 42));
  let base = Reliable.base_timeout rel ~size:(Msg.sizes ()) in
  match Engine.run eng with
  | () -> Alcotest.fail "expected Peer_unreachable"
  | exception Reliable.Peer_unreachable { src; dst; seq; attempts } ->
      Alcotest.(check int) "src" 0 src;
      Alcotest.(check int) "dst" 1 dst;
      Alcotest.(check int) "seq" 0 seq;
      Alcotest.(check int) "attempts" (Reliable.max_retries + 1) attempts;
      Alcotest.(check int) "retransmissions" Reliable.max_retries
        (Counters.get counters "net.retrans.total");
      (* Exponential backoff: attempt k waits base * 2^k, so the give-up
         time is the full geometric series (plus small per-send costs). *)
      let series = (base * (1 lsl (Reliable.max_retries + 1))) - base in
      let t = Engine.now eng in
      Alcotest.(check bool)
        (Printf.sprintf "give-up time %d matches backoff series %d" t series)
        true
        (t >= series && t <= series + (4 * base))

let test_watchdog_pending_note () =
  let eng, _counters, rel = mk_channel ~faults:drop_everything ~nodes:2 () in
  spawn_handler eng rel ~node:1 ~on_msg:ignore;
  ignore
    (Engine.spawn eng ~name:"tx" ~at:0 (fun f ->
         Reliable.send rel f ~src:0 ~dst:1 ~class_:Msg.Miss
           ~size:(Msg.sizes ()) 7));
  match
    Engine.run ~max_cycles:5000 ~diag:(fun () -> Reliable.pending_note rel) eng
  with
  | () -> Alcotest.fail "expected Watchdog"
  | exception Engine.Watchdog { limit; note; _ } ->
      Alcotest.(check int) "limit" 5000 limit;
      Alcotest.(check bool)
        (Printf.sprintf "note %S counts node0's pending packet" note)
        true
        (contains_sub note "node0:1")

(* ------------------------------------------------------------------ *)
(* Application level *)

(* Fault-free Quick-scale digests at nprocs=4, pinned in test_ranges.ml;
   a faulted run must reproduce them bit-for-bit. *)
let goldens =
  [
    ("sor", 0x1.70d4575719efep+8);
    ("tsp", 0x1.1f2p+11);
    ("water", 0x1.293cc893f694dp+8);
    ("m-water", 0x1.293cc893f694dp+8);
    ("ilink-clp", 0x1.0eeb716a5b77ap+5);
  ]

let run_with ~platform ~faults app_name =
  let app = Registry.app ~scale:Registry.Quick app_name in
  (Machines.get ~faults platform).Platform.run app ~nprocs:4

let test_chaos_matrix () =
  let faults =
    { Fabric.no_faults with Fabric.drop_miss = 0.1; drop_sync = 0.1;
      dup_rate = 0.05; jitter_cycles = 100; fault_seed = 1 }
  in
  List.iter
    (fun platform ->
      List.iter
        (fun (app, want) ->
          let r = run_with ~platform ~faults app in
          if r.Report.checksum <> want then
            Alcotest.failf "%s on %s under faults: checksum %h, want %h" app
              platform r.Report.checksum want;
          if Report.dropped r = 0 then
            Alcotest.failf "%s on %s: fault schedule dropped nothing" app
              platform;
          if Report.retransmissions r = 0 then
            Alcotest.failf "%s on %s: drops but no retransmissions" app
              platform)
        goldens)
    [ "treadmarks"; "ivy" ]

let test_reproducible_trace () =
  let faults =
    { Fabric.no_faults with Fabric.drop_miss = 0.15; drop_sync = 0.15;
      dup_rate = 0.1; jitter_cycles = 200; fault_seed = 7 }
  in
  let r1 = run_with ~platform:"treadmarks" ~faults "sor" in
  let r2 = run_with ~platform:"treadmarks" ~faults "sor" in
  Alcotest.(check int) "cycles reproducible" r1.Report.cycles r2.Report.cycles;
  Alcotest.(check bool) "retransmission trace reproducible" true
    (r1.Report.counters = r2.Report.counters);
  Alcotest.(check bool) "schedule actually retransmitted" true
    (Report.retransmissions r1 > 0)

let test_hardware_platforms_reject_faults () =
  let faults = { Fabric.no_faults with Fabric.drop_miss = 0.1 } in
  List.iter
    (fun name ->
      match Machines.get ~faults name with
      | _ -> Alcotest.failf "%s accepted an active fault policy" name
      | exception Invalid_argument _ -> ())
    [ "sgi"; "ah"; "hs"; "dec" ];
  (* An inactive policy is accepted everywhere. *)
  List.iter
    (fun name -> ignore (Machines.get ~faults:Fabric.no_faults name))
    Machines.names

let prop_fault_schedule =
  QCheck.Test.make ~count:2
    ~name:"any seeded fault schedule preserves five-app results"
    (QCheck.make
       QCheck.Gen.(
         quad
           (float_bound_inclusive 0.2)
           (float_bound_inclusive 0.2)
           (int_bound 300) (int_bound 10_000)))
    (fun (drop, dup, jitter, seed) ->
      let faults =
        { Fabric.no_faults with Fabric.drop_miss = drop; drop_sync = drop;
          dup_rate = dup; jitter_cycles = jitter; fault_seed = seed }
      in
      List.for_all
        (fun (app, want) ->
          let r = run_with ~platform:"treadmarks" ~faults app in
          if r.Report.checksum <> want then
            QCheck.Test.fail_reportf
              "%s: checksum %h <> %h (drop=%g dup=%g jitter=%d seed=%d)" app
              r.Report.checksum want drop dup jitter seed
          else if Report.dropped r > 0 && Report.retransmissions r = 0 then
            QCheck.Test.fail_reportf
              "%s: %d drops but no retransmissions (seed=%d)" app
              (Report.dropped r) seed
          else true)
        goldens)

let suite =
  [
    Alcotest.test_case "fault-free channel is inert" `Quick
      test_passthrough_inert;
    Alcotest.test_case "duplicate suppression" `Quick
      test_duplicate_suppression;
    Alcotest.test_case "FIFO preserved under drops and jitter" `Quick
      test_fifo_under_faults;
    Alcotest.test_case "backoff schedule and Peer_unreachable" `Quick
      test_backoff_and_peer_unreachable;
    Alcotest.test_case "watchdog reports pending retransmissions" `Quick
      test_watchdog_pending_note;
    Alcotest.test_case "chaos matrix hits fault-free checksums" `Quick
      test_chaos_matrix;
    Alcotest.test_case "same seed, same trace" `Quick test_reproducible_trace;
    Alcotest.test_case "hardware platforms reject faults" `Quick
      test_hardware_platforms_reject_faults;
    QCheck_alcotest.to_alcotest prop_fault_schedule;
  ]
