(* Water vs M-Water: synchronization rate decides everything on a
   software DSM (paper Sections 2.3-2.5).

     dune exec examples/water_study.exe

   The original Water acquires a molecule's lock for every pairwise force
   update: O(n^2) lock acquires per step.  M-Water accumulates
   contributions privately and applies them once per molecule: O(n).
   On the SGI a lock is a couple of bus transactions and the two run at
   the same speed; on TreadMarks a remote lock is a millisecond-scale
   three-hop message exchange, and the lock rate decides whether the
   program scales at all. *)

module Water = Shm_apps.Water
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Table = Shm_stats.Table

let () =
  let table =
    Table.create
      ~title:"Water, 96 molecules, 2 steps, 8 processors"
      ~columns:
        [ "variant"; "platform"; "remote locks/s"; "msgs/s"; "speedup" ]
  in
  List.iter
    (fun (label, mode) ->
      let params =
        { (Water.default_params mode) with Water.molecules = 96; steps = 2 }
      in
      List.iter
        (fun pname ->
          let app = Water.make params in
          let platform = Machines.get pname in
          let base = platform.Platform.run app ~nprocs:1 in
          let r = platform.Platform.run app ~nprocs:8 in
          Table.add_row table
            [
              label;
              platform.Platform.name;
              Table.cell_f ~digits:0 (Report.rate r "tmk.lock_remote");
              Table.cell_f ~digits:0 (Report.rate r "net.msgs.total");
              Table.cell_speedup (Report.speedup ~base r);
            ])
        [ "treadmarks"; "treadmarks-kernel"; "sgi" ])
    [ ("Water (lock per update)", Water.Locked);
      ("M-Water (batched)", Water.Batched) ];
  Table.print table;
  print_endline
    "\nM-Water cuts the lock-acquire count by an order of magnitude and\n\
     recovers most of the speedup on TreadMarks; the SGI barely notices\n\
     the difference.  Moving TreadMarks into the kernel (cheaper traps)\n\
     helps exactly the synchronization-bound configurations."
