(* TSP and the not-properly-labeled bound (paper Section 2.4.3).

     dune exec examples/tsp_search.exe

   TSP updates the global minimum-tour bound under a lock but reads it
   without synchronization.  Under lazy release consistency a processor
   keeps pruning against a stale bound until its next acquire, so it may
   explore subtrees that are already known to be useless.  The paper's
   fix is an eager release on the bound lock: the release pushes the new
   bound to every processor immediately.  Hardware coherence invalidates
   the stale copies automatically, which is why the SGI can even go
   super-linear (better bounds earlier prune more than the sequential
   run). *)

module Tsp = Shm_apps.Tsp
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Table = Shm_stats.Table

let () =
  let p = Tsp.params_n 13 in
  let optimal = Tsp.optimal_length p in
  Printf.printf "13-city Euclidean instance; optimal tour length = %.0f\n\n"
    optimal;
  let table =
    Table.create ~title:"TSP, 8 processors: bound propagation strategies"
      ~columns:[ "platform"; "time (s)"; "speedup"; "msgs"; "optimal found" ]
  in
  List.iter
    (fun pname ->
      let app = Tsp.make p in
      let platform = Machines.get pname in
      let base = platform.Platform.run app ~nprocs:1 in
      let r = platform.Platform.run app ~nprocs:8 in
      Table.add_row table
        [
          platform.Platform.name
          ^ (if pname = "treadmarks-eager" then " (eager bound)" else "");
          Table.cell_f ~digits:3 (Report.seconds r);
          Table.cell_speedup (Report.speedup ~base r);
          Table.cell_i (Report.get r "net.msgs.total");
          (if r.Report.checksum = optimal then "yes" else "NO");
        ])
    [ "treadmarks"; "treadmarks-eager"; "sgi" ];
  Table.print table;
  print_endline
    "\nAll three executions find the optimal tour — stale bounds cause\n\
     redundant work, never wrong answers (branch-and-bound only ever\n\
     prunes against an upper bound)."
