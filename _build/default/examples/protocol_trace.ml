(* A guided tour of the lazy-release-consistency protocol, driving the
   TreadMarks engine directly (no application, no platform).

     dune exec examples/protocol_trace.exe

   Three nodes share four pages.  The trace shows twins being created on
   first writes, intervals closing at releases, write notices invalidating
   pages at acquires, and diffs being fetched on faults — with vector
   clocks printed at each step. *)

module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Vc = Shm_tmk.Vc
module Config = Shm_tmk.Config
module System = Shm_tmk.System

let nodes = 3
let page_words = 512
let shared_words = 4 * page_words

let show sys ~node what =
  Printf.printf "  node %d %-28s vc=%s  pages=[%s]\n" node what
    (Format.asprintf "%a" Vc.pp (System.vc sys ~node))
    (String.concat ""
       (List.init 4 (fun p ->
            if System.page_valid sys ~node ~page:p then "V" else "-")))

let () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fabric =
    Fabric.create eng counters
      (Fabric.atm_dec ~overhead:Overhead.treadmarks_user)
      ~nodes
  in
  let memories = Array.init nodes (fun _ -> Memory.create ~words:shared_words) in
  let cfg = Config.default ~n_nodes:nodes ~shared_words in
  let sys = System.create eng counters fabric cfg ~memories in
  System.start sys;

  print_endline "Lazy release consistency, step by step:\n";

  let spawn node body =
    ignore (Engine.spawn eng ~name:(Printf.sprintf "node%d" node) ~at:0 body)
  in

  (* Node 0: writes page 0 under lock 5, then page 1 before a barrier. *)
  spawn 0 (fun f ->
      System.acquire sys f ~node:0 ~lock:5;
      show sys ~node:0 "acquired lock 5";
      System.write_guard sys f ~node:0 10;
      Memory.set_int memories.(0) 10 111;
      show sys ~node:0 "wrote page 0 (twin made)";
      System.release sys f ~node:0 ~lock:5;
      show sys ~node:0 "released (interval closed)";
      System.write_guard sys f ~node:0 (page_words + 7);
      Memory.set_int memories.(0) (page_words + 7) 222;
      System.barrier_arrive sys f ~node:0 ~id:0;
      show sys ~node:0 "passed barrier");

  (* Node 1: acquires the same lock after node 0; the grant's write
     notices invalidate its copy of page 0, and reading it faults and
     fetches node 0's diff. *)
  spawn 1 (fun f ->
      Engine.wait_until f 1_000_000;
      System.acquire sys f ~node:1 ~lock:5;
      show sys ~node:1 "acquired lock 5 (page 0 invalid)";
      System.read_guard sys f ~node:1 10;
      Printf.printf "  node 1 read word 10 -> %d (diff fetched and applied)\n"
        (Memory.get_int memories.(1) 10);
      show sys ~node:1 "after fault";
      System.release sys f ~node:1 ~lock:5;
      System.barrier_arrive sys f ~node:1 ~id:0;
      show sys ~node:1 "passed barrier (page 1 invalid)";
      System.read_guard sys f ~node:1 (page_words + 7);
      Printf.printf "  node 1 read word %d -> %d\n" (page_words + 7)
        (Memory.get_int memories.(1) (page_words + 7)));

  (* Node 2 only participates in the barrier: it learns about both
     intervals there, but pages are fetched lazily — only if touched. *)
  spawn 2 (fun f ->
      System.barrier_arrive sys f ~node:2 ~id:0;
      show sys ~node:2 "passed barrier (lazy: nothing fetched)");

  Engine.run eng;
  System.check_invariants sys;

  Printf.printf "\nProtocol counters:\n";
  List.iter
    (fun name -> Printf.printf "  %-24s %d\n" name (Counters.get counters name))
    [
      "tmk.twins"; "tmk.intervals"; "tmk.diffs_created"; "tmk.diffs_applied";
      "tmk.faults"; "tmk.invalidations"; "tmk.lock_remote"; "tmk.lock_local";
      "net.msgs.total";
    ];
  Printf.printf "\nSimulated time: %.3f ms at 40 MHz\n"
    (float_of_int (Engine.now eng) /. 40e3)
