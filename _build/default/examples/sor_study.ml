(* The SOR data-movement effect (paper Section 2.4.2).

     dune exec examples/sor_study.exe

   SOR initialized with a hot boundary and a zero interior recomputes most
   interior points to the value they already hold.  TreadMarks ships diffs
   — run-length encodings of the words whose *values changed* — so it
   moves almost nothing in early iterations, while the SGI's hardware
   coherence moves whole cache lines regardless.  Re-initializing the grid
   so every point changes every iteration ("touch-all") equalizes the data
   movement; TreadMarks still wins because each workstation has a private
   path to memory while the SGI processors share one bus. *)

module Sor = Shm_apps.Sor
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Table = Shm_stats.Table

let params touch_all =
  { Sor.default_params with rows = 512; cols = 256; iters = 6; touch_all }

let () =
  let table =
    Table.create
      ~title:
        "SOR 512x256, 6 iterations, 8 processors: data moved and speedup"
      ~columns:
        [ "init"; "platform"; "data moved (KB)"; "time (s)"; "speedup" ]
  in
  List.iter
    (fun touch_all ->
      let app = Sor.make (params touch_all) in
      let init_name = if touch_all then "touch-all" else "zero interior" in
      List.iter
        (fun pname ->
          let p = Machines.get pname in
          let base = p.Platform.run app ~nprocs:1 in
          let r = p.Platform.run app ~nprocs:8 in
          let moved_kb =
            (* TreadMarks: bytes on the wire.  SGI: bytes over the bus. *)
            (Report.get r "net.bytes.total" + Report.get r "bus.bytes") / 1024
          in
          Table.add_row table
            [
              init_name;
              p.Platform.name;
              Table.cell_i moved_kb;
              Table.cell_f ~digits:3 (Report.seconds r);
              Table.cell_speedup (Report.speedup ~base r);
            ])
        [ "treadmarks"; "sgi" ])
    [ false; true ];
  Table.print table;
  print_endline
    "\nWith the zero interior, TreadMarks' diffs carry only the wavefront\n\
     of points that changed value; touch-all initialization makes every\n\
     point change and TreadMarks' data volume grows accordingly — while\n\
     hardware coherence moves whole cache lines either way, and the\n\
     private memory paths of the workstations still beat the shared bus."
