examples/tsp_search.ml: List Printf Shm_apps Shm_platform Shm_stats
