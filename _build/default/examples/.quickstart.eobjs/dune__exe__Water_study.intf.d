examples/water_study.mli:
