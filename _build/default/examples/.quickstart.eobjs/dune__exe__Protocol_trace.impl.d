examples/protocol_trace.ml: Array Format List Printf Shm_memsys Shm_net Shm_sim Shm_stats Shm_tmk String
