examples/tsp_search.mli:
