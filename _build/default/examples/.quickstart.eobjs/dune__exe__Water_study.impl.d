examples/water_study.ml: List Shm_apps Shm_platform Shm_stats
