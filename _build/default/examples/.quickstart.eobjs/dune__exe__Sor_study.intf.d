examples/sor_study.mli:
