examples/quickstart.mli:
