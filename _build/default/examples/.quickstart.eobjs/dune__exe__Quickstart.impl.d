examples/quickstart.ml: List Printf Shm_apps Shm_platform
