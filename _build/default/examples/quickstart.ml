(* Quickstart: run one application on two shared-memory implementations
   and compare.

     dune exec examples/quickstart.exe

   This is the library's core loop: build an application against the
   PARMACS interface, pick a platform model, run, read the report. *)

module Sor = Shm_apps.Sor
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report

let () =
  (* A small red-black SOR problem: 256x256 grid, 10 iterations. *)
  let app =
    Sor.make { Sor.default_params with rows = 256; cols = 256; iters = 10 }
  in

  print_endline "Red-Black SOR on software vs hardware shared memory\n";

  List.iter
    (fun platform_name ->
      let platform = Machines.get platform_name in
      let base = platform.Platform.run app ~nprocs:1 in
      let par = platform.Platform.run app ~nprocs:8 in
      Printf.printf
        "%-12s 1 proc: %6.3f s    8 procs: %6.3f s    speedup: %.2f\n"
        platform.Platform.name (Report.seconds base) (Report.seconds par)
        (Report.speedup ~base par);
      (* Same answer regardless of processor count, up to reassociation of
         the final sum reduction. *)
      let err =
        abs_float (base.Report.checksum -. par.Report.checksum)
        /. (1. +. abs_float base.Report.checksum)
      in
      assert (err < 1e-12))
    [ "treadmarks"; "sgi" ];

  print_endline
    "\nBoth implementations compute bit-identical results; only the cost\n\
     of keeping memory coherent differs.  Try `bin/shmsim.exe run` for\n\
     other applications, platforms and processor counts."
