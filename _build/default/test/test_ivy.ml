(* Tests for the IVY-style sequentially-consistent page DSM baseline. *)

module Engine = Shm_sim.Engine
module Prng = Shm_sim.Prng
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Ivy = Shm_ivy.System

type cluster = { eng : Engine.t; sys : Ivy.t; counters : Counters.t }

let make_cluster ~nodes ~shared_words () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fabric =
    Fabric.create eng counters
      (Fabric.atm_dec ~overhead:Overhead.treadmarks_user)
      ~nodes
  in
  let memories = Array.init nodes (fun _ -> Memory.create ~words:shared_words) in
  let sys =
    Ivy.create eng counters fabric ~page_words:512 ~shared_words ~memories
  in
  Ivy.start sys;
  { eng; sys; counters }

let spawn c ~node body =
  ignore (Engine.spawn c.eng ~name:(Printf.sprintf "node%d" node) ~at:0 body)

let read c f ~node addr =
  Ivy.read_guard c.sys f ~node addr;
  Memory.get_int (Ivy.memory c.sys ~node) addr

let write c f ~node addr v =
  Ivy.write_guard c.sys f ~node addr;
  Memory.set_int (Ivy.memory c.sys ~node) addr v

let test_lock_counter () =
  let nodes = 4 in
  let c = make_cluster ~nodes ~shared_words:1024 () in
  let final = ref (-1) in
  for node = 0 to nodes - 1 do
    spawn c ~node (fun f ->
        for _ = 1 to 10 do
          Ivy.acquire c.sys f ~node ~lock:3;
          let v = read c f ~node 0 in
          write c f ~node 0 (v + 1);
          Ivy.release c.sys f ~node ~lock:3
        done;
        Ivy.barrier_arrive c.sys f ~node ~id:0;
        if node = 0 then final := read c f ~node 0)
  done;
  Engine.run c.eng;
  Alcotest.(check int) "all increments" 40 !final;
  Ivy.check_invariants c.sys

(* Sequential consistency: a reader polling an unsynchronized flag DOES
   see the writer's update (contrast with the LRC staleness test). *)
let test_sc_propagates_without_sync () =
  let c = make_cluster ~nodes:2 ~shared_words:1024 () in
  let observed = ref (-1) in
  spawn c ~node:0 (fun f -> write c f ~node:0 0 7);
  spawn c ~node:1 (fun f ->
      (* Poll until the value arrives; SC guarantees it eventually does
         because the write invalidates our copy. *)
      let rec poll tries =
        if tries = 0 then ()
        else
          let v = read c f ~node:1 0 in
          if v = 7 then observed := v
          else begin
            Engine.wait_until f (Engine.clock f + 100_000);
            poll (tries - 1)
          end
      in
      poll 100);
  Engine.run c.eng;
  Alcotest.(check int) "update visible without synchronization" 7 !observed

let test_write_ping_pong_counts () =
  (* Two nodes alternately writing the same page transfer the whole page
     each time: the false-sharing failure mode. *)
  let c = make_cluster ~nodes:2 ~shared_words:1024 () in
  let rounds = 5 in
  for node = 0 to 1 do
    spawn c ~node (fun f ->
        for r = 1 to rounds do
          (* Barriers force strict alternation. *)
          if r mod 2 = node then write c f ~node node (r * 10) else ();
          Ivy.barrier_arrive c.sys f ~node ~id:0
        done)
  done;
  Engine.run c.eng;
  Ivy.check_invariants c.sys;
  Alcotest.(check bool) "page transfers happened" true
    (Counters.get c.counters "ivy.page_transfers" >= rounds - 1)

let prop_random_writes_converge =
  QCheck.Test.make ~count:15 ~name:"ivy: disjoint writes all visible"
    QCheck.(int_bound 1000)
    (fun seed ->
      let nodes = 3 in
      let c = make_cluster ~nodes ~shared_words:2048 () in
      let rng = Prng.create ~seed in
      let plans =
        Array.init nodes (fun node ->
            Array.init 25 (fun _ ->
                ((node * 680) + Prng.int rng 680, Prng.int rng 100_000)))
      in
      for node = 0 to nodes - 1 do
        spawn c ~node (fun f ->
            Array.iter (fun (a, v) -> write c f ~node a v) plans.(node);
            Ivy.barrier_arrive c.sys f ~node ~id:0)
      done;
      Engine.run c.eng;
      Ivy.check_invariants c.sys;
      (* Node 0 reads everything through the protocol. *)
      let eng2 = c.eng in
      ignore eng2;
      let c2 = c in
      let ok = ref true in
      ignore
        (Engine.spawn c.eng ~name:"checker" ~at:0 (fun f ->
             Array.iter
               (fun plan ->
                 (* The last write to each address must be visible. *)
                 let final = Hashtbl.create 16 in
                 Array.iter (fun (a, v) -> Hashtbl.replace final a v) plan;
                 Hashtbl.iter
                   (fun a v -> if read c2 f ~node:0 a <> v then ok := false)
                   final)
               plans));
      Engine.run c.eng;
      !ok)

let test_single_node_is_free () =
  let c = make_cluster ~nodes:1 ~shared_words:1024 () in
  spawn c ~node:0 (fun f ->
      write c f ~node:0 0 5;
      ignore (read c f ~node:0 0);
      Alcotest.(check int) "no protocol cost" 0 (Engine.clock f));
  Engine.run c.eng

let suite =
  [
    Alcotest.test_case "lock-protected counter" `Quick test_lock_counter;
    Alcotest.test_case "SC propagates without sync" `Quick
      test_sc_propagates_without_sync;
    Alcotest.test_case "write ping-pong transfers pages" `Quick
      test_write_ping_pong_counts;
    QCheck_alcotest.to_alcotest prop_random_writes_converge;
    Alcotest.test_case "single node costs nothing" `Quick
      test_single_node_is_free;
  ]
