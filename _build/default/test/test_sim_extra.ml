(* Additional simulation-kernel tests: PRNG properties, clamping and
   ordering edge cases, resource accounting. *)

module Engine = Shm_sim.Engine
module Mailbox = Shm_sim.Mailbox
module Resource = Shm_sim.Resource
module Prng = Shm_sim.Prng

let test_prng_determinism () =
  let draw seed = List.init 20 (fun _ -> Prng.int (Prng.create ~seed) 1000) in
  Alcotest.(check bool) "same seed, same stream" true (draw 5 = draw 5);
  Alcotest.(check bool) "different seeds differ" true (draw 5 <> draw 6)

let prop_prng_int_bounds =
  QCheck.Test.make ~count:200 ~name:"prng int stays in bounds"
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Prng.create ~seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let prop_prng_float_bounds =
  QCheck.Test.make ~count:200 ~name:"prng float stays in bounds"
    QCheck.small_int
    (fun seed ->
      let rng = Prng.create ~seed in
      let v = Prng.float rng 3.5 in
      v >= 0.0 && v < 3.5)

let prop_shuffle_is_permutation =
  QCheck.Test.make ~count:100 ~name:"shuffle permutes"
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Prng.shuffle (Prng.create ~seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_prng_split_independent () =
  let rng = Prng.create ~seed:1 in
  let a = Prng.split rng in
  let b = Prng.split rng in
  let da = List.init 10 (fun _ -> Prng.int a 1_000_000) in
  let db = List.init 10 (fun _ -> Prng.int b 1_000_000) in
  Alcotest.(check bool) "split streams differ" true (da <> db)

let test_gaussian_moments () =
  let rng = Prng.create ~seed:3 in
  let n = 5000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Prng.gaussian rng in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f ~ 0, var %.3f ~ 1" mean var)
    true
    (abs_float mean < 0.05 && abs_float (var -. 1.0) < 0.1)

let test_schedule_past_clamps () =
  let eng = Engine.create () in
  let fired_at = ref (-1) in
  ignore
    (Engine.spawn eng ~name:"starter" ~at:100 (fun _ ->
         (* Scheduling in the past fires "now", never back in time. *)
         Engine.schedule eng ~at:10 (fun () -> fired_at := Engine.now eng)));
  Engine.run eng;
  Alcotest.(check int) "clamped to now" 100 !fired_at

let test_set_clock_monotone () =
  let eng = Engine.create () in
  ignore
    (Engine.spawn eng ~name:"f" ~at:50 (fun f ->
         Engine.set_clock f 10;
         Alcotest.(check int) "never moves backward" 50 (Engine.clock f);
         Engine.set_clock f 99;
         Alcotest.(check int) "moves forward" 99 (Engine.clock f)));
  Engine.run eng

let test_resource_reserve_ordering () =
  let r = Resource.create () in
  let f1 = Resource.reserve r ~ready:0 ~cycles:10 in
  let f2 = Resource.reserve r ~ready:0 ~cycles:10 in
  let f3 = Resource.reserve r ~ready:100 ~cycles:5 in
  Alcotest.(check (list int)) "serialized then idle gap" [ 10; 20; 105 ]
    [ f1; f2; f3 ];
  Alcotest.(check int) "busy total" 25 (Resource.busy_cycles r)

let test_mailbox_poll () =
  let eng = Engine.create () in
  let mb = Mailbox.create eng in
  Mailbox.post mb ~at:5 "x";
  ignore
    (Engine.spawn eng ~name:"poller" ~at:0 (fun f ->
         Alcotest.(check bool) "nothing yet" true (Mailbox.poll f mb = None);
         Engine.wait_until f 10;
         Alcotest.(check (option string)) "delivered" (Some "x")
           (Mailbox.poll f mb)));
  Engine.run eng

let test_resume_not_suspended () =
  let eng = Engine.create () in
  let f = Engine.spawn eng ~name:"f" ~at:0 (fun f -> Engine.advance f 1) in
  Engine.run eng;
  Alcotest.check_raises "resume of running fiber rejected"
    (Invalid_argument "Engine.resume: fiber f not suspended") (fun () ->
      Engine.resume eng f ~at:0)

let test_live_fiber_accounting () =
  let eng = Engine.create () in
  ignore (Engine.spawn eng ~name:"a" ~at:0 (fun _ -> ()));
  ignore (Engine.spawn eng ~daemon:true ~name:"d" ~at:0 (fun f -> Engine.suspend f));
  Alcotest.(check int) "daemon not counted" 1 (Engine.live_fibers eng);
  Engine.run eng;
  Alcotest.(check int) "all done" 0 (Engine.live_fibers eng)

let suite =
  [
    Alcotest.test_case "prng determinism" `Quick test_prng_determinism;
    QCheck_alcotest.to_alcotest prop_prng_int_bounds;
    QCheck_alcotest.to_alcotest prop_prng_float_bounds;
    QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
    Alcotest.test_case "prng split independence" `Quick
      test_prng_split_independent;
    Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
    Alcotest.test_case "past schedules clamp to now" `Quick
      test_schedule_past_clamps;
    Alcotest.test_case "set_clock is monotone" `Quick test_set_clock_monotone;
    Alcotest.test_case "resource reserve ordering" `Quick
      test_resource_reserve_ordering;
    Alcotest.test_case "mailbox poll" `Quick test_mailbox_poll;
    Alcotest.test_case "resume rejects non-suspended" `Quick
      test_resume_not_suspended;
    Alcotest.test_case "live fiber accounting" `Quick
      test_live_fiber_accounting;
  ]
