(* Tests for counters and table rendering. *)

module Counters = Shm_stats.Counters
module Table = Shm_stats.Table

let test_counters_basic () =
  let c = Counters.create () in
  Counters.incr c "a";
  Counters.add c "a" 4;
  Counters.add c "b" 10;
  Alcotest.(check int) "a" 5 (Counters.get c "a");
  Alcotest.(check int) "b" 10 (Counters.get c "b");
  Alcotest.(check int) "missing is zero" 0 (Counters.get c "zzz")

let test_counters_merge_reset () =
  let a = Counters.create () and b = Counters.create () in
  Counters.add a "x" 1;
  Counters.add b "x" 2;
  Counters.add b "y" 3;
  Counters.merge ~into:a b;
  Alcotest.(check (list (pair string int)))
    "merged sorted"
    [ ("x", 3); ("y", 3) ]
    (Counters.to_list a);
  Counters.reset a;
  Alcotest.(check int) "reset" 0 (Counters.get a "x")

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "name"; "value" ] in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_row t [ "b"; "22" ];
  let s = Table.render t in
  Alcotest.(check bool) "title present" true
    (String.length s > 0 && String.sub s 0 1 = "T");
  let index_of needle =
    let n = String.length needle and len = String.length s in
    let rec go i =
      if i + n > len then -1
      else if String.sub s i n = needle then i
      else go (i + 1)
    in
    go 0
  in
  Alcotest.(check bool) "row order preserved" true
    (let a = index_of "alpha" and b = index_of "22" in
     a >= 0 && b >= 0 && a < b)

let test_table_arity () =
  let t = Table.create ~title:"T" ~columns:[ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: wrong arity")
    (fun () -> Table.add_row t [ "only-one" ])

let test_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_f 3.14159);
  Alcotest.(check string) "digits" "3.1416" (Table.cell_f ~digits:4 3.14159);
  Alcotest.(check string) "int" "42" (Table.cell_i 42);
  Alcotest.(check string) "speedup" "7.40" (Table.cell_speedup 7.4)

let suite =
  [
    Alcotest.test_case "counters add/get" `Quick test_counters_basic;
    Alcotest.test_case "counters merge/reset" `Quick test_counters_merge_reset;
    Alcotest.test_case "table renders rows in order" `Quick test_table_render;
    Alcotest.test_case "table rejects wrong arity" `Quick test_table_arity;
    Alcotest.test_case "cell formatting" `Quick test_cells;
  ]
