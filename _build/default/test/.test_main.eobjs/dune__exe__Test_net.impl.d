test/test_net.ml: Alcotest List Printf Shm_net Shm_sim Shm_stats String
