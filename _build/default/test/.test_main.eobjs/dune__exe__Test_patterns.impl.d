test/test_patterns.ml: Alcotest List Printf Shm_apps Shm_parmacs Shm_platform
