test/test_apps.ml: Alcotest Array Float List Printf Shm_apps Shm_memsys Shm_parmacs
