test/test_sim.ml: Alcotest Buffer Hashtbl List Printf Shm_sim String
