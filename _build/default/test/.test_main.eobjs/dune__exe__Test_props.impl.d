test/test_props.ml: Alcotest Array Int64 List QCheck QCheck_alcotest Shm_apps Shm_memsys Shm_net Shm_parmacs Shm_sim Shm_tmk
