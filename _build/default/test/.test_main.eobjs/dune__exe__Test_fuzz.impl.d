test/test_fuzz.ml: Alcotest Array List Printf QCheck QCheck_alcotest Shm_apps Shm_memsys Shm_parmacs Shm_platform Shm_sim Shm_tmk
