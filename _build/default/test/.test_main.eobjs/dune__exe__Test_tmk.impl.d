test/test_tmk.ml: Alcotest Array Int64 List Printf QCheck QCheck_alcotest Shm_memsys Shm_net Shm_sim Shm_stats Shm_tmk
