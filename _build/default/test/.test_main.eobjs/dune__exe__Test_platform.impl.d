test/test_platform.ml: Alcotest Array Fun List Printexc Printf Shm_apps Shm_memsys Shm_parmacs Shm_platform Shm_sim Shm_stats
