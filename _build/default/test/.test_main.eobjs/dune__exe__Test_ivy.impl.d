test/test_ivy.ml: Alcotest Array Hashtbl Printf QCheck QCheck_alcotest Shm_ivy Shm_memsys Shm_net Shm_sim Shm_stats
