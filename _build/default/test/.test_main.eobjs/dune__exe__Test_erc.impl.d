test/test_erc.ml: Alcotest Array List Printf Shm_apps Shm_memsys Shm_net Shm_parmacs Shm_platform Shm_sim Shm_stats Shm_tmk
