test/test_memsys.ml: Alcotest Array Int64 Printf QCheck QCheck_alcotest Shm_memsys Shm_sim Shm_stats
