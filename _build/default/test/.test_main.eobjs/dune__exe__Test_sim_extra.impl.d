test/test_sim_extra.ml: Alcotest Array List Printf QCheck QCheck_alcotest Shm_sim
