test/test_apps_extra.ml: Alcotest Array List Printf QCheck QCheck_alcotest Shm_apps Shm_parmacs Shm_platform
