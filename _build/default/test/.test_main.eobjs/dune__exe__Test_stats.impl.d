test/test_stats.ml: Alcotest Shm_stats String
