test/test_tmk_edge.ml: Alcotest Array Printf QCheck QCheck_alcotest Shm_memsys Shm_net Shm_sim Shm_stats Shm_tmk
