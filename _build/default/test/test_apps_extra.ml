(* Additional application properties: bound sanity, scaling of problem
   sizes across scales, workload-statistics shapes the paper's analysis
   rests on. *)

module Parmacs = Shm_parmacs.Parmacs
module Registry = Shm_apps.Registry
module Sor = Shm_apps.Sor
module Tsp = Shm_apps.Tsp
module Water = Shm_apps.Water
module Report = Shm_platform.Report
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform

let prop_tsp_greedy_bounds_optimal =
  QCheck.Test.make ~count:15 ~name:"tsp: optimal <= greedy"
    QCheck.(int_range 1 500)
    (fun seed ->
      let p = { (Tsp.params_n 9) with Tsp.seed } in
      Tsp.optimal_length p <= Tsp.greedy_length p)

let prop_tsp_optimal_positive =
  QCheck.Test.make ~count:15 ~name:"tsp: tours have positive length"
    QCheck.(int_range 1 500)
    (fun seed ->
      let p = { (Tsp.params_n 8) with Tsp.seed } in
      Tsp.optimal_length p > 0.0)

let test_scales_are_ordered () =
  (* Paper-scale problems do strictly more work than default, default more
     than quick (measured in sequential simulated cycles on the DEC). *)
  let dec = Machines.get "dec" in
  List.iter
    (fun name ->
      let cycles scale =
        (dec.Platform.run (Registry.app ~scale name) ~nprocs:1).Report.cycles
      in
      let q = cycles Registry.Quick and d = cycles Registry.Default in
      Alcotest.(check bool)
        (Printf.sprintf "%s: quick %d < default %d" name q d)
        true (q < d))
    [ "sor"; "water"; "m-water"; "ilink-clp"; "ilink-bad" ]

let test_sor_partitioning_covers () =
  (* Every interior row is owned by exactly one processor, for awkward
     processor counts too. *)
  let rows = 97 in
  List.iter
    (fun nprocs ->
      let owned = Array.make (rows + 2) 0 in
      for id = 0 to nprocs - 1 do
        let lo = 1 + (rows * id / nprocs) and hi = 1 + (rows * (id + 1) / nprocs) in
        for i = lo to hi - 1 do
          owned.(i) <- owned.(i) + 1
        done
      done;
      for i = 1 to rows do
        if owned.(i) <> 1 then
          Alcotest.failf "row %d owned %d times at %d procs" i owned.(i) nprocs
      done)
    [ 1; 2; 3; 5; 7; 8; 13 ]

let test_water_lock_rate_gap () =
  (* The defining statistic: original Water acquires an order of magnitude
     more remote locks than M-Water (Table 2's key column). *)
  let run mode =
    let app =
      Water.make { (Water.default_params mode) with Water.molecules = 64; steps = 1 }
    in
    let p = Machines.get "treadmarks" in
    Report.get (p.Platform.run app ~nprocs:4) "tmk.lock_remote"
  in
  let locked = run Water.Locked and batched = run Water.Batched in
  Alcotest.(check bool)
    (Printf.sprintf "locked %d >> batched %d" locked batched)
    true
    (locked > 5 * batched)

let test_sor_diff_volume_effect () =
  (* Section 2.4.2: with the zero interior, TreadMarks moves far less data
     than with the touch-all initialization. *)
  let run touch_all =
    let app =
      Sor.make
        { Sor.default_params with rows = 128; cols = 128; iters = 4; touch_all }
    in
    let p = Machines.get "treadmarks" in
    Report.get (p.Platform.run app ~nprocs:4) "net.bytes.payload"
  in
  let zero = run false and touch = run true in
  Alcotest.(check bool)
    (Printf.sprintf "zero-init payload %d < touch-all %d" zero touch)
    true
    (zero < touch)

let test_tsp_parallel_matches_bruteforce_nondeterministic_path () =
  (* Run the same instance at several processor counts on TreadMarks: the
     search order differs wildly, the answer never does. *)
  let p = { (Tsp.params_n 10) with Tsp.expand_depth = 2 } in
  let expected = Tsp.optimal_length p in
  let platform = Machines.get "treadmarks" in
  List.iter
    (fun n ->
      let r = platform.Platform.run (Tsp.make p) ~nprocs:n in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "optimal at %d procs" n)
        expected r.Report.checksum)
    [ 2; 5; 8 ]

let suite =
  [
    QCheck_alcotest.to_alcotest prop_tsp_greedy_bounds_optimal;
    QCheck_alcotest.to_alcotest prop_tsp_optimal_positive;
    Alcotest.test_case "problem scales are ordered" `Slow
      test_scales_are_ordered;
    Alcotest.test_case "SOR bands partition rows" `Quick
      test_sor_partitioning_covers;
    Alcotest.test_case "Water vs M-Water lock rates" `Slow
      test_water_lock_rate_gap;
    Alcotest.test_case "SOR zero-init moves less data" `Quick
      test_sor_diff_volume_effect;
    Alcotest.test_case "TSP optimal at any processor count" `Slow
      test_tsp_parallel_matches_bruteforce_nondeterministic_path;
  ]
