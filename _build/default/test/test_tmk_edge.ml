(* Edge-case tests of the TreadMarks engine: notice transitivity through
   lock chains, diff minimality (the SOR effect), HS-style coalescing,
   eager-update/fault interplay, contended lock queueing, non-zero barrier
   managers, and interval linearization. *)

module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Vc = Shm_tmk.Vc
module Diff = Shm_tmk.Diff
module Record = Shm_tmk.Record
module Config = Shm_tmk.Config
module System = Shm_tmk.System

type cluster = { eng : Engine.t; sys : System.t; counters : Counters.t }

let make_cluster ?(eager_locks = []) ?(barrier_manager = 0) ~nodes
    ~shared_words () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let fabric =
    Fabric.create eng counters
      (Fabric.atm_dec ~overhead:Overhead.treadmarks_user)
      ~nodes
  in
  let memories = Array.init nodes (fun _ -> Memory.create ~words:shared_words) in
  let cfg =
    { (Config.default ~n_nodes:nodes ~shared_words) with eager_locks;
      barrier_manager }
  in
  let sys = System.create eng counters fabric cfg ~memories in
  System.start sys;
  { eng; sys; counters }

let spawn c ~node body =
  ignore (Engine.spawn c.eng ~name:(Printf.sprintf "node%d" node) ~at:0 body)

let read c f ~node addr =
  System.read_guard c.sys f ~node addr;
  Memory.get_int (System.memory c.sys ~node) addr

let write c f ~node addr v =
  System.write_guard c.sys f ~node addr;
  Memory.set_int (System.memory c.sys ~node) addr v

(* Causality is transitive: node 0's write travels to node 2 via a lock
   chain through node 1, even though 0 and 2 never synchronize directly. *)
let test_notice_transitivity () =
  let c = make_cluster ~nodes:3 ~shared_words:1024 () in
  let seen = ref (-1) in
  spawn c ~node:0 (fun f ->
      System.acquire c.sys f ~node:0 ~lock:0;
      write c f ~node:0 0 42;
      System.release c.sys f ~node:0 ~lock:0);
  spawn c ~node:1 (fun f ->
      Engine.wait_until f 10_000_000;
      System.acquire c.sys f ~node:1 ~lock:0;
      System.release c.sys f ~node:1 ~lock:0;
      (* Pass the causal knowledge on through a different lock. *)
      System.acquire c.sys f ~node:1 ~lock:7;
      System.release c.sys f ~node:1 ~lock:7);
  spawn c ~node:2 (fun f ->
      Engine.wait_until f 50_000_000;
      System.acquire c.sys f ~node:2 ~lock:7;
      seen := read c f ~node:2 0;
      System.release c.sys f ~node:2 ~lock:7);
  Engine.run c.eng;
  Alcotest.(check int) "write visible transitively" 42 !seen;
  System.check_invariants c.sys

(* The SOR effect: rewriting a page with identical values produces an
   empty diff, so almost no payload moves. *)
let test_diff_minimality () =
  let c = make_cluster ~nodes:2 ~shared_words:1024 () in
  spawn c ~node:0 (fun f ->
      (* Write 512 words with the values they already hold (zero). *)
      for i = 0 to 511 do
        write c f ~node:0 i 0
      done;
      (* ...and one word that actually changes. *)
      write c f ~node:0 7 99;
      System.barrier_arrive c.sys f ~node:0 ~id:0);
  spawn c ~node:1 (fun f ->
      System.barrier_arrive c.sys f ~node:1 ~id:0;
      ignore (read c f ~node:1 0));
  Engine.run c.eng;
  let payload = Counters.get c.counters "net.bytes.payload" in
  Alcotest.(check bool)
    (Printf.sprintf "tiny diff payload (%d bytes)" payload)
    true
    (payload < 64);
  System.check_invariants c.sys

(* HS-style coalescing: two processors of one node writing the same page
   produce a single twin and a single merged diff. *)
let test_node_coalescing () =
  let c = make_cluster ~nodes:2 ~shared_words:1024 () in
  let barrier_done = ref false in
  for cpu = 0 to 1 do
    ignore
      (Engine.spawn c.eng ~name:(Printf.sprintf "n0c%d" cpu) ~at:0 (fun f ->
           write c f ~node:0 (cpu * 10) (100 + cpu);
           Engine.wait_until f (Engine.clock f + 1000);
           if not !barrier_done then begin
             barrier_done := true;
             System.barrier_arrive c.sys f ~node:0 ~id:0
           end))
  done;
  spawn c ~node:1 (fun f ->
      System.barrier_arrive c.sys f ~node:1 ~id:0;
      let a = read c f ~node:1 0 in
      let b = read c f ~node:1 10 in
      Alcotest.(check (list int)) "both CPUs' writes in one diff" [ 100; 101 ]
        [ a; b ]);
  Engine.run c.eng;
  Alcotest.(check int) "one twin" 1 (Counters.get c.counters "tmk.twins");
  Alcotest.(check int) "one diff created" 1
    (Counters.get c.counters "tmk.diffs_created")

(* Heavily contended lock: every increment happens exactly once (the
   distributed queue forwards, queues and grants correctly). *)
let test_contended_lock () =
  let nodes = 6 in
  let c = make_cluster ~nodes ~shared_words:1024 () in
  let per_node = 8 in
  let final = ref 0 in
  for node = 0 to nodes - 1 do
    spawn c ~node (fun f ->
        for _ = 1 to per_node do
          System.acquire c.sys f ~node ~lock:11;
          let v = read c f ~node 0 in
          (* A think-time window widens the race if exclusion is broken. *)
          Engine.wait_until f (Engine.clock f + 500);
          write c f ~node 0 (v + 1);
          System.release c.sys f ~node ~lock:11
        done;
        System.barrier_arrive c.sys f ~node ~id:0;
        if node = 0 then final := read c f ~node 0)
  done;
  Engine.run c.eng;
  Alcotest.(check int) "no lost updates" (nodes * per_node) !final

(* Barrier manager on a non-zero node works the same. *)
let test_barrier_manager_elsewhere () =
  let c = make_cluster ~barrier_manager:2 ~nodes:3 ~shared_words:2048 () in
  let sum = ref 0 in
  for node = 0 to 2 do
    spawn c ~node (fun f ->
        write c f ~node (node * 600) (node + 1);
        System.barrier_arrive c.sys f ~node ~id:1;
        if node = 2 then begin
          let s = ref 0 in
          for k = 0 to 2 do
            s := !s + read c f ~node:2 (k * 600)
          done;
          sum := !s
        end)
  done;
  Engine.run c.eng;
  Alcotest.(check int) "all writes visible at manager 2" 6 !sum

(* Eager updates reaching a node mid-fault do not corrupt the page. *)
let test_eager_update_during_activity () =
  let c = make_cluster ~eager_locks:[ 3 ] ~nodes:3 ~shared_words:2048 () in
  (* Page 0 is the eager page; page 1 is ordinary barrier-synced data. *)
  spawn c ~node:0 (fun f ->
      write c f ~node:0 512 7;
      System.barrier_arrive c.sys f ~node:0 ~id:0;
      for k = 1 to 5 do
        System.acquire c.sys f ~node:0 ~lock:3;
        write c f ~node:0 0 k;
        System.release c.sys f ~node:0 ~lock:3
      done;
      System.barrier_arrive c.sys f ~node:0 ~id:1);
  for node = 1 to 2 do
    spawn c ~node (fun f ->
        System.barrier_arrive c.sys f ~node ~id:0;
        (* Fault page 1 repeatedly while eager updates for page 0 arrive. *)
        for _ = 1 to 5 do
          ignore (read c f ~node 512);
          Engine.wait_until f (Engine.clock f + 200_000)
        done;
        System.barrier_arrive c.sys f ~node ~id:1;
        Alcotest.(check int)
          (Printf.sprintf "node %d sees final eager value" node)
          5
          (read c f ~node 0))
  done;
  Engine.run c.eng;
  System.check_invariants c.sys;
  Alcotest.(check bool) "eager applies happened" true
    (Counters.get c.counters "tmk.eager_applies" > 0)

(* Interval records linearize consistently with happened-before-1. *)
let prop_linear_key_respects_order =
  QCheck.Test.make ~count:200 ~name:"linear_key extends happened-before"
    QCheck.(pair (array_of_size (QCheck.Gen.return 4) (int_bound 20))
              (array_of_size (QCheck.Gen.return 4) (int_bound 20)))
    (fun (a, b) ->
      let ra = { Record.creator = 0; seqno = a.(0); vc = a; pages = [] } in
      let rb = { Record.creator = 1; seqno = b.(1); vc = b; pages = [] } in
      (not (Record.happened_before ra rb))
      || Record.linear_key ra < Record.linear_key rb)

(* Two nodes hammering disjoint words of one page through different locks:
   multiple-writer correctness under lock-based (not barrier) sync. *)
let test_multiwriter_through_locks () =
  let c = make_cluster ~nodes:2 ~shared_words:1024 () in
  let rounds = 10 in
  for node = 0 to 1 do
    spawn c ~node (fun f ->
        for r = 1 to rounds do
          System.acquire c.sys f ~node ~lock:node;
          write c f ~node (node * 8) r;
          System.release c.sys f ~node ~lock:node
        done;
        System.barrier_arrive c.sys f ~node ~id:0;
        let a = read c f ~node 0 and b = read c f ~node 8 in
        Alcotest.(check (list int))
          (Printf.sprintf "node %d merged view" node)
          [ rounds; rounds ] [ a; b ])
  done;
  Engine.run c.eng;
  System.check_invariants c.sys

let suite =
  [
    Alcotest.test_case "write notices are transitive" `Quick
      test_notice_transitivity;
    Alcotest.test_case "identical rewrites make empty diffs" `Quick
      test_diff_minimality;
    Alcotest.test_case "same-node writes coalesce" `Quick test_node_coalescing;
    Alcotest.test_case "contended lock loses no updates" `Quick
      test_contended_lock;
    Alcotest.test_case "barrier manager on node 2" `Quick
      test_barrier_manager_elsewhere;
    Alcotest.test_case "eager updates during faults" `Quick
      test_eager_update_during_activity;
    QCheck_alcotest.to_alcotest prop_linear_key_respects_order;
    Alcotest.test_case "multiple writers through locks" `Quick
      test_multiwriter_through_locks;
  ]
