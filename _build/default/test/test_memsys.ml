(* Tests for the memory-system substrate: backing store, cache directory,
   private cache timing, snooping MESI machine, directory machine. *)

module Engine = Shm_sim.Engine
module Prng = Shm_sim.Prng
module Counters = Shm_stats.Counters
module Memory = Shm_memsys.Memory
module Cache = Shm_memsys.Cache
module Private_cache = Shm_memsys.Private_cache
module Snoop = Shm_memsys.Snoop
module Directory = Shm_memsys.Directory

let test_memory_roundtrip () =
  let m = Memory.create ~words:64 in
  Memory.set_float m 0 3.14159;
  Memory.set_int m 1 (-42);
  Memory.set_int m 2 max_int;
  Alcotest.(check (float 0.0)) "float" 3.14159 (Memory.get_float m 0);
  Alcotest.(check int) "negative int" (-42) (Memory.get_int m 1);
  Alcotest.(check int) "max int" max_int (Memory.get_int m 2)

let prop_memory_float_bits =
  QCheck.Test.make ~count:200 ~name:"memory preserves float bit patterns"
    QCheck.float (fun v ->
      let m = Memory.create ~words:1 in
      Memory.set_float m 0 v;
      Int64.bits_of_float (Memory.get_float m 0) = Int64.bits_of_float v)

let test_memory_blit () =
  let a = Memory.create ~words:32 and b = Memory.create ~words:32 in
  for i = 0 to 31 do
    Memory.set_int a i (i * i)
  done;
  Memory.blit ~src:a ~src_pos:8 ~dst:b ~dst_pos:16 ~len:8;
  Alcotest.(check int) "copied" (10 * 10) (Memory.get_int b 18);
  Alcotest.(check bool) "range equal" true
    (let ok = ref true in
     for i = 0 to 7 do
       if Memory.get_int b (16 + i) <> (8 + i) * (8 + i) then ok := false
     done;
     !ok)

let test_cache_mapping () =
  let c = Cache.create ~size_words:64 ~block_words:4 in
  Alcotest.(check int) "lines" 16 (Cache.lines c);
  Alcotest.(check int) "block alignment" 8 (Cache.block_of c 11);
  ignore (Cache.insert c 8 Cache.Shared);
  Alcotest.(check bool) "probe within block" true
    (Cache.probe c 10 = Cache.Shared);
  (* Word 8 + 64 maps to the same line: conflict eviction. *)
  let victim = Cache.insert c (8 + 64) Cache.Modified in
  Alcotest.(check bool) "evicted the old block" true
    (victim = Some (8, Cache.Shared));
  Alcotest.(check bool) "old block gone" true (Cache.probe c 8 = Cache.Invalid)

let test_cache_peek_victim () =
  let c = Cache.create ~size_words:64 ~block_words:4 in
  ignore (Cache.insert c 0 Cache.Modified);
  Alcotest.(check bool) "peek sees conflicting block" true
    (Cache.peek_victim c 64 = Some (0, Cache.Modified));
  Alcotest.(check bool) "peek same block is none" true
    (Cache.peek_victim c 0 = None);
  (* Peek must not modify anything. *)
  Alcotest.(check bool) "still resident" true (Cache.probe c 0 = Cache.Modified)

let test_private_cache_write_through () =
  let eng = Engine.create () in
  let pc = Private_cache.create Private_cache.dec_config in
  ignore
    (Engine.spawn eng ~name:"cpu" ~at:0 (fun f ->
         (* Write-through buffered: writes always cost one cycle. *)
         Private_cache.write pc f 100;
         Alcotest.(check int) "write is 1 cycle" 1 (Engine.clock f);
         (* Cold read misses. *)
         Private_cache.read pc f 100;
         Alcotest.(check int) "read miss" 19 (Engine.clock f);
         (* Same block now hits. *)
         Private_cache.read pc f 101;
         Alcotest.(check int) "read hit" 20 (Engine.clock f)));
  Engine.run eng;
  Alcotest.(check int) "one miss" 1 (Private_cache.misses pc);
  Alcotest.(check int) "one hit" 1 (Private_cache.hits pc)

let test_private_cache_invalidate_range () =
  let eng = Engine.create () in
  let pc = Private_cache.create Private_cache.sim_node_config in
  ignore
    (Engine.spawn eng ~name:"cpu" ~at:0 (fun f ->
         Private_cache.read pc f 0;
         Private_cache.invalidate_range pc ~addr:0 ~words:512;
         let before = Engine.clock f in
         Private_cache.read pc f 0;
         Alcotest.(check int) "re-miss after invalidation" 20
           (Engine.clock f - before)));
  Engine.run eng

(* MESI state walk on the snooping bus: E on sole read, S on shared read,
   M on write, cache-to-cache supply, invalidation on write. *)
let test_snoop_mesi_walk () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let mem = Memory.create ~words:1024 in
  Memory.set_int mem 0 7;
  let m = Snoop.create eng counters mem (Snoop.hs_node_config ~n_cpus:3) in
  ignore
    (Engine.spawn eng ~name:"script" ~at:0 (fun f ->
         (* CPU 0 reads alone: Exclusive. *)
         Alcotest.(check int) "value" 7
           (Int64.to_int (Snoop.read m f ~cpu:0 0));
         (* CPU 1 reads: both Shared, cache supplies. *)
         ignore (Snoop.read m f ~cpu:1 0);
         Snoop.check_coherence m;
         (* CPU 2 writes: others invalidated. *)
         Snoop.write m f ~cpu:2 0 99L;
         Snoop.check_coherence m;
         Alcotest.(check int) "write visible" 99
           (Int64.to_int (Snoop.read m f ~cpu:0 0));
         Snoop.check_coherence m))
  |> ignore;
  Engine.run eng;
  Alcotest.(check bool) "invalidations happened" true
    (Counters.get counters "bus.inval" > 0)

(* Concurrent rmw increments through the snooping machine never lose
   updates, under random interleavings. *)
let prop_snoop_rmw_atomic =
  QCheck.Test.make ~count:25 ~name:"snoop rmw increments are atomic"
    QCheck.(int_bound 1000)
    (fun seed ->
      let eng = Engine.create () in
      let counters = Counters.create () in
      let mem = Memory.create ~words:64 in
      let m = Snoop.create eng counters mem (Snoop.sgi_config ~n_cpus:4) in
      let rng = Prng.create ~seed in
      let per_cpu = 50 in
      for cpu = 0 to 3 do
        let delay = Prng.int rng 100 in
        ignore
          (Engine.spawn eng ~name:(Printf.sprintf "cpu%d" cpu) ~at:delay
             (fun f ->
               for _ = 1 to per_cpu do
                 ignore (Snoop.rmw m f ~cpu 0 Int64.succ);
                 Engine.advance f (Prng.int rng 50)
               done))
      done;
      Engine.run eng;
      Snoop.check_coherence m;
      Memory.get_int mem 0 = 4 * per_cpu)

let prop_directory_rmw_atomic =
  QCheck.Test.make ~count:25 ~name:"directory rmw increments are atomic"
    QCheck.(int_bound 1000)
    (fun seed ->
      let eng = Engine.create () in
      let counters = Counters.create () in
      let mem = Memory.create ~words:256 in
      let m =
        Directory.create eng counters mem (Directory.sim_config ~n_nodes:8)
      in
      let rng = Prng.create ~seed in
      let per_cpu = 40 in
      for node = 0 to 7 do
        let delay = Prng.int rng 100 in
        ignore
          (Engine.spawn eng ~name:(Printf.sprintf "n%d" node) ~at:delay
             (fun f ->
               for _ = 1 to per_cpu do
                 ignore (Directory.rmw m f ~node 0 Int64.succ);
                 Engine.advance f (Prng.int rng 200)
               done))
      done;
      Engine.run eng;
      Directory.check_invariants m;
      Memory.get_int mem 0 = 8 * per_cpu)

(* Random mixed reads/writes to random addresses keep the directory and
   the caches mutually consistent. *)
let prop_directory_random_traffic =
  QCheck.Test.make ~count:20 ~name:"directory invariants under random traffic"
    QCheck.(int_bound 1000)
    (fun seed ->
      let eng = Engine.create () in
      let counters = Counters.create () in
      let words = 4096 in
      let mem = Memory.create ~words in
      let m =
        Directory.create eng counters mem (Directory.sim_config ~n_nodes:6)
      in
      let rng = Prng.create ~seed in
      for node = 0 to 5 do
        let plan =
          Array.init 200 (fun _ ->
              (Prng.int rng words, Prng.int rng 2 = 0, Prng.int rng 30))
        in
        ignore
          (Engine.spawn eng ~name:(Printf.sprintf "n%d" node) ~at:0 (fun f ->
               Array.iter
                 (fun (addr, is_read, think) ->
                   if is_read then ignore (Directory.read m f ~node addr)
                   else Directory.write m f ~node addr (Int64.of_int addr);
                   Engine.advance f think)
                 plan))
      done;
      Engine.run eng;
      Directory.check_invariants m;
      true)

(* Remote misses cost more than local ones on the directory machine. *)
let test_directory_latencies () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let mem = Memory.create ~words:1024 in
  let m = Directory.create eng counters mem (Directory.sim_config ~n_nodes:4) in
  (* Block 0 is homed at node 0 (block-interleaved). *)
  let local = ref 0 and remote = ref 0 in
  ignore
    (Engine.spawn eng ~name:"script" ~at:0 (fun f ->
         let t0 = Engine.clock f in
         ignore (Directory.read m f ~node:0 0);
         local := Engine.clock f - t0;
         let t1 = Engine.clock f in
         (* Word 16 is block index 4, homed at node 0: remote for node 1. *)
         ignore (Directory.read m f ~node:1 16);
         remote := Engine.clock f - t1));
  Engine.run eng;
  Alcotest.(check bool)
    (Printf.sprintf "remote (%d) > local (%d)" !remote !local)
    true
    (!remote > !local)

(* The SOR effect: a working set larger than the SGI secondary thrashes. *)
let test_snoop_capacity_miss () =
  let eng = Engine.create () in
  let counters = Counters.create () in
  let words = 300_000 in
  (* > 1 MB secondary *)
  let mem = Memory.create ~words in
  let m = Snoop.create eng counters mem (Snoop.sgi_config ~n_cpus:1) in
  let small_time = ref 0 and large_time = ref 0 in
  ignore
    (Engine.spawn eng ~name:"cpu" ~at:0 (fun f ->
         (* Two passes over a small buffer: second pass all hits. *)
         for i = 0 to 8191 do
           ignore (Snoop.read m f ~cpu:0 i)
         done;
         let t = Engine.clock f in
         for i = 0 to 8191 do
           ignore (Snoop.read m f ~cpu:0 i)
         done;
         small_time := Engine.clock f - t;
         (* Two passes over > cache: second pass misses again. *)
         for i = 0 to words - 1 do
           ignore (Snoop.read m f ~cpu:0 i)
         done;
         let t = Engine.clock f in
         for i = 0 to words - 1 do
           ignore (Snoop.read m f ~cpu:0 i)
         done;
         large_time := Engine.clock f - t));
  Engine.run eng;
  let small_per_word = float_of_int !small_time /. 8192. in
  let large_per_word = float_of_int !large_time /. float_of_int words in
  Alcotest.(check bool)
    (Printf.sprintf "thrash %.2f cy/word > resident %.2f cy/word"
       large_per_word small_per_word)
    true
    (large_per_word > 2. *. small_per_word)

let suite =
  [
    Alcotest.test_case "memory int/float roundtrip" `Quick test_memory_roundtrip;
    QCheck_alcotest.to_alcotest prop_memory_float_bits;
    Alcotest.test_case "memory blit" `Quick test_memory_blit;
    Alcotest.test_case "cache direct mapping and eviction" `Quick
      test_cache_mapping;
    Alcotest.test_case "cache peek_victim" `Quick test_cache_peek_victim;
    Alcotest.test_case "private cache write-through timing" `Quick
      test_private_cache_write_through;
    Alcotest.test_case "private cache range invalidation" `Quick
      test_private_cache_invalidate_range;
    Alcotest.test_case "snoop MESI state walk" `Quick test_snoop_mesi_walk;
    QCheck_alcotest.to_alcotest prop_snoop_rmw_atomic;
    QCheck_alcotest.to_alcotest prop_directory_rmw_atomic;
    QCheck_alcotest.to_alcotest prop_directory_random_traffic;
    Alcotest.test_case "directory remote > local latency" `Quick
      test_directory_latencies;
    Alcotest.test_case "secondary-cache capacity misses" `Quick
      test_snoop_capacity_miss;
  ]
