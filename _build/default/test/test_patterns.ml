(* Tests for the sharing-pattern microbenchmarks: determinism across
   platforms and the protocol relationships each pattern exists to show. *)

module Parmacs = Shm_parmacs.Parmacs
module Patterns = Shm_apps.Patterns
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report

let small kind =
  { (Patterns.default_params kind) with Patterns.rounds = 6; compute = 10_000 }

let run platform_name kind ~n =
  let app = Patterns.make (small kind) in
  let p = Machines.get platform_name in
  p.Platform.run app ~nprocs:n

let test_checksums_agree_everywhere () =
  List.iter
    (fun kind ->
      let app = Patterns.make (small kind) in
      let reference = Parmacs.checksum_of (Parmacs.run_sequential app) app in
      ignore reference;
      let results =
        List.map
          (fun pname -> (pname, (run pname kind ~n:4).Report.checksum))
          [ "treadmarks"; "ivy"; "sgi"; "ah" ]
      in
      match results with
      | (_, first) :: rest ->
          List.iter
            (fun (pname, cs) ->
              Alcotest.(check (float 0.0))
                (Printf.sprintf "%s on %s" (Patterns.kind_name kind) pname)
                first cs)
            rest
      | [] -> ())
    Patterns.all_kinds

let test_false_sharing_tmk_beats_ivy () =
  let bytes pname = Report.get (run pname Patterns.False_sharing ~n:8) "net.bytes.total" in
  let tmk = bytes "treadmarks" and ivy = bytes "ivy" in
  Alcotest.(check bool)
    (Printf.sprintf "LRC %d bytes << IVY %d bytes" tmk ivy)
    true
    (3 * tmk < ivy)

let test_read_mostly_is_cheap () =
  (* After the initial distribution, read-mostly moves almost nothing
     under LRC: only the producer's first-round diffs. *)
  let r = run "treadmarks" Patterns.Read_mostly ~n:8 in
  Alcotest.(check bool)
    (Printf.sprintf "only %d faults" (Report.get r "tmk.faults"))
    true
    (Report.get r "tmk.faults" <= 16)

let test_migratory_diff_traffic_bounded () =
  (* Each migration carries at most one page's worth of diff. *)
  let p = small Patterns.Migratory in
  let r = run "treadmarks" Patterns.Migratory ~n:4 in
  let payload = Report.get r "net.bytes.payload" in
  let upper = (p.Patterns.rounds + 4) * (8 * (p.Patterns.words + 1) + 512) in
  Alcotest.(check bool)
    (Printf.sprintf "payload %d <= %d" payload upper)
    true (payload <= upper)

let test_producer_consumer_scales_reads () =
  (* Every consumer faults the buffer each round: miss messages grow with
     the consumer count. *)
  let msgs n = Report.get (run "treadmarks" Patterns.Producer_consumer ~n) "net.msgs.miss" in
  Alcotest.(check bool) "more consumers, more fetches" true (msgs 8 > msgs 2)

let suite =
  [
    Alcotest.test_case "patterns agree across platforms" `Slow
      test_checksums_agree_everywhere;
    Alcotest.test_case "false sharing: LRC moves far less" `Quick
      test_false_sharing_tmk_beats_ivy;
    Alcotest.test_case "read-mostly faults once" `Quick test_read_mostly_is_cheap;
    Alcotest.test_case "migratory diff traffic bounded" `Quick
      test_migratory_diff_traffic_bounded;
    Alcotest.test_case "producer-consumer fetch scaling" `Quick
      test_producer_consumer_scales_reads;
  ]
