(* Tests for the application suite: sequential correctness, determinism,
   and workload-shape properties the paper's analysis relies on. *)

module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory
module Layout = Shm_apps.Layout
module Sor = Shm_apps.Sor
module Tsp = Shm_apps.Tsp
module Water = Shm_apps.Water
module Ilink = Shm_apps.Ilink
module Registry = Shm_apps.Registry

let test_layout () =
  let l = Layout.create () in
  let a = Layout.alloc l 10 in
  let b = Layout.alloc_aligned l 5 ~align:512 in
  let c = Layout.alloc l 1 in
  Alcotest.(check int) "first at 0" 0 a;
  Alcotest.(check int) "aligned" 512 b;
  Alcotest.(check int) "after aligned" 517 c;
  Alcotest.(check int) "size" 518 (Layout.size l)

let small_sor =
  { Sor.default_params with Sor.rows = 24; cols = 16; iters = 3 }

let test_sor_reference_converges () =
  (* With fixed hot boundary and zero interior, heat flows in: the sum
     grows monotonically with iterations. *)
  let sum p = Sor.reference p in
  let s1 = sum { small_sor with iters = 1 } in
  let s3 = sum { small_sor with iters = 3 } in
  let s9 = sum { small_sor with iters = 9 } in
  Alcotest.(check bool) "monotone" true (s1 < s3 && s3 < s9)

let test_sor_sequential_matches_reference () =
  let app = Sor.make small_sor in
  let mem = Parmacs.run_sequential app in
  Alcotest.(check (float 0.0)) "bit-exact" (Sor.reference small_sor)
    (Parmacs.checksum_of mem app)

let test_sor_touch_all_differs () =
  let base = Parmacs.run_sequential (Sor.make small_sor) in
  let touch =
    Parmacs.run_sequential (Sor.make { small_sor with touch_all = true })
  in
  let a = Parmacs.checksum_of base (Sor.make small_sor) in
  let b = Parmacs.checksum_of touch (Sor.make { small_sor with touch_all = true }) in
  Alcotest.(check bool) "different initialization" true (a <> b)

let test_tsp_optimal_vs_bruteforce () =
  (* Exhaustive check for a small instance. *)
  let p = { (Tsp.params_n 8) with Tsp.expand_depth = 2 } in
  let d =
    (* Recompute distances the same way the app does, via the reference
       DFS in Tsp.optimal_length versus a permutation brute force. *)
    Tsp.optimal_length p
  in
  (* Brute force over all permutations of cities 1..7. *)
  let app = Tsp.make p in
  let mem = Memory.create ~words:app.Parmacs.shared_words in
  app.Parmacs.init mem;
  let n = 8 in
  let dist i j = Memory.get_int mem ((i * n) + j) in
  let best = ref max_int in
  let rec permute chosen len last visited =
    if len = n then begin
      let total = chosen + dist last 0 in
      if total < !best then best := total
    end
    else
      for c = 1 to n - 1 do
        if visited land (1 lsl c) = 0 then
          permute (chosen + dist last c) (len + 1) c (visited lor (1 lsl c))
      done
  in
  permute 0 1 0 1;
  Alcotest.(check (float 0.0)) "optimal matches brute force"
    (float_of_int !best) d

let test_tsp_sequential_finds_optimal () =
  let p = Tsp.params_n 10 in
  let app = Tsp.make p in
  let mem = Parmacs.run_sequential app in
  Alcotest.(check (float 0.0)) "sequential run optimal" (Tsp.optimal_length p)
    (Parmacs.checksum_of mem app)

let test_tsp_locks_are_reserved () =
  Alcotest.(check bool) "queue and bound locks distinct" true
    (Tsp.queue_lock <> Tsp.bound_lock)

let test_water_modes_agree () =
  (* Locked and batched variants compute the same physics sequentially. *)
  let p mode = { (Water.default_params mode) with Water.molecules = 32; steps = 2 } in
  let run mode =
    let app = Water.make (p mode) in
    Parmacs.checksum_of (Parmacs.run_sequential app) app
  in
  let locked = run Water.Locked and batched = run Water.Batched in
  Alcotest.(check bool)
    (Printf.sprintf "close: %g vs %g" locked batched)
    true
    (abs_float (locked -. batched) /. (1. +. abs_float locked) < 1e-9)

let test_water_finite () =
  let p = { (Water.default_params Water.Batched) with Water.molecules = 27; steps = 5 } in
  let app = Water.make p in
  let cs = Parmacs.checksum_of (Parmacs.run_sequential app) app in
  Alcotest.(check bool) "finite checksum" true (Float.is_finite cs)

let test_ilink_deterministic () =
  let run () =
    let app = Ilink.make (Ilink.default_params Ilink.Bad) in
    Parmacs.checksum_of (Parmacs.run_sequential app) app
  in
  Alcotest.(check (float 0.0)) "identical runs" (run ()) (run ())

let test_ilink_cost_shapes () =
  let clp = Ilink.family_costs (Ilink.default_params Ilink.Clp) in
  let bad = Ilink.family_costs (Ilink.default_params Ilink.Bad) in
  Alcotest.(check bool) "BAD has more families" true
    (Array.length bad > Array.length clp);
  let cv costs =
    let n = float_of_int (Array.length costs) in
    let mean = Array.fold_left (fun a c -> a +. float_of_int c) 0. costs /. n in
    let var =
      Array.fold_left
        (fun a c ->
          let d = float_of_int c -. mean in
          a +. (d *. d))
        0. costs
      /. n
    in
    sqrt var /. mean
  in
  Alcotest.(check bool)
    (Printf.sprintf "BAD is more skewed (cv %.2f vs %.2f)" (cv bad) (cv clp))
    true
    (cv bad > 2. *. cv clp)

let test_registry_names_resolve () =
  List.iter
    (fun name ->
      List.iter
        (fun scale -> ignore (Registry.app ~scale name))
        [ Registry.Quick; Registry.Default; Registry.Paper ])
    Registry.names

let test_registry_unknown () =
  Alcotest.check_raises "unknown app"
    (Invalid_argument "unknown application \"nope\"") (fun () ->
      ignore (Registry.app ~scale:Registry.Quick "nope"))

(* Shared-heap bounds: every app's sequential run touches only its heap. *)
let test_apps_fit_heap () =
  List.iter
    (fun name ->
      let app = Registry.app ~scale:Registry.Quick name in
      (* run_sequential would raise (bounds check in bytecode) on overflow;
         here we simply check it completes and produces a finite digest. *)
      let mem = Parmacs.run_sequential app in
      Alcotest.(check bool)
        (name ^ " digest finite")
        true
        (Float.is_finite (Parmacs.checksum_of mem app)))
    Registry.names

let suite =
  [
    Alcotest.test_case "layout allocator" `Quick test_layout;
    Alcotest.test_case "SOR reference converges" `Quick
      test_sor_reference_converges;
    Alcotest.test_case "SOR sequential = reference" `Quick
      test_sor_sequential_matches_reference;
    Alcotest.test_case "SOR touch-all changes initialization" `Quick
      test_sor_touch_all_differs;
    Alcotest.test_case "TSP optimal = brute force" `Slow
      test_tsp_optimal_vs_bruteforce;
    Alcotest.test_case "TSP sequential finds optimal" `Quick
      test_tsp_sequential_finds_optimal;
    Alcotest.test_case "TSP lock ids distinct" `Quick test_tsp_locks_are_reserved;
    Alcotest.test_case "Water locked = batched physics" `Quick
      test_water_modes_agree;
    Alcotest.test_case "Water stays finite" `Quick test_water_finite;
    Alcotest.test_case "ILINK deterministic" `Quick test_ilink_deterministic;
    Alcotest.test_case "ILINK CLP balanced, BAD skewed" `Quick
      test_ilink_cost_shapes;
    Alcotest.test_case "registry resolves all names" `Quick
      test_registry_names_resolve;
    Alcotest.test_case "registry rejects unknown" `Quick test_registry_unknown;
    Alcotest.test_case "all apps run sequentially" `Quick test_apps_fit_heap;
  ]
