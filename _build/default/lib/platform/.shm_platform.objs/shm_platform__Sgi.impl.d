lib/platform/sgi.ml: Array Hw_sync Platform Printf Report Shm_memsys Shm_parmacs Shm_sim Shm_stats
