lib/platform/hw_sync.ml: Hashtbl Int64 Shm_sim
