lib/platform/machines.ml: Ah Dsm_cluster Hs Ivy_cluster Printf Sgi Shm_tmk
