lib/platform/platform.ml: List Report Shm_parmacs
