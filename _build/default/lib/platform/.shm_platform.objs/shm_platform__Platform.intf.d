lib/platform/platform.mli: Report Shm_parmacs
