lib/platform/hw_sync.mli: Shm_sim
