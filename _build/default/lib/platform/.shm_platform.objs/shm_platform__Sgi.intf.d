lib/platform/sgi.mli: Platform
