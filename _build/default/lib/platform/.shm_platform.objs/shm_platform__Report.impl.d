lib/platform/report.ml: Format List Option
