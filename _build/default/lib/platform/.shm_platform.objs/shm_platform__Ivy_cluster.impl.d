lib/platform/ivy_cluster.ml: Array Platform Printf Report Shm_ivy Shm_memsys Shm_net Shm_parmacs Shm_sim Shm_stats
