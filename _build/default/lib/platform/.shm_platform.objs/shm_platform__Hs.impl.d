lib/platform/hs.ml: Array Hashtbl Hw_sync Int64 Platform Printf Report Shm_memsys Shm_net Shm_parmacs Shm_sim Shm_stats Shm_tmk Sys
