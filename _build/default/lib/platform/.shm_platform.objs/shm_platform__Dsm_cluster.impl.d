lib/platform/dsm_cluster.ml: Array Platform Printf Report Shm_memsys Shm_net Shm_parmacs Shm_sim Shm_stats Shm_tmk
