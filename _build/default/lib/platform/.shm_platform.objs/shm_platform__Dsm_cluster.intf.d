lib/platform/dsm_cluster.mli: Platform Shm_net Shm_tmk
