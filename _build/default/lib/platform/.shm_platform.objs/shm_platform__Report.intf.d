lib/platform/report.mli: Format
