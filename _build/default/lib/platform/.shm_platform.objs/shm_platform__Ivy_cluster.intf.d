lib/platform/ivy_cluster.mli: Platform
