lib/platform/machines.mli: Platform
