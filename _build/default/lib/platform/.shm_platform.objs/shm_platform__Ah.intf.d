lib/platform/ah.mli: Platform
