lib/platform/hs.mli: Platform Shm_net
