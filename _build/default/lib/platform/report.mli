(** Result of one application run on one platform. *)

type t = {
  platform : string;
  app : string;
  nprocs : int;
  cycles : int;  (** simulated cycles of the timed parallel section *)
  clock_mhz : float;
  checksum : float;
  counters : (string * int) list;
}

val seconds : t -> float

(** [get t name] is a counter value ([0] if absent). *)
val get : t -> string -> int

(** [rate t name] is the counter per simulated second. *)
val rate : t -> string -> float

(** [speedup ~base t] is [base.cycles / t.cycles] (base is usually the
    1-processor run). *)
val speedup : base:t -> t -> float

val pp : Format.formatter -> t -> unit
