(** The SGI 4D/480 model: up to 8 processors with snooping (Illinois)
    cache coherence over a shared bus — the paper's hardware platform. *)

val make : unit -> Platform.t

(** The paper's Section-2.5 hypothetical: dual cache tags and a bus twice
    as fast relative to the processors. *)
val make_fast : unit -> Platform.t
