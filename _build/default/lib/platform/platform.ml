type t = {
  name : string;
  clock_mhz : float;
  max_procs : int;
  run : Shm_parmacs.Parmacs.app -> nprocs:int -> Report.t;
}

let speedup_series t app ~procs =
  let base = t.run app ~nprocs:1 in
  List.map
    (fun n ->
      let r = if n = 1 then base else t.run app ~nprocs:n in
      (n, Report.speedup ~base r, r))
    procs
