(** A runnable machine model: give it an application and a processor
    count, get a timed, counted, checksummed report. *)

type t = {
  name : string;
  clock_mhz : float;
  max_procs : int;
  run : Shm_parmacs.Parmacs.app -> nprocs:int -> Report.t;
}

(** [speedup_series t app ~procs] runs [app] at each processor count and
    returns [(procs, speedup, report)] rows, speedups relative to the
    1-processor run on the same platform. *)
val speedup_series :
  t ->
  Shm_parmacs.Parmacs.app ->
  procs:int list ->
  (int * float * Report.t) list
