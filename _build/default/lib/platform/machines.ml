let names =
  [
    "dec"; "treadmarks"; "treadmarks-kernel"; "treadmarks-eager";
    "treadmarks-erc"; "ivy"; "sgi"; "sgi-fast"; "as"; "ah"; "hs";
  ]

let get = function
  | "dec" -> Dsm_cluster.dec_plain ()
  | "treadmarks" -> Dsm_cluster.dec ~level:Dsm_cluster.User ()
  | "treadmarks-kernel" -> Dsm_cluster.dec ~level:Dsm_cluster.Kernel ()
  | "treadmarks-eager" -> Dsm_cluster.dec ~eager:true ~level:Dsm_cluster.User ()
  | "treadmarks-erc" ->
      Dsm_cluster.dec ~notice_policy:Shm_tmk.Config.Eager_invalidate
        ~level:Dsm_cluster.User ()
  | "ivy" -> Ivy_cluster.make ()
  | "sgi" -> Sgi.make ()
  | "sgi-fast" -> Sgi.make_fast ()
  | "as" -> Dsm_cluster.as_machine ()
  | "ah" -> Ah.make ()
  | "hs" -> Hs.make ()
  | name -> invalid_arg (Printf.sprintf "unknown platform %S" name)
