(** The "All Hardware" design of paper Section 3: uniprocessor nodes on a
    crossbar with directory-based cache coherence (DASH/FLASH-like). *)

val make : unit -> Platform.t
