(** Named platform instances shared by the CLI, examples and benches. *)

(** Canonical names: ["dec"], ["treadmarks"], ["treadmarks-kernel"],
    ["treadmarks-eager"], ["treadmarks-erc"], ["ivy"], ["sgi"],
    ["sgi-fast"], ["as"], ["ah"], ["hs"]. *)
val names : string list

(** [get name] builds the platform.
    @raise Invalid_argument for an unknown name. *)
val get : string -> Platform.t
