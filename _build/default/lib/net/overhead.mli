(** Software messaging-overhead model (paper Sections 2.2 and 3.1).

    TreadMarks is a user-level library: every message send or receive traps
    into the kernel (fixed cost) and copies data (per-word cost); page
    faults and incoming messages dispatch a user-level handler; diffs cost
    a comparison pass over the page.  The paper sweeps the fixed and
    per-word costs to model Peregrine- and SHRIMP-class interfaces
    (Figures 14-16). *)

type t = {
  fixed_send : int;  (** cycles charged to the sender per message *)
  fixed_recv : int;  (** cycles charged to the receiver per message *)
  per_word : int;  (** cycles per 8-byte word of payload copied, each side *)
  handler : int;  (** cycles to dispatch a fault or message handler *)
  diff_per_word : int;  (** cycles per page word when creating a diff *)
}

(** Measured-TreadMarks-like user-level costs (fixed = 5000). *)
val treadmarks_user : t

(** Kernel-level TreadMarks implementation (paper Section 2.4.4):
    roughly halves the fixed cost. *)
val treadmarks_kernel : t

(** [sweep ~fixed ~per_word] is [treadmarks_user] with the two swept knobs
    replaced (Figures 14-16). *)
val sweep : fixed:int -> per_word:int -> t

(** Hardware-implemented messaging (AH crossbar): all costs zero. *)
val hardware : t

val pp : Format.formatter -> t -> unit
