(** Message classification and size accounting.

    The paper's Figures 12 and 13 break messages into {e miss} (data
    movement: page/diff requests and responses) versus {e synchronization}
    (locks and barriers), and data into {e miss data} (diff/page payload),
    {e consistency data} (write notices, intervals, vector timestamps) and
    {e message headers}. *)

type class_ = Miss | Sync

type sizes = {
  header_bytes : int;
  consistency_bytes : int;
  payload_bytes : int;
}

(** Fixed protocol header carried by every message. *)
val default_header_bytes : int

(** [sizes ?consistency ?payload ()] with the default header. *)
val sizes : ?consistency:int -> ?payload:int -> unit -> sizes

val total_bytes : sizes -> int

val class_name : class_ -> string

(** ['a envelope] is a delivered message. *)
type 'a envelope = {
  src : int;
  dst : int;
  class_ : class_;
  size : sizes;
  body : 'a;
}
