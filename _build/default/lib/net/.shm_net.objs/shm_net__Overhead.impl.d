lib/net/overhead.ml: Format
