lib/net/msg.mli:
