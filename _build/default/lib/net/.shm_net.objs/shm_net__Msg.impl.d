lib/net/msg.ml:
