lib/net/overhead.mli: Format
