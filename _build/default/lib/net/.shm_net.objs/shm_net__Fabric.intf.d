lib/net/fabric.mli: Msg Overhead Shm_sim Shm_stats
