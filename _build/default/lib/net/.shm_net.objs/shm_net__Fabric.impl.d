lib/net/fabric.ml: Array Msg Option Overhead Printf Shm_sim Shm_stats
