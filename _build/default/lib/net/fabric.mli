(** Point-to-point interconnect with per-node link occupancy.

    Models both the ATM LAN (each node has a dedicated full-duplex link to a
    non-blocking switch, so disjoint pairs communicate in parallel but a
    node's own links serialize) and, with different constants and zero
    software overhead, the AH crossbar.

    Sending charges the sender's fiber the software send cost, reserves the
    sender's transmit link and the receiver's receive link for the wire
    time, and posts the message to the receiver's mailbox.  Receiving
    charges the consuming fiber the software receive cost. *)

type 'a t

type config = {
  name : string;
  latency_cycles : int;  (** switch/propagation latency *)
  bytes_per_cycle : float;  (** per-link bandwidth *)
  overhead : Overhead.t;
}

(** DECstation cluster: 40 MHz CPUs on 155 Mbit/s ATM (~10 MB/s user-level). *)
val atm_dec : overhead:Overhead.t -> config

(** Section-3 simulated ATM: 100 MHz CPUs, 155 Mbit/s links, 1 us latency. *)
val atm_sim : overhead:Overhead.t -> config

(** Section-3 crossbar: 200 Mbyte/s per link, 100 ns latency, no software. *)
val crossbar_sim : config

val create :
  Shm_sim.Engine.t -> Shm_stats.Counters.t -> config -> nodes:int -> 'a t

val nodes : 'a t -> int

val config : 'a t -> config

(** [send t fiber ~src ~dst ~class_ ~size body] transmits; the fiber's clock
    ends when the message has left the sender (send overhead + local link
    occupancy), not at delivery. *)
val send :
  'a t ->
  Shm_sim.Engine.fiber ->
  src:int ->
  dst:int ->
  class_:Msg.class_ ->
  size:Msg.sizes ->
  'a ->
  unit

(** [loopback t fiber ~node ~class_ ~size body] posts a message to the
    node's own inbox at the fiber's current clock, free of wire time,
    software overheads and traffic counters.  Protocol layers use it to
    funnel a node's {e local} requests through its handler fiber so that
    protocol state mutations serialize in one logical order. *)
val loopback :
  'a t ->
  Shm_sim.Engine.fiber ->
  node:int ->
  class_:Msg.class_ ->
  size:Msg.sizes ->
  'a ->
  unit

(** [recv t fiber ~node] blocks until a message for [node] arrives and
    charges the receive overhead. *)
val recv : 'a t -> Shm_sim.Engine.fiber -> node:int -> 'a Msg.envelope

(** [poll t fiber ~node] consumes a pending message without blocking. *)
val poll : 'a t -> Shm_sim.Engine.fiber -> node:int -> 'a Msg.envelope option
