module Engine = Shm_sim.Engine
module Resource = Shm_sim.Resource
module Mailbox = Shm_sim.Mailbox
module Counters = Shm_stats.Counters

type config = {
  name : string;
  latency_cycles : int;
  bytes_per_cycle : float;
  overhead : Overhead.t;
}

(* 155 Mbit/s user-limited to ~10 MB/s at 40 MHz: 0.25 bytes/cycle.
   1 us switch latency = 40 cycles at 40 MHz. *)
let atm_dec ~overhead =
  { name = "atm-dec"; latency_cycles = 40; bytes_per_cycle = 0.25; overhead }

(* 155 Mbit/s = ~19.4 MB/s at 100 MHz: 0.194 bytes/cycle; 1 us = 100 cycles. *)
let atm_sim ~overhead =
  { name = "atm-sim"; latency_cycles = 100; bytes_per_cycle = 0.194; overhead }

(* 200 MB/s at 100 MHz = 2 bytes/cycle; 100 ns = 10 cycles. *)
let crossbar_sim =
  { name = "crossbar"; latency_cycles = 10; bytes_per_cycle = 2.0;
    overhead = Overhead.hardware }

type 'a t = {
  eng : Engine.t;
  counters : Counters.t;
  cfg : config;
  n : int;
  tx : Resource.t array;
  rx : Resource.t array;
  inbox : 'a Msg.envelope Mailbox.t array;
}

let create eng counters cfg ~nodes =
  {
    eng;
    counters;
    cfg;
    n = nodes;
    tx = Array.init nodes (fun i -> Resource.create ~name:(Printf.sprintf "tx%d" i) ());
    rx = Array.init nodes (fun i -> Resource.create ~name:(Printf.sprintf "rx%d" i) ());
    inbox = Array.init nodes (fun _ -> Mailbox.create eng);
  }

let nodes t = t.n

let config t = t.cfg

let wire_cycles t bytes =
  int_of_float (ceil (float_of_int bytes /. t.cfg.bytes_per_cycle))

let data_words (size : Msg.sizes) =
  (size.consistency_bytes + size.payload_bytes + 7) / 8

let count t ~class_ ~(size : Msg.sizes) =
  let c = t.counters in
  Counters.incr c (Printf.sprintf "net.msgs.%s" (Msg.class_name class_));
  Counters.incr c "net.msgs.total";
  Counters.add c "net.bytes.header" size.header_bytes;
  Counters.add c "net.bytes.consistency" size.consistency_bytes;
  Counters.add c "net.bytes.payload" size.payload_bytes;
  Counters.add c "net.bytes.total" (Msg.total_bytes size)

let send t fiber ~src ~dst ~class_ ~size body =
  if src = dst then invalid_arg "Fabric.send: src = dst";
  count t ~class_ ~size;
  let ov = t.cfg.overhead in
  Engine.advance fiber (ov.fixed_send + (ov.per_word * data_words size));
  Engine.sync fiber;
  let bytes = Msg.total_bytes size in
  let cycles = wire_cycles t bytes in
  let tx_done =
    Resource.reserve t.tx.(src) ~ready:(Engine.clock fiber) ~cycles
  in
  let arrival = tx_done + t.cfg.latency_cycles in
  let delivered = Resource.reserve t.rx.(dst) ~ready:arrival ~cycles in
  (* The sender is released once the message leaves its link. *)
  Engine.set_clock fiber tx_done;
  Mailbox.post t.inbox.(dst) ~at:delivered { Msg.src; dst; class_; size; body }

let charge_recv t fiber (env : 'a Msg.envelope) =
  let ov = t.cfg.overhead in
  Engine.advance fiber (ov.fixed_recv + (ov.per_word * data_words env.size));
  env

let loopback t fiber ~node ~class_ ~size body =
  Mailbox.post t.inbox.(node) ~at:(Engine.clock fiber)
    { Msg.src = node; dst = node; class_; size; body }

let recv t fiber ~node = charge_recv t fiber (Mailbox.recv fiber t.inbox.(node))

let poll t fiber ~node =
  Option.map (charge_recv t fiber) (Mailbox.poll fiber t.inbox.(node))
