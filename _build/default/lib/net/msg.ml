type class_ = Miss | Sync

type sizes = {
  header_bytes : int;
  consistency_bytes : int;
  payload_bytes : int;
}

let default_header_bytes = 32

let sizes ?(consistency = 0) ?(payload = 0) () =
  { header_bytes = default_header_bytes; consistency_bytes = consistency;
    payload_bytes = payload }

let total_bytes s = s.header_bytes + s.consistency_bytes + s.payload_bytes

let class_name = function Miss -> "miss" | Sync -> "sync"

type 'a envelope = {
  src : int;
  dst : int;
  class_ : class_;
  size : sizes;
  body : 'a;
}
