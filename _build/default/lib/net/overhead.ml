type t = {
  fixed_send : int;
  fixed_recv : int;
  per_word : int;
  handler : int;
  diff_per_word : int;
}

let treadmarks_user =
  { fixed_send = 5000; fixed_recv = 5000; per_word = 10; handler = 1000;
    diff_per_word = 2 }

let treadmarks_kernel =
  { fixed_send = 2200; fixed_recv = 2200; per_word = 10; handler = 400;
    diff_per_word = 2 }

let sweep ~fixed ~per_word =
  { treadmarks_user with fixed_send = fixed; fixed_recv = fixed; per_word }

let hardware =
  { fixed_send = 0; fixed_recv = 0; per_word = 0; handler = 0; diff_per_word = 0 }

let pp ppf t =
  Format.fprintf ppf "fixed=%d/%d per_word=%d handler=%d diff=%d" t.fixed_send
    t.fixed_recv t.per_word t.handler t.diff_per_word
