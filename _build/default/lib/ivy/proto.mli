(** Wire protocol of the IVY-style sequentially-consistent page DSM. *)

type page_data = int64 array

type t =
  | Read_req of { page : int; requester : int; req : int }
      (** to the page's manager *)
  | Read_fwd of { page : int; requester : int; req : int }
      (** manager -> owner *)
  | Page_copy of { page : int; req : int; data : page_data }
      (** owner -> requester (read copy) *)
  | Write_req of { page : int; requester : int; req : int }
  | Invalidate of { page : int; req : int }
      (** manager -> copyset member *)
  | Inval_ack of { page : int; req : int }
  | Write_fwd of { page : int; requester : int; req : int }
      (** manager -> owner, after invalidations complete *)
  | Page_grant of { page : int; req : int; data : page_data option }
      (** owner -> requester: ownership (+ data unless requester held a
          read copy) *)
  | Txn_done of { page : int; requester : int; write : int }
      (** requester -> manager: transaction complete, [write] is 1 for
          ownership transfers *)
  | Lock_req of { lock : int; requester : int; req : int }
  | Lock_grant of { lock : int; req : int }
  | Unlock of { lock : int; requester : int }
  | Barrier_arrive of { barrier : int; node : int; req : int }
  | Barrier_depart of { barrier : int; req : int }

val sizes : t -> Shm_net.Msg.sizes

val class_ : t -> Shm_net.Msg.class_
