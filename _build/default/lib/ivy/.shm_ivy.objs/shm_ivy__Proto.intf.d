lib/ivy/proto.mli: Shm_net
