lib/ivy/system.ml: Array Fun Hashtbl Int List Option Printf Proto Queue Set Shm_memsys Shm_net Shm_sim Shm_stats
