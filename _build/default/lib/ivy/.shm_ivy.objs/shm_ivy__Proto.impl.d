lib/ivy/proto.ml: Array Shm_net
