lib/ivy/system.mli: Proto Shm_memsys Shm_net Shm_sim Shm_stats
