module Msg = Shm_net.Msg

type page_data = int64 array

type t =
  | Read_req of { page : int; requester : int; req : int }
  | Read_fwd of { page : int; requester : int; req : int }
  | Page_copy of { page : int; req : int; data : page_data }
  | Write_req of { page : int; requester : int; req : int }
  | Invalidate of { page : int; req : int }
  | Inval_ack of { page : int; req : int }
  | Write_fwd of { page : int; requester : int; req : int }
  | Page_grant of { page : int; req : int; data : page_data option }
  | Txn_done of { page : int; requester : int; write : int }
  | Lock_req of { lock : int; requester : int; req : int }
  | Lock_grant of { lock : int; req : int }
  | Unlock of { lock : int; requester : int }
  | Barrier_arrive of { barrier : int; node : int; req : int }
  | Barrier_depart of { barrier : int; req : int }

let sizes = function
  | Page_copy { data; _ } -> Msg.sizes ~payload:(8 * Array.length data) ()
  | Page_grant { data = Some d; _ } -> Msg.sizes ~payload:(8 * Array.length d) ()
  | Read_req _ | Read_fwd _ | Write_req _ | Invalidate _ | Inval_ack _
  | Write_fwd _
  | Page_grant { data = None; _ }
  | Txn_done _ ->
      Msg.sizes ~consistency:8 ()
  | Lock_req _ | Lock_grant _ | Unlock _ | Barrier_arrive _ | Barrier_depart _
    ->
      Msg.sizes ~consistency:8 ()

let class_ = function
  | Lock_req _ | Lock_grant _ | Unlock _ | Barrier_arrive _ | Barrier_depart _
    ->
      Msg.Sync
  | Read_req _ | Read_fwd _ | Page_copy _ | Write_req _ | Invalidate _
  | Inval_ack _ | Write_fwd _ | Page_grant _ | Txn_done _ ->
      Msg.Miss
