(** PARMACS-style parallel programming interface (ANL macros).

    The paper's applications are written once against this interface and
    run unchanged on every platform — TreadMarks over ATM, the SGI bus
    machine, and the simulated AS/AH/HS systems — exactly as the original
    programs ran on both the DECstation cluster and the 4D/480.

    A processor's shared accesses go through [read]/[write] (which charge
    simulated time and drive the platform's coherence machinery);
    [compute] charges local computation.  Private scratch data is ordinary
    OCaml state, its access cost folded into [compute] estimates. *)

type ctx = {
  id : int;  (** processor id, [0 .. nprocs-1] *)
  nprocs : int;
  read : int -> int64;  (** shared word read (guarded, timed) *)
  write : int -> int64 -> unit;
  lock : int -> unit;
  unlock : int -> unit;
  barrier : int -> unit;
  compute : int -> unit;  (** charge local work, in cycles *)
}

(** {2 Typed access helpers} *)

val read_f : ctx -> int -> float
val write_f : ctx -> int -> float -> unit
val read_i : ctx -> int -> int
val write_i : ctx -> int -> int -> unit

(** {2 Applications} *)

type app = {
  name : string;
  shared_words : int;  (** size of the shared heap the app uses *)
  eager_lock_hints : int list;
      (** locks that platforms may run in eager-release mode when asked *)
  init : Shm_memsys.Memory.t -> unit;
      (** untimed sequential initialization of the shared image *)
  work : ctx -> unit;  (** the timed parallel section, one call per CPU *)
  checksum_addr : int;
      (** float slot that processor 0 fills at the end of [work] with a
          result digest, used to validate runs across platforms *)
}

(** [run_sequential app] executes the app untimed on a plain memory with
    one processor and no-op synchronization; returns the final memory.
    Reference results for validation. *)
val run_sequential : app -> Shm_memsys.Memory.t

(** [checksum_of mem app] reads the digest slot. *)
val checksum_of : Shm_memsys.Memory.t -> app -> float
