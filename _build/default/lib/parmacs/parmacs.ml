module Memory = Shm_memsys.Memory

type ctx = {
  id : int;
  nprocs : int;
  read : int -> int64;
  write : int -> int64 -> unit;
  lock : int -> unit;
  unlock : int -> unit;
  barrier : int -> unit;
  compute : int -> unit;
}

let read_f ctx addr = Int64.float_of_bits (ctx.read addr)
let write_f ctx addr v = ctx.write addr (Int64.bits_of_float v)
let read_i ctx addr = Int64.to_int (ctx.read addr)
let write_i ctx addr v = ctx.write addr (Int64.of_int v)

type app = {
  name : string;
  shared_words : int;
  eager_lock_hints : int list;
  init : Memory.t -> unit;
  work : ctx -> unit;
  checksum_addr : int;
}

let run_sequential app =
  let mem = Memory.create ~words:app.shared_words in
  app.init mem;
  let ctx =
    {
      id = 0;
      nprocs = 1;
      read = Memory.get mem;
      write = Memory.set mem;
      lock = ignore;
      unlock = ignore;
      barrier = ignore;
      compute = ignore;
    }
  in
  app.work ctx;
  mem

let checksum_of mem app = Memory.get_float mem app.checksum_addr
