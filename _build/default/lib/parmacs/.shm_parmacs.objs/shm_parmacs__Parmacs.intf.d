lib/parmacs/parmacs.mli: Shm_memsys
