lib/parmacs/parmacs.ml: Int64 Shm_memsys
