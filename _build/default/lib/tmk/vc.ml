type t = int array

let create ~nodes = Array.make nodes 0

let copy = Array.copy

let nodes = Array.length

let dominates a b =
  let n = Array.length a in
  let rec loop i = i >= n || (a.(i) >= b.(i) && loop (i + 1)) in
  assert (Array.length b = n);
  loop 0

let max_into ~into b =
  for i = 0 to Array.length into - 1 do
    if b.(i) > into.(i) then into.(i) <- b.(i)
  done

let join a b =
  let r = copy a in
  max_into ~into:r b;
  r

let sum = Array.fold_left ( + ) 0

let equal a b = a = b

let bytes t = 4 * Array.length t

let pp ppf t =
  Format.fprintf ppf "<%s>"
    (String.concat "," (Array.to_list (Array.map string_of_int t)))
