module Msg = Shm_net.Msg

type t =
  | Lock_req of { lock : int; requester : int; req : int; vc : Vc.t }
  | Lock_forward of { lock : int; requester : int; req : int; vc : Vc.t }
  | Lock_grant of { lock : int; req : int; vc : Vc.t; records : Record.t list }
  | Diff_req of { page : int; requester : int; req : int; lo : int; hi : int }
  | Diff_resp of { page : int; req : int; creator : int; diffs : (int * Diff.t) list }
  | Barrier_arrive of {
      barrier : int;
      node : int;
      req : int;
      vc : Vc.t;
      records : Record.t list;
    }
  | Barrier_depart of { barrier : int; req : int; vc : Vc.t; records : Record.t list }
  | Eager_update of { record : Record.t; diffs : Diff.t list }
  | Eager_notice of { record : Record.t; requester : int; req : int }
  | Eager_ack of { req : int }

let records_bytes records =
  List.fold_left (fun acc r -> acc + Record.bytes r) 0 records

let sizes = function
  | Lock_req { vc; _ } | Lock_forward { vc; _ } ->
      Msg.sizes ~consistency:(Vc.bytes vc) ()
  | Lock_grant { vc; records; _ } ->
      Msg.sizes ~consistency:(Vc.bytes vc + records_bytes records) ()
  | Diff_req _ -> Msg.sizes ~consistency:16 ()
  | Diff_resp { diffs; _ } ->
      let payload =
        List.fold_left (fun acc (_, d) -> acc + Diff.bytes d) 0 diffs
      in
      Msg.sizes ~payload ()
  | Barrier_arrive { vc; records; _ } | Barrier_depart { vc; records; _ } ->
      Msg.sizes ~consistency:(Vc.bytes vc + records_bytes records) ()
  | Eager_update { record; diffs } ->
      let payload = List.fold_left (fun acc d -> acc + Diff.bytes d) 0 diffs in
      Msg.sizes ~consistency:(Record.bytes record) ~payload ()
  | Eager_notice { record; _ } ->
      Msg.sizes ~consistency:(Record.bytes record) ()
  | Eager_ack _ -> Msg.sizes ()

let class_ = function
  | Lock_req _ | Lock_forward _ | Lock_grant _ | Barrier_arrive _
  | Barrier_depart _ ->
      Msg.Sync
  | Eager_notice _ | Eager_ack _ -> Msg.Sync
  | Diff_req _ | Diff_resp _ | Eager_update _ -> Msg.Miss

let kind_name = function
  | Lock_req _ -> "lock_req"
  | Lock_forward _ -> "lock_forward"
  | Lock_grant _ -> "lock_grant"
  | Diff_req _ -> "diff_req"
  | Diff_resp _ -> "diff_resp"
  | Barrier_arrive _ -> "barrier_arrive"
  | Barrier_depart _ -> "barrier_depart"
  | Eager_update _ -> "eager_update"
  | Eager_notice _ -> "eager_notice"
  | Eager_ack _ -> "eager_ack"
