(** Vector timestamps over the happened-before-1 partial order
    (Keleher et al., "Lazy Release Consistency").

    [vc.(i)] is the index of the most recent interval of node [i] whose
    write notices the holder has seen. *)

type t = int array

val create : nodes:int -> t

val copy : t -> t

val nodes : t -> int

(** [dominates a b] is true iff [a.(i) >= b.(i)] for all [i]. *)
val dominates : t -> t -> bool

(** [max_into ~into b] sets [into] to the componentwise maximum. *)
val max_into : into:t -> t -> unit

val join : t -> t -> t

(** [sum t] is the total interval count; a strictly monotone function of
    the partial order, used to linearize diff application. *)
val sum : t -> int

val equal : t -> t -> bool

(** Wire size in bytes (4 bytes per component, as in 1994). *)
val bytes : t -> int

val pp : Format.formatter -> t -> unit
