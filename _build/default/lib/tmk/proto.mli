(** Wire protocol of the TreadMarks DSM system. *)

type t =
  | Lock_req of { lock : int; requester : int; req : int; vc : Vc.t }
      (** to the lock's manager *)
  | Lock_forward of { lock : int; requester : int; req : int; vc : Vc.t }
      (** manager -> last requester (distributed queue) *)
  | Lock_grant of { lock : int; req : int; vc : Vc.t; records : Record.t list }
      (** previous holder -> requester, carrying write notices *)
  | Diff_req of { page : int; requester : int; req : int; lo : int; hi : int }
      (** ask the destination (the diffs' creator) for its diffs of [page]
          for intervals [lo < seqno <= hi] *)
  | Diff_resp of { page : int; req : int; creator : int; diffs : (int * Diff.t) list }
      (** (seqno, diff) pairs, oldest first *)
  | Barrier_arrive of {
      barrier : int;
      node : int;
      req : int;
      vc : Vc.t;
      records : Record.t list;  (** arriver's own records new to the manager *)
    }
  | Barrier_depart of { barrier : int; req : int; vc : Vc.t; records : Record.t list }
  | Eager_update of { record : Record.t; diffs : Diff.t list }
      (** eager lock release: push this interval's diffs to everyone *)
  | Eager_notice of { record : Record.t; requester : int; req : int }
      (** eager-invalidate release consistency: push the write notice (not
          the data) to everyone at release *)
  | Eager_ack of { req : int }
      (** eager-invalidate RC: the releaser blocks until every node has
          acknowledged its notices — the ordering guarantee conventional
          RC pays for at every release *)

(** Wire sizes, split into consistency data and payload per Figure 13. *)
val sizes : t -> Shm_net.Msg.sizes

val class_ : t -> Shm_net.Msg.class_

val kind_name : t -> string
