lib/tmk/vc.ml: Array Format String
