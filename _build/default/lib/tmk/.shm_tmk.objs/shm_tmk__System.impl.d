lib/tmk/system.ml: Array Config Diff Format Hashtbl List Option Printf Proto Queue Record Shm_memsys Shm_net Shm_sim Shm_stats String Sys Vc
