lib/tmk/diff.ml: Array Format List Shm_memsys
