lib/tmk/system.mli: Config Proto Shm_memsys Shm_net Shm_sim Shm_stats Vc
