lib/tmk/record.mli: Vc
