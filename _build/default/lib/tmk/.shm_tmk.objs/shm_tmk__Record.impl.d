lib/tmk/record.ml: Array Hashtbl List Printf Vc
