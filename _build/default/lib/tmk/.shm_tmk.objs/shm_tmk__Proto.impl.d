lib/tmk/proto.ml: Diff List Record Shm_net Vc
