lib/tmk/config.ml:
