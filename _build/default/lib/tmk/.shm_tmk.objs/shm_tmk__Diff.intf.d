lib/tmk/diff.mli: Format Shm_memsys
