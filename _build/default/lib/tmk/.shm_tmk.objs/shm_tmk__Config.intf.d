lib/tmk/config.mli:
