lib/tmk/proto.mli: Diff Record Shm_net Vc
