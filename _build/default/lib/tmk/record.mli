(** Interval records and per-node record stores.

    An {e interval} is the span of a node's execution between consecutive
    synchronization points that dirtied at least one page.  Its record —
    the creator, the creator's interval index, the vector time at close,
    and the dirtied pages — is what travels in write notices. *)

type t = {
  creator : int;
  seqno : int;  (** creator's 1-based interval index *)
  vc : Vc.t;  (** creator's vector time at interval close *)
  pages : int list;  (** pages dirtied during the interval *)
}

(** Wire size of one record in a notice: 16-byte descriptor (including
    the delta-encoded vector time), 4 bytes per page id. *)
val bytes : t -> int

(** [happened_before a b] in the happened-before-1 partial order. *)
val happened_before : t -> t -> bool

(** [linear_key r] sorts any set of records into a linear extension of
    happened-before-1 ([Vc.sum] is strictly monotone along the order). *)
val linear_key : t -> int * int * int

module Store : sig
  (** A node's collection of known interval records, indexed by creator.

      Invariant: for every creator, known records form a prefix
      [1..contiguous] plus possibly isolated records beyond it (delivered
      by eager-release updates). *)

  type record := t

  type t

  val create : nodes:int -> t

  (** [add t r] registers [r]; returns [true] if it was new. *)
  val add : t -> record -> bool

  val find : t -> creator:int -> seqno:int -> record option

  val known : t -> record -> bool

  (** [range t ~creator ~lo ~hi] is the records with [lo < seqno <= hi],
      oldest first.  @raise Invalid_argument on a gap. *)
  val range : t -> creator:int -> lo:int -> hi:int -> record list

  (** Highest contiguously-known interval index for [creator]. *)
  val contiguous : t -> creator:int -> int
end
