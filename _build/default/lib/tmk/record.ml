type t = {
  creator : int;
  seqno : int;
  vc : Vc.t;
  pages : int list;
}

(* Wire size.  Interval vector times are delta-encoded against the
   enclosing message (an interval differs from the previously-described
   one in one or two components), so a record costs a fixed 16-byte
   descriptor plus 4 bytes per dirtied page. *)
let bytes r = 16 + (4 * List.length r.pages)

let happened_before a b = (not (Vc.equal a.vc b.vc)) && Vc.dominates b.vc a.vc

let linear_key r = (Vc.sum r.vc, r.creator, r.seqno)

module Store = struct
  type record = t

  type per_creator = {
    by_seq : (int, record) Hashtbl.t;
    mutable contig : int;
  }

  type t = per_creator array

  let create ~nodes =
    Array.init nodes (fun _ -> { by_seq = Hashtbl.create 32; contig = 0 })

  let bump pc =
    while Hashtbl.mem pc.by_seq (pc.contig + 1) do
      pc.contig <- pc.contig + 1
    done

  let add t (r : record) =
    let pc = t.(r.creator) in
    if Hashtbl.mem pc.by_seq r.seqno then false
    else begin
      Hashtbl.add pc.by_seq r.seqno r;
      bump pc;
      true
    end

  let find t ~creator ~seqno = Hashtbl.find_opt t.(creator).by_seq seqno

  let known t (r : record) = Hashtbl.mem t.(r.creator).by_seq r.seqno

  let range t ~creator ~lo ~hi =
    let pc = t.(creator) in
    let rec loop seq acc =
      if seq <= lo then acc
      else
        match Hashtbl.find_opt pc.by_seq seq with
        | Some r -> loop (seq - 1) (r :: acc)
        | None ->
            invalid_arg
              (Printf.sprintf "Record.Store.range: creator %d missing seq %d"
                 creator seq)
    in
    loop hi []

  let contiguous t ~creator = t.(creator).contig
end
