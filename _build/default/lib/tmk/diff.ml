module Memory = Shm_memsys.Memory

type run = { offset : int; words : int64 array }

type t = { page : int; runs : run list }

let make ~page ~twin ~current ~base ~words =
  let runs = ref [] in
  let i = ref 0 in
  while !i < words do
    if Memory.get current (base + !i) <> twin.(!i) then begin
      let start = !i in
      while
        !i < words && Memory.get current (base + !i) <> twin.(!i)
      do
        incr i
      done;
      let len = !i - start in
      let data = Array.init len (fun k -> Memory.get current (base + start + k)) in
      runs := { offset = start; words = data } :: !runs
    end
    else incr i
  done;
  { page; runs = List.rev !runs }

let apply t mem ~base =
  List.iter
    (fun { offset; words } ->
      Array.iteri (fun k v -> Memory.set mem (base + offset + k) v) words)
    t.runs

let apply_to_twin t twin =
  List.iter
    (fun { offset; words } ->
      Array.iteri (fun k v -> twin.(offset + k) <- v) words)
    t.runs

let is_empty t = t.runs = []

let words t = List.fold_left (fun acc r -> acc + Array.length r.words) 0 t.runs

let bytes t = 16 + List.fold_left (fun acc r -> acc + 4 + (8 * Array.length r.words)) 0 t.runs

let pp ppf t =
  Format.fprintf ppf "diff(page=%d, runs=%d, words=%d)" t.page
    (List.length t.runs) (words t)
