(** Fixed-width text tables for experiment reports. *)

type t

(** [create ~title ~columns] starts a table. *)
val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit

(** [render t] lays the table out with columns sized to fit. *)
val render : t -> string

val print : t -> unit

(** {2 Cell formatting helpers} *)

val cell_f : ?digits:int -> float -> string

val cell_i : int -> string

(** [cell_speedup s] renders a speedup such as ["5.31"]. *)
val cell_speedup : float -> string
