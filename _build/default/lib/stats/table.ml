type t = { title : string; columns : string list; mutable rows : string list list }

let create ~title ~columns = { title; columns; rows = [] }

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong arity";
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all = t.columns :: rows in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  List.iter measure all;
  let buf = Buffer.create 256 in
  let line ch =
    Array.iter (fun w -> Buffer.add_string buf (String.make (w + 2) ch)) widths;
    Buffer.add_char buf '\n'
  in
  let emit row =
    List.iteri
      (fun i cell ->
        Buffer.add_string buf (Printf.sprintf "%*s  " widths.(i) cell))
      row;
    Buffer.add_char buf '\n'
  in
  Buffer.add_string buf t.title;
  Buffer.add_char buf '\n';
  line '-';
  emit t.columns;
  line '-';
  List.iter emit rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v

let cell_i v = string_of_int v

let cell_speedup v = Printf.sprintf "%.2f" v
