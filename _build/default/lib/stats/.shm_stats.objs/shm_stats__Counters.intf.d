lib/stats/counters.mli: Format
