lib/stats/counters.ml: Format Hashtbl List String
