lib/stats/table.mli:
