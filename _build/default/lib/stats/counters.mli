(** Named integer counters.

    Every subsystem (network, caches, DSM protocol) accumulates event counts
    and byte counts here; the bench harness reads them back by name. *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

(** [get t name] is the counter value, or [0] if never touched. *)
val get : t -> string -> int

(** [merge ~into src] adds every counter of [src] into [into]. *)
val merge : into:t -> t -> unit

val reset : t -> unit

(** [to_list t] is the (name, value) pairs sorted by name. *)
val to_list : t -> (string * int) list

val pp : Format.formatter -> t -> unit
