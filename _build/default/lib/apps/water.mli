(** Water: n-body molecular dynamics in the style of the SPLASH code
    (paper Section 2.3), in two synchronization flavours:

    - [Locked] (the original Water): a processor acquires the lock on a
      molecule's record {e each time} it adds a pairwise force
      contribution — one lock acquire per interaction;
    - [Batched] (M-Water, Section 2.3): contributions accumulate in a
      private array during the step and are applied once per molecule at
      the end, cutting lock acquires from O(pairs) to O(molecules).

    On the SGI the two perform identically; on TreadMarks the lock rate
    decides everything (Figures 7 and 8). *)

type mode = Locked | Batched

type params = {
  molecules : int;
  steps : int;
  mode : mode;
  seed : int;
  pair_cycles : int;  (** compute cost of one pairwise interaction *)
}

val default_params : mode -> params

(** The paper's input: 288 molecules, 5 steps. *)
val params_paper : mode -> params

val make : params -> Shm_parmacs.Parmacs.app

(** Lock id protecting molecule [m]'s record. *)
val molecule_lock : int -> int
