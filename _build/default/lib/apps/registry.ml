type scale = Quick | Default | Paper

let scale_of_string = function
  | "quick" -> Some Quick
  | "default" -> Some Default
  | "paper" -> Some Paper
  | _ -> None

let scale_name = function
  | Quick -> "quick"
  | Default -> "default"
  | Paper -> "paper"

let names =
  [
    "sor"; "sor-square"; "sor-touchall"; "tsp"; "tsp-small"; "water";
    "m-water"; "ilink-clp"; "ilink-bad"; "migratory"; "producer-consumer";
    "false-sharing"; "read-mostly";
  ]

let sor_params ~scale ~square ~touch_all =
  let rows, cols, iters =
    match (scale, square) with
    | Quick, _ -> (96, 96, 4)
    | Default, false -> (2048, 1024, 8)
    | Default, true -> (1152, 1152, 8)
    | Paper, false -> (2000, 1000, 51)
    | Paper, true -> (1000, 1000, 51)
  in
  { Sor.default_params with rows; cols; iters; touch_all }

(* The paper ran 18- and 19-city inputs on real hardware; an exhaustive
   simulated search at that size is intractable (days of DFS), so paper
   scale caps at 16/15 cities — documented in EXPERIMENTS.md. *)
let tsp_cities ~scale ~small =
  match (scale, small) with
  | Quick, false -> 10
  | Quick, true -> 9
  | Default, false -> 13
  | Default, true -> 12
  | Paper, false -> 16
  | Paper, true -> 15

let water_params ~scale mode =
  match scale with
  | Quick -> { (Water.default_params mode) with molecules = 64; steps = 1 }
  | Default -> Water.default_params mode
  | Paper -> Water.params_paper mode

let ilink_params ~scale input =
  let base = Ilink.default_params input in
  (* The BAD input iterates more often over smaller families: a higher
     barrier rate, the paper's worst case. *)
  let base =
    match input with
    | Ilink.Bad -> { base with Ilink.iters = 10; scale = 0.7 }
    | Ilink.Clp -> base
  in
  match scale with
  | Quick -> { base with Ilink.iters = base.Ilink.iters / 3 + 1; scale = base.Ilink.scale *. 0.25 }
  | Default -> base
  | Paper -> { base with Ilink.iters = base.Ilink.iters * 2; scale = base.Ilink.scale *. 4.0 }

let pattern_params ~scale kind =
  let base = Patterns.default_params kind in
  match scale with
  | Quick -> { base with Patterns.rounds = base.Patterns.rounds / 4 }
  | Default -> base
  | Paper -> { base with Patterns.rounds = base.Patterns.rounds * 4 }

let app ~scale = function
  | "sor" -> Sor.make (sor_params ~scale ~square:false ~touch_all:false)
  | "sor-square" -> Sor.make (sor_params ~scale ~square:true ~touch_all:false)
  | "sor-touchall" -> Sor.make (sor_params ~scale ~square:false ~touch_all:true)
  | "tsp" -> Tsp.make (Tsp.params_n (tsp_cities ~scale ~small:false))
  | "tsp-small" -> Tsp.make (Tsp.params_n (tsp_cities ~scale ~small:true))
  | "water" -> Water.make (water_params ~scale Water.Locked)
  | "m-water" -> Water.make (water_params ~scale Water.Batched)
  | "ilink-clp" -> Ilink.make (ilink_params ~scale Ilink.Clp)
  | "ilink-bad" -> Ilink.make (ilink_params ~scale Ilink.Bad)
  | "migratory" -> Patterns.make (pattern_params ~scale Patterns.Migratory)
  | "producer-consumer" ->
      Patterns.make (pattern_params ~scale Patterns.Producer_consumer)
  | "false-sharing" ->
      Patterns.make (pattern_params ~scale Patterns.False_sharing)
  | "read-mostly" -> Patterns.make (pattern_params ~scale Patterns.Read_mostly)
  | name -> invalid_arg (Printf.sprintf "unknown application %S" name)
