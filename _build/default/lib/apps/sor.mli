(** Red-Black Successive Over-Relaxation (paper Section 2.3).

    The grid is divided into bands of consecutive rows, one per processor;
    communication happens across band boundaries, with a barrier after
    each half-iteration (colour phase).

    Two initializations, as in the paper:
    - default: boundary rows fixed at 1.0, interior 0.0 — early iterations
      recompute interior points to the {e same} value, so TreadMarks diffs
      move almost nothing while hardware coherence moves whole lines;
    - [~touch_all:true]: interior seeded so every point changes at every
      iteration, equalizing data movement (Section 2.4.2). *)

type params = {
  rows : int;  (** interior rows *)
  cols : int;
  iters : int;
  touch_all : bool;
  omega : float;  (** over-relaxation factor *)
  point_cycles : int;  (** compute cost per point update *)
}

val default_params : params

(** Paper problem sizes. *)
val params_2000x1000 : params

val params_1000x1000 : params

val make : params -> Shm_parmacs.Parmacs.app

(** [reference params] computes the expected checksum sequentially. *)
val reference : params -> float
