type t = { mutable next : int }

let create () = { next = 0 }

let alloc t words =
  let base = t.next in
  t.next <- base + words;
  base

let alloc_aligned t words ~align =
  let base = (t.next + align - 1) / align * align in
  t.next <- base + words;
  base

let size t = t.next
