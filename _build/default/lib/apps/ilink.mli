(** ILINK-like genetic linkage analysis kernel (paper Section 2.3).

    The real ILINK iteratively maximizes the likelihood of disease-gene
    location over pedigree data: each optimizer iteration evaluates
    per-family likelihoods in parallel (separated by barriers), then a
    master updates the recombination-fraction estimate that every worker
    reads.  Family peeling costs are data-dependent and cannot be
    load-balanced in advance.

    This kernel reproduces that skeleton with synthetic pedigrees
    (substitution documented in DESIGN.md): per-family computation charges
    a deterministic, family-specific cost, writes a per-family result
    vector read back by the master, and iterations are fenced by barriers.

    Two inputs mirror the paper's best and worst cases:
    - [Clp]: few large families, balanced, low communication;
    - [Bad]: many families with heavy-tailed costs, imbalanced, with
      larger result vectors — higher barrier and data rates. *)

type input = Clp | Bad

type params = {
  input : input;
  iters : int;
  seed : int;
  scale : float;  (** multiplies family compute costs *)
}

val default_params : input -> params

val make : params -> Shm_parmacs.Parmacs.app

(** [family_costs params] is the synthetic per-family cycle cost vector
    (exposed for load-balance analysis in examples). *)
val family_costs : params -> int array
