(** Named application instances at three problem scales, shared by the
    CLI, the examples and the benchmark harness. *)

type scale = Quick | Default | Paper

val scale_of_string : string -> scale option

val scale_name : scale -> string

(** Canonical application names: ["sor"], ["sor-square"], ["sor-touchall"],
    ["tsp"], ["tsp-small"], ["water"], ["m-water"], ["ilink-clp"],
    ["ilink-bad"], plus the sharing-pattern microbenchmarks ["migratory"],
    ["producer-consumer"], ["false-sharing"], ["read-mostly"]. *)
val names : string list

(** [app ~scale name] builds the instance.
    @raise Not_found for an unknown name. *)
val app : scale:scale -> string -> Shm_parmacs.Parmacs.app
