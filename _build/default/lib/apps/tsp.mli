(** Branch-and-bound travelling salesman (paper Section 2.3).

    A shared, lock-protected queue holds partial tours; workers pop a
    tour, extend it, and either push the children back or, past a depth
    threshold, solve the subtree with a sequential DFS.  The global bound
    is {e updated} under a lock but {e read} without synchronization — the
    program is not properly labelled, so on lazy release consistency a
    processor can prune against a stale bound and do redundant work
    (Section 2.4.3).  The bound lock is tagged as an eager-release hint;
    platforms run it eagerly when asked, reproducing the paper's fix.

    The final bound is the optimal tour length, identical on every
    platform regardless of timing. *)

type params = {
  ncities : int;
  seed : int;
  expand_depth : int;  (** tours shorter than this are split, not solved *)
  queue_capacity : int;
  node_cycles : int;  (** compute cost of extending a tour by one city *)
}

val default_params : params

(** [params_n ncities] scales the depth and capacity sensibly. *)
val params_n : int -> params

val make : params -> Shm_parmacs.Parmacs.app

(** Exhaustive check value: optimal tour length via the same sequential
    DFS, for validation. *)
val optimal_length : params -> float

(** Length of the greedy nearest-neighbour tour used as the initial
    bound; the gap to optimal drives how much bound propagation matters. *)
val greedy_length : params -> float

(** Lock ids, exposed for experiment configuration. *)
val queue_lock : int

val bound_lock : int
