lib/apps/ilink.ml: Array Float Layout Printf Shm_memsys Shm_parmacs Shm_sim
