lib/apps/sor.mli: Shm_parmacs
