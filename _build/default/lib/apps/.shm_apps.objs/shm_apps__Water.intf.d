lib/apps/water.mli: Shm_parmacs
