lib/apps/tsp.mli: Shm_parmacs
