lib/apps/registry.mli: Shm_parmacs
