lib/apps/sor.ml: Layout Printf Shm_memsys Shm_parmacs
