lib/apps/tsp.ml: Array Layout Printf Shm_memsys Shm_parmacs Shm_sim
