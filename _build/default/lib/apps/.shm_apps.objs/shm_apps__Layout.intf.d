lib/apps/layout.mli:
