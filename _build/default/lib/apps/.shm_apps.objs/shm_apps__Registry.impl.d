lib/apps/registry.ml: Ilink Patterns Printf Sor Tsp Water
