lib/apps/ilink.mli: Shm_parmacs
