lib/apps/layout.ml:
