lib/apps/patterns.mli: Shm_parmacs
