lib/apps/patterns.ml: Layout Printf Shm_memsys Shm_parmacs
