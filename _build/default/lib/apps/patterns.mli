(** Sharing-pattern microbenchmarks — the classic DSM characterization
    workloads (Munin's taxonomy), used to show which coherence strategy
    suits which access pattern:

    - [Migratory]: one record travels processor to processor under a lock
      (read-modify-write each visit);
    - [Producer_consumer]: one processor fills a buffer each round, the
      rest read it after a barrier;
    - [False_sharing]: every processor updates its own word, all words on
      one page — harmless under multiple-writer LRC, page ping-pong under
      single-writer protocols, line bouncing under hardware coherence;
    - [Read_mostly]: a table written once then read by everyone.

    Every processor does a fixed amount of per-round work, so the
    interesting metric is {e efficiency} (time at 1 processor / time at N
    processors): 1.0 means the coherence machinery was free.

    Checksums are deterministic, so every platform must agree. *)

type kind = Migratory | Producer_consumer | False_sharing | Read_mostly

val kind_name : kind -> string

val all_kinds : kind list

type params = {
  kind : kind;
  rounds : int;
  words : int;  (** payload size per round *)
  compute : int;  (** cycles of work per item touched *)
}

val default_params : kind -> params

val make : params -> Shm_parmacs.Parmacs.app
