(** Bump allocator for laying out an application's shared heap. *)

type t

val create : unit -> t

(** [alloc t words] reserves [words] and returns the base address. *)
val alloc : t -> int -> int

(** [alloc_aligned t words ~align] starts the block on an [align]-word
    boundary (e.g. a page, to give a hot lock-protected word its own
    page). *)
val alloc_aligned : t -> int -> align:int -> int

(** Total words allocated so far. *)
val size : t -> int
