type state = Invalid | Shared | Exclusive | Modified

let state_name = function
  | Invalid -> "I"
  | Shared -> "S"
  | Exclusive -> "E"
  | Modified -> "M"

type t = {
  block_words : int;
  lines : int;
  tags : int array; (* resident block address per line; -1 = empty *)
  states : state array;
  mutable hits : int;
  mutable misses : int;
}

let create ~size_words ~block_words =
  if size_words mod block_words <> 0 then
    invalid_arg "Cache.create: size not a multiple of block size";
  let lines = size_words / block_words in
  {
    block_words;
    lines;
    tags = Array.make lines (-1);
    states = Array.make lines Invalid;
    hits = 0;
    misses = 0;
  }

let block_words t = t.block_words

let lines t = t.lines

let block_of t addr = addr - (addr mod t.block_words)

let line_of t block = block / t.block_words mod t.lines

let state_of t block =
  let line = line_of t block in
  if t.tags.(line) = block then t.states.(line) else Invalid

let set_state t block state =
  let line = line_of t block in
  if t.tags.(line) <> block then
    invalid_arg "Cache.set_state: block not resident";
  t.states.(line) <- state

let probe t addr = state_of t (block_of t addr)

let insert t block state =
  let line = line_of t block in
  let old_tag = t.tags.(line) and old_state = t.states.(line) in
  t.tags.(line) <- block;
  t.states.(line) <- state;
  if old_tag >= 0 && old_tag <> block && old_state <> Invalid then
    Some (old_tag, old_state)
  else None

let peek_victim t block =
  let line = line_of t block in
  if t.tags.(line) >= 0 && t.tags.(line) <> block && t.states.(line) <> Invalid
  then Some (t.tags.(line), t.states.(line))
  else None

let invalidate t block =
  let line = line_of t block in
  if t.tags.(line) = block then begin
    let old = t.states.(line) in
    t.states.(line) <- Invalid;
    old
  end
  else Invalid

let invalidate_all t =
  Array.fill t.tags 0 t.lines (-1);
  Array.fill t.states 0 t.lines Invalid

let iter_valid t f =
  for line = 0 to t.lines - 1 do
    if t.tags.(line) >= 0 && t.states.(line) <> Invalid then
      f t.tags.(line) t.states.(line)
  done

let hits t = t.hits
let misses t = t.misses
let note_hit t = t.hits <- t.hits + 1
let note_miss t = t.misses <- t.misses + 1
