lib/memsys/memory.ml: Array1 Bigarray Int64
