lib/memsys/directory.ml: Array Cache Hashtbl Int Memory Option Printf Set Shm_sim Shm_stats
