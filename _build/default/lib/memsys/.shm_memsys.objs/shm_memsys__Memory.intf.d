lib/memsys/memory.mli:
