lib/memsys/cache.mli:
