lib/memsys/snoop.mli: Memory Shm_sim Shm_stats
