lib/memsys/directory.mli: Memory Shm_sim Shm_stats
