lib/memsys/private_cache.mli: Shm_sim
