lib/memsys/snoop.ml: Array Cache Hashtbl List Memory Option Printf Shm_sim Shm_stats String
