lib/memsys/private_cache.ml: Cache Shm_sim
