module Engine = Shm_sim.Engine

type write_policy = Write_through_buffered | Write_back_allocate

type config = {
  size_words : int;
  block_words : int;
  hit_cycles : int;
  miss_cycles : int;
  write_policy : write_policy;
}

(* 64 KB = 8192 words; 32-byte blocks = 4 words. *)
let dec_config =
  { size_words = 8192; block_words = 4; hit_cycles = 1; miss_cycles = 18;
    write_policy = Write_through_buffered }

let sim_node_config =
  { size_words = 8192; block_words = 4; hit_cycles = 1; miss_cycles = 20;
    write_policy = Write_back_allocate }

type t = { cfg : config; cache : Cache.t }

let create cfg =
  { cfg; cache = Cache.create ~size_words:cfg.size_words ~block_words:cfg.block_words }

let config t = t.cfg

let read t fiber addr =
  match Cache.probe t.cache addr with
  | Cache.Invalid ->
      Cache.note_miss t.cache;
      ignore (Cache.insert t.cache (Cache.block_of t.cache addr) Cache.Exclusive);
      Engine.advance fiber t.cfg.miss_cycles
  | Cache.Shared | Cache.Exclusive | Cache.Modified ->
      Cache.note_hit t.cache;
      Engine.advance fiber t.cfg.hit_cycles

let write t fiber addr =
  match t.cfg.write_policy with
  | Write_through_buffered ->
      (* Write buffer absorbs the store; no allocation on miss. *)
      Engine.advance fiber t.cfg.hit_cycles
  | Write_back_allocate -> (
      match Cache.probe t.cache addr with
      | Cache.Invalid ->
          Cache.note_miss t.cache;
          ignore (Cache.insert t.cache (Cache.block_of t.cache addr) Cache.Modified);
          Engine.advance fiber t.cfg.miss_cycles
      | Cache.Shared | Cache.Exclusive | Cache.Modified ->
          Cache.note_hit t.cache;
          ignore (Cache.insert t.cache (Cache.block_of t.cache addr) Cache.Modified);
          Engine.advance fiber t.cfg.hit_cycles)

let invalidate_range t ~addr ~words =
  let bw = t.cfg.block_words in
  let first = Cache.block_of t.cache addr in
  let last = Cache.block_of t.cache (addr + words - 1) in
  let block = ref first in
  while !block <= last do
    ignore (Cache.invalidate t.cache !block);
    block := !block + bw
  done

let hits t = Cache.hits t.cache
let misses t = Cache.misses t.cache
