(** Word-addressed backing store.

    All simulated shared memory is an array of 64-bit words.  Floats are
    stored through their IEEE-754 bit pattern, so data moved by the
    protocols (diffs, cache blocks) round-trips exactly.  Integers must fit
    in an OCaml [int] (63 bits). *)

type t

val create : words:int -> t

val words : t -> int

val get : t -> int -> int64
val set : t -> int -> int64 -> unit

val get_float : t -> int -> float
val set_float : t -> int -> float -> unit

val get_int : t -> int -> int
val set_int : t -> int -> int -> unit

(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies [len] words. *)
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

(** [copy_all ~src ~dst] copies the whole store ([words] must match). *)
val copy_all : src:t -> dst:t -> unit

(** [equal_range a b ~pos ~len] checks word-for-word equality. *)
val equal_range : t -> t -> pos:int -> len:int -> bool
