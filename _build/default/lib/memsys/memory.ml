open Bigarray

type t = (int64, int64_elt, c_layout) Array1.t

let create ~words : t =
  let a = Array1.create Int64 C_layout words in
  Array1.fill a 0L;
  a

let words (t : t) = Array1.dim t

let get (t : t) i = Array1.unsafe_get t i
let set (t : t) i v = Array1.unsafe_set t i v

let get_float t i = Int64.float_of_bits (get t i)
let set_float t i v = set t i (Int64.bits_of_float v)

let get_int t i = Int64.to_int (get t i)
let set_int t i v = set t i (Int64.of_int v)

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  Array1.blit (Array1.sub src src_pos len) (Array1.sub dst dst_pos len)

let copy_all ~src ~dst = Array1.blit src dst

let equal_range a b ~pos ~len =
  let rec loop i = i >= pos + len || (get a i = get b i && loop (i + 1)) in
  loop pos
