type t = {
  rname : string;
  mutable free_at : int;
  mutable busy : int;
}

let create ?(name = "resource") () = { rname = name; free_at = 0; busy = 0 }

let name r = r.rname

let reserve r ~ready ~cycles =
  let start = max ready r.free_at in
  r.free_at <- start + cycles;
  r.busy <- r.busy + cycles;
  start + cycles

let use fiber r ~cycles =
  Engine.sync fiber;
  let finish = reserve r ~ready:(Engine.clock fiber) ~cycles in
  Engine.set_clock fiber finish

let next_free r = r.free_at

let busy_cycles r = r.busy
