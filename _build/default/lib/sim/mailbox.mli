(** Typed, time-ordered message queues between fibers.

    A message posted with delivery time [at] becomes visible to receivers
    only once simulated time reaches [at]; a receiving fiber's clock is
    advanced to the delivery time. *)

type 'a t

val create : Engine.t -> 'a t

(** [post mb ~at msg] delivers [msg] at absolute time [at] (clamped to the
    current engine time if in the past). *)
val post : 'a t -> at:int -> 'a -> unit

(** [recv fiber mb] blocks the fiber until a message is available and
    returns the earliest one. *)
val recv : Engine.fiber -> 'a t -> 'a

(** [poll fiber mb] takes a pending message without blocking. *)
val poll : Engine.fiber -> 'a t -> 'a option

(** [length mb] is the number of delivered, unconsumed messages. *)
val length : 'a t -> int
