(** Condition-variable-style wait queue for fibers. *)

type t

val create : Engine.t -> t

(** [wait fiber q] parks the fiber until woken. *)
val wait : Engine.fiber -> t -> unit

(** [wake_one q ~at] resumes the longest-waiting fiber with its clock moved
    to at least [at].  Returns [true] if a fiber was woken. *)
val wake_one : t -> at:int -> bool

(** [wake_all q ~at] resumes every waiting fiber.  Returns the count. *)
val wake_all : t -> at:int -> int

val waiting : t -> int
