type t = { eng : Engine.t; waiters : Engine.fiber Queue.t }

let create eng = { eng; waiters = Queue.create () }

let wait fiber q =
  Queue.push fiber q.waiters;
  Engine.suspend fiber

let wake_one q ~at =
  match Queue.take_opt q.waiters with
  | None -> false
  | Some f ->
      Engine.resume q.eng f ~at;
      true

let wake_all q ~at =
  let n = Queue.length q.waiters in
  while not (Queue.is_empty q.waiters) do
    let f = Queue.pop q.waiters in
    Engine.resume q.eng f ~at
  done;
  n

let waiting q = Queue.length q.waiters
