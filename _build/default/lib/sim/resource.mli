(** Occupancy-based contention model for serially-reusable resources
    (buses, network links, DMA engines).

    A resource tracks the time at which it next becomes free.  A fiber that
    [use]s it for [cycles] first waits for the resource, then holds it,
    ending with its clock at the completion time.  Busy time is accumulated
    for utilisation reporting. *)

type t

val create : ?name:string -> unit -> t

val name : t -> string

(** [use fiber r ~cycles] occupies [r] for [cycles], advancing the fiber's
    clock past any contention delay.  Yields before claiming so earlier
    requests win. *)
val use : Engine.fiber -> t -> cycles:int -> unit

(** [reserve r ~ready ~cycles] claims the resource without a fiber: the
    transfer starts at [max ready (next_free r)] and the completion time is
    returned.  Used by callback-driven models. *)
val reserve : t -> ready:int -> cycles:int -> int

val next_free : t -> int

(** [busy_cycles r] is the total time the resource has been held. *)
val busy_cycles : t -> int
