type 'a t = {
  eng : Engine.t;
  pending : (int * 'a) Queue.t; (* delivered messages: (delivery time, msg) *)
  waiters : Engine.fiber Queue.t;
}

let create eng = { eng; pending = Queue.create (); waiters = Queue.create () }

let length mb = Queue.length mb.pending

let wake_one mb ~at =
  match Queue.take_opt mb.waiters with
  | None -> ()
  | Some f -> Engine.resume mb.eng f ~at

let post mb ~at msg =
  Engine.schedule mb.eng ~at (fun () ->
      let at = Engine.now mb.eng in
      Queue.push (at, msg) mb.pending;
      wake_one mb ~at)

let take fiber mb =
  let time, msg = Queue.pop mb.pending in
  Engine.set_clock fiber time;
  msg

let rec recv fiber mb =
  if Queue.is_empty mb.pending then begin
    Queue.push fiber mb.waiters;
    Engine.suspend fiber;
    recv fiber mb
  end
  else take fiber mb

let poll fiber mb =
  if Queue.is_empty mb.pending then None else Some (take fiber mb)
