(** Binary min-heap priority queue keyed by [(time, seq)].

    The sequence number is assigned internally at insertion, so two entries
    with the same time pop in insertion order.  This is what makes the
    simulation deterministic. *)

type 'a t

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push q ~time v] inserts [v] with key [time]. *)
val push : 'a t -> time:int -> 'a -> unit

(** [pop q] removes and returns the minimum entry as [(time, v)].
    @raise Not_found if the queue is empty. *)
val pop : 'a t -> int * 'a

(** [min_time q] is the time of the minimum entry without removing it. *)
val min_time : 'a t -> int option
