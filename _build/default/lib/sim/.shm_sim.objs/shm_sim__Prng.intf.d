lib/sim/prng.mli:
