lib/sim/pqueue.mli:
