lib/sim/engine.mli:
