(** Deterministic pseudo-random number generator (SplitMix64).

    All workload generation in the repository goes through this module so
    that a given seed always produces the same application data, independent
    of the OCaml stdlib [Random] state. *)

type t

val create : seed:int -> t

(** [split t] derives an independent stream; [t] advances. *)
val split : t -> t

(** [bits64 t] is the next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)
val int : t -> int -> int

(** [float t bound] is uniform in [\[0, bound)]. *)
val float : t -> float -> float

(** [gaussian t] is a standard normal deviate (Box-Muller). *)
val gaussian : t -> float

(** [shuffle t a] permutes [a] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit
