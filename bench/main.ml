(* Benchmark harness: regenerates every table and figure of Cox et al.,
   "Software Versus Hardware Shared-Memory Implementation: A Case Study"
   (ISCA 1994), plus the paper's in-text experiments and a Bechamel
   micro-suite over the core primitives.

   Usage:
     dune exec bench/main.exe                 -- run everything (default scale)
     dune exec bench/main.exe -- --list       -- list experiment ids
     dune exec bench/main.exe -- --only f3,t1 -- run a subset
     dune exec bench/main.exe -- --scale quick|default|paper
     dune exec bench/main.exe -- --jobs 4     -- run simulations on 4 domains
     dune exec bench/main.exe -- --json PATH  -- results file (BENCH_access.json)
     dune exec bench/main.exe -- --skip-micro
     dune exec bench/main.exe -- --pool-probe -- time a fixed run set at
                                                 jobs=1 vs jobs=4

   Independent simulation runs execute on a pool of OCaml 5 domains
   (default: Domain.recommended_domain_count () - 1; override with
   --jobs N or SHMCS_JOBS).  Each experiment declares its run set up
   front, the pool executes runs in parallel, and tables/figures render
   from the completed reports in the original deterministic order, so
   every table, figure and run statistic is identical at any --jobs. *)

module Registry = Shm_apps.Registry
module Sor = Shm_apps.Sor
module Tsp = Shm_apps.Tsp
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Dsm_cluster = Shm_platform.Dsm_cluster
module Machines_reg = Shm_platform.Machines
module Hs = Shm_platform.Hs
module Ah = Shm_platform.Ah
module Overhead = Shm_net.Overhead
module Instrument = Shm_platform.Instrument
module Engine = Shm_sim.Engine
module Lifecycle = Shm_sim.Lifecycle
module Table = Shm_stats.Table
module Parmacs = Shm_parmacs.Parmacs
module Pool = Shm_runner.Pool
module Future = Shm_runner.Future
module Run_cache = Shm_runner.Run_cache

(* ------------------------------------------------------------------ *)
(* Configuration                                                       *)

let scale = ref Registry.Default
let only : string list ref = ref []
let skip_micro = ref false
let list_only = ref false
let jobs_arg = ref 0 (* 0 = auto: SHMCS_JOBS or recommended_domain_count - 1 *)
let json_path = ref "BENCH_access.json"
let pool_probe_arg = ref false

(* ------------------------------------------------------------------ *)
(* Scheduled runs: several figures share the same (app, platform, n),   *)
(* so runs are memoized as futures — a shared run executes exactly once *)
(* on the domain pool and every consumer blocks on the same result.     *)

type run_key = { app_key : string; platform_key : string; n : int }

(* What a worker domain hands back: the report plus the run's own wall
   time and allocation, measured inside the worker. *)
type timed = { report : Report.t; wall : float; alloc_gw : float }

let the_cache : (run_key, timed) Run_cache.t option ref = ref None

let cache () =
  match !the_cache with
  | Some c -> c
  | None -> invalid_arg "run cache used before the pool was created"

let execute key (platform : Platform.t) app () =
  let t0 = Unix.gettimeofday () in
  let a0 = Gc.minor_words () in
  let r = platform.Platform.run app ~nprocs:key.n in
  {
    report = r;
    wall = Unix.gettimeofday () -. t0;
    alloc_gw = (Gc.minor_words () -. a0) /. 1e9;
  }

(* Submit phase: declare a run so the pool can start it early.  Missing a
   declaration is only a lost parallelism opportunity — [timed_run]
   submits on demand — and a declared run that no figure consumes is
   excluded from BENCH_access.json, so reports stay identical at any
   --jobs. *)
let declare ~app_key ~(platform : Platform.t) ~platform_key app ~n =
  let key = { app_key; platform_key; n } in
  ignore (Run_cache.find_or_submit (cache ()) key (execute key platform app))

(* Runs whose results were actually consumed by a table or figure, i.e.
   the progress line was flushed.  Announcement happens on the main
   domain at first await, so the order is the render order: the same at
   any --jobs, and exactly the execution order of sequential mode. *)
let announced : (run_key, unit) Hashtbl.t = Hashtbl.create 64

let timed_run ~app_key ~(platform : Platform.t) ~platform_key app ~n =
  let key = { app_key; platform_key; n } in
  let fut = Run_cache.find_or_submit (cache ()) key (execute key platform app) in
  let tr = Future.await fut in
  if not (Hashtbl.mem announced key) then begin
    Hashtbl.add announced key ();
    Printf.printf
      "    [ran %s on %s, %d procs: %.3f sim s, %.1f wall s, %.2fG alloc]\n%!"
      app_key platform_key n (Report.seconds tr.report) tr.wall tr.alloc_gw
  end;
  tr.report

(* ------------------------------------------------------------------ *)
(* Application instances                                               *)

let sec2_app name = (name, Registry.app ~scale:!scale name)

(* Section-3 instances: the paper notes its simulated problems are small;
   these mirror that, with a compute-denser SOR stencil so the 64-processor
   runs exercise communication rather than the simulator. *)
let sor_sim () =
  let rows, cols, iters =
    match !scale with
    | Registry.Quick -> (256, 128, 6)
    | Registry.Default -> (512, 256, 12)
    | Registry.Paper -> (1024, 512, 12)
  in
  ( "sor-sim",
    Sor.make { Sor.default_params with rows; cols; iters; point_cycles = 480 } )

let tsp_sim () =
  let ncities =
    match !scale with
    | Registry.Quick -> 11
    | Registry.Default -> 14
    | Registry.Paper -> 16
  in
  ("tsp-sim", Tsp.make (Tsp.params_n ncities))

let mwater_sim () = ("m-water", Registry.app ~scale:!scale "m-water")

(* ------------------------------------------------------------------ *)
(* Platform instances                                                  *)

let dec () = Dsm_cluster.dec_plain ()
let ivy () = Machines.get "ivy"
let tmk () = Dsm_cluster.dec ~level:Dsm_cluster.User ()
let tmk_kernel () = Dsm_cluster.dec ~level:Dsm_cluster.Kernel ()
let tmk_eager () = Dsm_cluster.dec ~eager:true ~level:Dsm_cluster.User ()
let sgi () = Machines.get "sgi"
let as_machine ?overhead () = Dsm_cluster.as_machine ?overhead ()
let ah_machine () = Ah.make ()
let hs_machine ?overhead () = Hs.make ?overhead ()

let procs_sec2 = [ 1; 2; 3; 4; 5; 6; 7; 8 ]
let procs_sec3 = [ 1; 8; 16; 32; 64 ]

(* ------------------------------------------------------------------ *)
(* Generic figure renderers                                            *)

(* A Section-2 speedup figure: TreadMarks vs the SGI, 1-8 processors.
   TreadMarks speedups are relative to the plain DECstation (Table 1
   methodology); SGI speedups to its own uniprocessor. *)
let sec2_figure ~title (app_key, app) =
  let dec_base =
    timed_run ~app_key ~platform:(dec ()) ~platform_key:"dec" app ~n:1
  in
  let sgi_p = sgi () and tmk_p = tmk () in
  let sgi_base =
    timed_run ~app_key ~platform:sgi_p ~platform_key:"sgi" app ~n:1
  in
  let table =
    Table.create ~title ~columns:[ "procs"; "TreadMarks"; "SGI 4D/480" ]
  in
  List.iter
    (fun n ->
      let rt =
        timed_run ~app_key ~platform:tmk_p ~platform_key:"treadmarks" app ~n
      in
      let rs = timed_run ~app_key ~platform:sgi_p ~platform_key:"sgi" app ~n in
      Table.add_row table
        [
          string_of_int n;
          Table.cell_speedup (Report.speedup ~base:dec_base rt);
          Table.cell_speedup (Report.speedup ~base:sgi_base rs);
        ])
    procs_sec2;
  Table.print table

(* A Section-3 speedup figure: AS vs AH vs HS, up to 64 processors,
   each relative to its own uniprocessor run. *)
let sec3_figure ~title (app_key, app) =
  let archs =
    [ ("AH", ah_machine ()); ("HS", hs_machine ()); ("AS", as_machine ()) ]
  in
  let bases =
    List.map
      (fun (k, p) ->
        (k, timed_run ~app_key ~platform:p ~platform_key:k app ~n:1))
      archs
  in
  let table = Table.create ~title ~columns:("procs" :: List.map fst archs) in
  List.iter
    (fun n ->
      let cells =
        List.map
          (fun (k, p) ->
            let r = timed_run ~app_key ~platform:p ~platform_key:k app ~n in
            Table.cell_speedup (Report.speedup ~base:(List.assoc k bases) r))
          archs
      in
      Table.add_row table (string_of_int n :: cells))
    (List.tl procs_sec3);
  Table.print table

(* Software-overhead sweep (Figures 14-16).  [tag] keeps the memoized
   runs of the AS and HS sweeps apart. *)
let overhead_figure ~title ~tag ~make_platform (app_key, app) =
  let points = [ (5000, 10); (500, 10); (100, 10); (100, 1) ] in
  let columns =
    "procs" :: List.map (fun (f, w) -> Printf.sprintf "%d/%d" f w) points
  in
  let table = Table.create ~title ~columns in
  let platforms =
    List.map
      (fun (f, w) ->
        let key = Printf.sprintf "%s-%s-ov%d-%d" tag app_key f w in
        ((f, w), (key, make_platform (Overhead.sweep ~fixed:f ~per_word:w))))
      points
  in
  let bases =
    List.map
      (fun (pt, (key, p)) ->
        (pt, timed_run ~app_key ~platform:p ~platform_key:key app ~n:1))
      platforms
  in
  List.iter
    (fun n ->
      let cells =
        List.map
          (fun (pt, (key, p)) ->
            let r = timed_run ~app_key ~platform:p ~platform_key:key app ~n in
            Table.cell_speedup (Report.speedup ~base:(List.assoc pt bases) r))
          platforms
      in
      Table.add_row table (string_of_int n :: cells))
    (List.tl procs_sec3);
  Table.print table

(* ------------------------------------------------------------------ *)
(* Tables                                                              *)

let sec2_apps =
  [
    "ilink-clp"; "ilink-bad"; "sor"; "sor-square"; "tsp"; "tsp-small";
    "water"; "m-water";
  ]

let table1 () =
  let table =
    Table.create ~title:"Table 1: single-processor execution times (seconds)"
      ~columns:[ "program"; "DEC"; "DEC+TreadMarks"; "SGI" ]
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      let r_dec =
        timed_run ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1
      in
      let r_tmk =
        timed_run ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks"
          app ~n:1
      in
      let r_sgi =
        timed_run ~app_key:name ~platform:(sgi ()) ~platform_key:"sgi" app ~n:1
      in
      Table.add_row table
        [
          app.Parmacs.name;
          Table.cell_f ~digits:2 (Report.seconds r_dec);
          Table.cell_f ~digits:2 (Report.seconds r_tmk);
          Table.cell_f ~digits:2 (Report.seconds r_sgi);
        ])
    sec2_apps;
  Table.print table

let table2 () =
  let table =
    Table.create
      ~title:"Table 2: 8-processor TreadMarks execution statistics (per second)"
      ~columns:
        [ "program"; "barriers/s"; "remote locks/s"; "messages/s"; "kbytes/s" ]
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      let r =
        timed_run ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks"
          app ~n:8
      in
      Table.add_row table
        [
          app.Parmacs.name;
          Table.cell_f ~digits:1 (Report.rate r "tmk.barriers");
          Table.cell_f ~digits:1 (Report.rate r "tmk.lock_remote");
          Table.cell_f ~digits:0 (Report.rate r "net.msgs.total");
          Table.cell_f ~digits:1 (Report.rate r "net.bytes.total" /. 1024.);
        ])
    sec2_apps;
  Table.print table

(* ------------------------------------------------------------------ *)
(* In-text experiments                                                 *)

let tsp_eager () =
  let app_key, app = sec2_app "tsp" in
  let table =
    Table.create
      ~title:"TSP lazy vs eager release (Section 2.4.3): 8-processor speedups"
      ~columns:[ "platform"; "speedup" ]
  in
  let dec_base =
    timed_run ~app_key ~platform:(dec ()) ~platform_key:"dec" app ~n:1
  in
  let sgi_base =
    timed_run ~app_key ~platform:(sgi ()) ~platform_key:"sgi" app ~n:1
  in
  let row name platform platform_key base =
    let r = timed_run ~app_key ~platform ~platform_key app ~n:8 in
    Table.add_row table [ name; Table.cell_speedup (Report.speedup ~base r) ]
  in
  row "TreadMarks (lazy)" (tmk ()) "treadmarks" dec_base;
  row "TreadMarks (eager bound)" (tmk_eager ()) "treadmarks-eager" dec_base;
  row "SGI 4D/480" (sgi ()) "sgi" sgi_base;
  Table.print table

let kernel_level () =
  let apps = [ "ilink-clp"; "sor"; "tsp"; "water"; "m-water" ] in
  let table =
    Table.create
      ~title:
        "User-level vs kernel-level TreadMarks (Section 2.4.4): 8-processor \
         speedups vs DEC"
      ~columns:[ "program"; "user"; "kernel"; "SGI" ]
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      let base =
        timed_run ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1
      in
      let sgi_base =
        timed_run ~app_key:name ~platform:(sgi ()) ~platform_key:"sgi" app ~n:1
      in
      let speedup platform platform_key b =
        let r = timed_run ~app_key:name ~platform ~platform_key app ~n:8 in
        Table.cell_speedup (Report.speedup ~base:b r)
      in
      Table.add_row table
        [
          app.Parmacs.name;
          speedup (tmk ()) "treadmarks" base;
          speedup (tmk_kernel ()) "treadmarks-kernel" base;
          speedup (sgi ()) "sgi" sgi_base;
        ])
    apps;
  Table.print table

let sor_touch_all () =
  sec2_figure
    ~title:
      "SOR with every point changing each iteration (Section 2.4.2): \
       TreadMarks still wins"
    (sec2_app "sor-touchall")

(* ------------------------------------------------------------------ *)
(* Figures 12-13: message and data totals at 64 processors             *)

let messages_figure () =
  let apps = [ sor_sim (); tsp_sim (); mwater_sim () ] in
  let table =
    Table.create
      ~title:
        "Figure 12: total messages at 64 processors (HS as % of AS, split \
         miss / synchronization)"
      ~columns:
        [ "program"; "AS msgs"; "HS msgs"; "HS/AS %"; "HS miss%"; "HS sync%";
          "AS miss%"; "AS sync%" ]
  in
  List.iter
    (fun (app_key, app) ->
      let r_as =
        timed_run ~app_key ~platform:(as_machine ()) ~platform_key:"AS" app
          ~n:64
      in
      let r_hs =
        timed_run ~app_key ~platform:(hs_machine ()) ~platform_key:"HS" app
          ~n:64
      in
      let as_total = float_of_int (Report.get r_as "net.msgs.total") in
      let pct r name = 100. *. float_of_int (Report.get r name) /. as_total in
      Table.add_row table
        [
          app.Parmacs.name;
          Table.cell_i (Report.get r_as "net.msgs.total");
          Table.cell_i (Report.get r_hs "net.msgs.total");
          Table.cell_f ~digits:1 (pct r_hs "net.msgs.total");
          Table.cell_f ~digits:1 (pct r_hs "net.msgs.miss");
          Table.cell_f ~digits:1 (pct r_hs "net.msgs.sync");
          Table.cell_f ~digits:1 (pct r_as "net.msgs.miss");
          Table.cell_f ~digits:1 (pct r_as "net.msgs.sync");
        ])
    apps;
  Table.print table

let data_figure () =
  let apps = [ sor_sim (); tsp_sim (); mwater_sim () ] in
  let table =
    Table.create
      ~title:
        "Figure 13: total data at 64 processors (HS as % of AS, split miss / \
         consistency / headers)"
      ~columns:
        [ "program"; "AS KB"; "HS KB"; "HS/AS %"; "HS miss%"; "HS cons%";
          "HS hdr%"; "AS miss%"; "AS cons%"; "AS hdr%" ]
  in
  List.iter
    (fun (app_key, app) ->
      let r_as =
        timed_run ~app_key ~platform:(as_machine ()) ~platform_key:"AS" app
          ~n:64
      in
      let r_hs =
        timed_run ~app_key ~platform:(hs_machine ()) ~platform_key:"HS" app
          ~n:64
      in
      let as_total = float_of_int (Report.get r_as "net.bytes.total") in
      let pct r name = 100. *. float_of_int (Report.get r name) /. as_total in
      Table.add_row table
        [
          app.Parmacs.name;
          Table.cell_i (Report.get r_as "net.bytes.total" / 1024);
          Table.cell_i (Report.get r_hs "net.bytes.total" / 1024);
          Table.cell_f ~digits:1 (pct r_hs "net.bytes.total");
          Table.cell_f ~digits:1 (pct r_hs "net.bytes.payload");
          Table.cell_f ~digits:1 (pct r_hs "net.bytes.consistency");
          Table.cell_f ~digits:1 (pct r_hs "net.bytes.header");
          Table.cell_f ~digits:1 (pct r_as "net.bytes.payload");
          Table.cell_f ~digits:1 (pct r_as "net.bytes.consistency");
          Table.cell_f ~digits:1 (pct r_as "net.bytes.header");
        ])
    apps;
  Table.print table

(* ------------------------------------------------------------------ *)
(* Ablation: lazy release consistency vs sequentially-consistent       *)
(* single-writer page DSM (IVY, Li & Hudak) on the same cluster        *)

let lrc_vs_ivy () =
  let apps = [ "sor"; "tsp"; "water"; "m-water"; "ilink-clp" ] in
  let table =
    Table.create
      ~title:
        "Ablation: TreadMarks (multiple-writer LRC) vs IVY (single-writer \
         SC pages) on the DEC cluster, 8 processors"
      ~columns:
        [ "program"; "LRC speedup"; "IVY speedup"; "LRC KB"; "IVY KB" ]
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      let base =
        timed_run ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1
      in
      let r_tmk =
        timed_run ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks"
          app ~n:8
      in
      let r_ivy =
        timed_run ~app_key:name ~platform:(ivy ()) ~platform_key:"ivy" app ~n:8
      in
      Table.add_row table
        [
          app.Parmacs.name;
          Table.cell_speedup (Report.speedup ~base r_tmk);
          Table.cell_speedup (Report.speedup ~base r_ivy);
          Table.cell_i (Report.get r_tmk "net.bytes.total" / 1024);
          Table.cell_i (Report.get r_ivy "net.bytes.total" / 1024);
        ])
    apps;
  Table.print table;
  print_endline
    "\nMultiple-writer diffs avoid both the false-sharing ping-pong and\n\
     the whole-page transfers of the classic SC page DSM."

(* Ablation: lazy vs eager-invalidate write-notice propagation         *)

let lrc_vs_erc () =
  let apps = [ "sor"; "tsp"; "water"; "m-water"; "ilink-clp" ] in
  let erc () =
    Dsm_cluster.dec ~protocol:"erc"
      ~level:Dsm_cluster.User ()
  in
  let table =
    Table.create
      ~title:
        "Ablation: lazy (TreadMarks) vs eager-invalidate release \
         consistency, 8 processors"
      ~columns:[ "program"; "LRC speedup"; "ERC speedup"; "LRC msgs"; "ERC msgs" ]
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      let base =
        timed_run ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1
      in
      let r_lrc =
        timed_run ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks"
          app ~n:8
      in
      let r_erc =
        timed_run ~app_key:name ~platform:(erc ()) ~platform_key:"treadmarks-erc"
          app ~n:8
      in
      Table.add_row table
        [
          app.Parmacs.name;
          Table.cell_speedup (Report.speedup ~base r_lrc);
          Table.cell_speedup (Report.speedup ~base r_erc);
          Table.cell_i (Report.get r_lrc "net.msgs.total");
          Table.cell_i (Report.get r_erc "net.msgs.total");
        ])
    apps;
  Table.print table;
  print_endline
    "\nLaziness defers notice propagation to synchronization points;\n\
     broadcasting at every release multiplies messages without making\n\
     anything faster (Keleher et al.'s core LRC result)."

(* Ablation: the Section-2.5 hypothetical SGI with dual tags + fast bus  *)

let sgi_bus_ablation () =
  let apps = [ "sor"; "sor-square"; "m-water" ] in
  let fast = Shm_platform.Sgi.make_fast () in
  let table =
    Table.create
      ~title:
        "Ablation: SGI bus bandwidth (Section 2.5: \"dual cache tags and a \
         faster bus are necessary to overcome the bandwidth limitation\"), \
         8 processors"
      ~columns:
        [ "program"; "SGI speedup"; "fast-bus speedup"; "TreadMarks speedup" ]
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      let speedup_on platform platform_key =
        let b = timed_run ~app_key:name ~platform ~platform_key app ~n:1 in
        let r = timed_run ~app_key:name ~platform ~platform_key app ~n:8 in
        Table.cell_speedup (Report.speedup ~base:b r)
      in
      let dec_base =
        timed_run ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1
      in
      let r_tmk =
        timed_run ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks"
          app ~n:8
      in
      Table.add_row table
        [
          app.Parmacs.name;
          speedup_on (sgi ()) "sgi";
          speedup_on fast "sgi-fast";
          Table.cell_speedup (Report.speedup ~base:dec_base r_tmk);
        ])
    apps;
  Table.print table

(* Ablation: sharing patterns vs coherence strategies                  *)

let sharing_patterns () =
  let table =
    Table.create
      ~title:
        "Ablation: sharing-pattern microbenchmarks, 8 processors.  Each \
         processor does fixed per-round work, so 1.00 means coherence-free \
         execution (efficiency, not speedup)."
      ~columns:
        [ "pattern"; "LRC eff"; "IVY eff"; "SGI eff"; "LRC KB"; "IVY KB" ]
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      let cell platform platform_key =
        let b = timed_run ~app_key:name ~platform ~platform_key app ~n:1 in
        let r = timed_run ~app_key:name ~platform ~platform_key app ~n:8 in
        (Table.cell_speedup (Report.speedup ~base:b r),
         Report.get r "net.bytes.total" / 1024)
      in
      let lrc, lrc_kb = cell (tmk ()) "treadmarks" in
      let ivy_s, ivy_kb = cell (ivy ()) "ivy" in
      let sgi_s, _ = cell (sgi ()) "sgi" in
      Table.add_row table
        [ name; lrc; ivy_s; sgi_s; Table.cell_i lrc_kb; Table.cell_i ivy_kb ])
    [ "migratory"; "producer-consumer"; "false-sharing"; "read-mostly" ];
  Table.print table;
  print_endline
    "\nFalse sharing is free under multiple-writer LRC and catastrophic\n\
     under single-writer pages; migratory data suits every protocol;\n\
     read-mostly data is cheap everywhere after the first fault."

(* ------------------------------------------------------------------ *)
(* Execution-time breakdown: where the cycles go on the software DSM   *)
(* vs the bus machine (the PR's tentpole exhibit).  The instrumented   *)
(* platform constructors get their own platform_keys so their memoized *)
(* runs never alias the uninstrumented runs used everywhere else.      *)

let bd_apps = [ "ilink-clp"; "sor"; "tsp"; "water"; "m-water" ]

let bd_platforms () =
  [
    ( "treadmarks+bd",
      "TreadMarks",
      Dsm_cluster.dec ~instrument:Instrument.breakdown_only
        ~level:Dsm_cluster.User () );
    ( "sgi+bd",
      "SGI 4D/480",
      Shm_platform.Sgi.make ~instrument:Instrument.breakdown_only () );
  ]

let breakdown_exhibit () =
  let table =
    Table.create
      ~title:
        "Execution-time breakdown, 8 processors (% of attributed cycles; \
         categories sum to each processor's full clock)"
      ~columns:
        ([ "program"; "platform"; "seconds" ]
        @ List.map Engine.category_name Engine.categories)
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      List.iter
        (fun (platform_key, label, platform) ->
          let r = timed_run ~app_key:name ~platform ~platform_key app ~n:8 in
          let bd = Report.breakdown r in
          let total =
            float_of_int (List.fold_left (fun acc (_, v) -> acc + v) 0 bd)
          in
          let cell cat =
            match List.assoc_opt cat bd with
            | None | Some 0 -> "-"
            | Some v ->
                Table.cell_f ~digits:1 (100. *. float_of_int v /. total)
          in
          Table.add_row table
            ([
               app.Parmacs.name; label;
               Table.cell_f ~digits:4 (Report.seconds r);
             ]
            @ List.map cell Engine.categories))
        (bd_platforms ()))
    bd_apps;
  Table.print table;
  print_endline
    "\nThe software DSM spends its overhead in protocol handlers, twin/diff\n\
     work and message waits; the bus machine's only overhead is memory\n\
     stalls.  Barrier waits dominate both wherever load is imbalanced."

(* ------------------------------------------------------------------ *)
(* Protocol matrix: every software coherence engine mounted on the     *)
(* same SDSM cluster, with the execution-time breakdown for each.      *)

let pm_protocols = [ "lrc"; "eager-lrc"; "ivy"; "tardis" ]

let pm_platform p =
  Dsm_cluster.dec ~protocol:p ~instrument:Instrument.breakdown_only
    ~level:Dsm_cluster.User ()

let pm_key p = "proto-" ^ p ^ "+bd"

let protocol_matrix () =
  let table =
    Table.create
      ~title:
        "Protocol matrix: coherence engines on the DEC cluster, 8 \
         processors (seconds, traffic, % of attributed cycles)"
      ~columns:
        ([ "program"; "protocol"; "seconds"; "msgs"; "kbytes" ]
        @ List.map Engine.category_name Engine.categories)
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      List.iter
        (fun p ->
          let r =
            timed_run ~app_key:name ~platform:(pm_platform p)
              ~platform_key:(pm_key p) app ~n:8
          in
          let bd = Report.breakdown r in
          let total =
            float_of_int (List.fold_left (fun acc (_, v) -> acc + v) 0 bd)
          in
          let cell cat =
            match List.assoc_opt cat bd with
            | None | Some 0 -> "-"
            | Some v ->
                Table.cell_f ~digits:1 (100. *. float_of_int v /. total)
          in
          Table.add_row table
            ([
               app.Parmacs.name; p;
               Table.cell_f ~digits:4 (Report.seconds r);
               Table.cell_i (Report.get r "net.msgs.total");
               Table.cell_i (Report.get r "net.bytes.total" / 1024);
             ]
            @ List.map cell Engine.categories))
        pm_protocols)
    bd_apps;
  Table.print table;
  print_endline
    "\nOne cluster, four engines.  Laziness (lrc) minimizes messages;\n\
     eager-lrc pays broadcast traffic at every release to shorten the\n\
     stale-data window the paper observed in TSP; ivy ships whole pages\n\
     and serializes writers; tardis replaces invalidation broadcasts\n\
     with timestamp leases and renewals."

(* ------------------------------------------------------------------ *)
(* Availability under churn: the same app with and without repeated    *)
(* whole-node crash/restart (DESIGN.md §13).  The crash-armed platform *)
(* constructors get their own platform_keys so their memoized runs     *)
(* never alias the crash-free runs used everywhere else.               *)

(* Two scheduled crashes early enough to land inside even the quick-
   scale runs; a short outage and a tight checkpoint period so the
   exhibit exercises checkpoint, re-home and rejoin several times. *)
let churn_policy =
  { Lifecycle.none with
    Lifecycle.crashes = [ (1, 300_000); (2, 900_000) ];
    outage_cycles = 400_000;
    ckpt_interval = 200_000 }

let crash_apps = [ "sor"; "tsp" ]

let crash_platforms () =
  [
    ( "treadmarks", "treadmarks+crash",
      tmk (),
      Dsm_cluster.dec ~crash:churn_policy ~level:Dsm_cluster.User () );
    ("ivy", "ivy+crash", ivy (), Machines.get ~crash:churn_policy "ivy");
  ]

let crash_churn () =
  let table =
    Table.create
      ~title:
        "Availability under churn: 2 crash/restart cycles, 4 processors \
         (post-recovery checksums must equal the crash-free run)"
      ~columns:
        [
          "program"; "platform"; "clean_s"; "churn_s"; "overhead";
          "crashes"; "ckpt_kb"; "recov_ms"; "checksum";
        ]
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      List.iter
        (fun (label, crash_key, clean_p, crash_p) ->
          let clean =
            timed_run ~app_key:name ~platform:clean_p ~platform_key:label app
              ~n:4
          in
          let churn =
            timed_run ~app_key:name ~platform:crash_p ~platform_key:crash_key
              app ~n:4
          in
          let cs = Report.seconds clean and hs = Report.seconds churn in
          Table.add_row table
            [
              app.Parmacs.name; label;
              Table.cell_f ~digits:4 cs;
              Table.cell_f ~digits:4 hs;
              (if cs > 0.0 then
                 Printf.sprintf "%.0f%%" (100.0 *. (hs -. cs) /. cs)
               else "-");
              Table.cell_i (Report.crashes churn);
              Table.cell_i (Report.ckpt_bytes churn / 1024);
              Table.cell_f ~digits:3 (1e3 *. Report.recovery_time churn);
              (if churn.Report.checksum = clean.Report.checksum then "="
               else "DIFFERS");
            ])
        (crash_platforms ()))
    crash_apps;
  Table.print table;
  print_endline
    "\nLost time under churn is the outage itself plus checkpoint and\n\
     rejoin overhead; the '=' column certifies the run recovered to the\n\
     crash-free answer.  IVY pays whole-page checkpoints where TreadMarks\n\
     checkpoints only the twin/diff-dirty runs."

(* ------------------------------------------------------------------ *)
(* Serving exhibit: the sharded KV store under the open-loop load      *)
(* generator (DESIGN.md §14).  Same offered load on every platform;    *)
(* the software/hardware gap the paper measured as speedup shows up    *)
(* here as tail latency, because a server that cannot keep up          *)
(* accumulates queueing delay the open-loop generator refuses to hide. *)

let kv_platforms () =
  [
    ("dec", dec (), 1);
    ("treadmarks", tmk (), 8);
    ("ivy", ivy (), 8);
    ("sgi", sgi (), 8);
    ("AS", as_machine (), 8);
    ("AH", ah_machine (), 8);
    ("HS", hs_machine (), 8);
  ]

let kv_exhibit () =
  let table =
    Table.create
      ~title:
        "KV serving: open-loop load per platform (latency percentiles in \
         microseconds, measured from the scheduled issue cycle)"
      ~columns:
        [
          "platform"; "procs"; "ops"; "kops/s"; "p50_us"; "p99_us";
          "p999_us"; "max_us"; "moves"; "model";
        ]
  in
  List.iter
    (fun (platform_key, (platform : Platform.t), n) ->
      (* A fresh app per run: the KV store carries per-run observation
         state (request log, latency histograms), so instances must not
         be shared even through the memo cache. *)
      let app = Registry.app ~scale:!scale "kv" in
      let r = timed_run ~app_key:"kv" ~platform ~platform_key app ~n in
      let us c =
        Table.cell_f ~digits:1 (float_of_int c /. platform.Platform.clock_mhz)
      in
      Table.add_row table
        [
          platform_key;
          string_of_int n;
          string_of_int (Report.get r "kv.ops");
          Table.cell_f ~digits:1
            (float_of_int (Report.get r "kv.ops") /. Report.seconds r /. 1e3);
          us (Report.get r "kv.lat_p50");
          us (Report.get r "kv.lat_p99");
          us (Report.get r "kv.lat_p999");
          us (Report.get r "kv.lat_max");
          string_of_int (Report.get r "kv.moves");
          (if Report.get r "kv.model_ok" = 1 then "ok" else "FAIL");
        ])
    (kv_platforms ());
  Table.print table;
  print_endline
    "\nThe software DSMs queue requests behind page faults and bucket\n\
     ownership transfers, so their percentiles are queueing delay; the\n\
     bus and directory machines absorb the same offered load with flat\n\
     tails.  The 'model' column certifies the recorded history replayed\n\
     against a sequential hash-table model."

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core primitives                    *)

let micro () =
  let open Bechamel in
  let module Memory = Shm_memsys.Memory in
  let module Diff = Shm_tmk.Diff in
  let module Vc = Shm_tmk.Vc in
  let module Cache = Shm_memsys.Cache in
  let module Pqueue = Shm_sim.Pqueue in
  let diff_roundtrip =
    let words = 512 in
    let mem = Memory.create ~words in
    let twin = Memory.create ~words in
    for i = 0 to words - 1 do
      Memory.set_int twin i i
    done;
    Memory.copy_all ~src:twin ~dst:mem;
    for i = 0 to 63 do
      Memory.set_int mem (i * 8) (i + 10_000)
    done;
    Test.make ~name:"diff make+apply (4KB page, 64 changed words)"
      (Staged.stage (fun () ->
           let d = Diff.make ~page:0 ~twin ~current:mem ~base:0 ~words in
           Diff.apply d mem ~base:0))
  in
  let vc_join =
    let a = Array.init 64 (fun i -> i)
    and b = Array.init 64 (fun i -> 64 - i) in
    Test.make ~name:"vector-clock join (64 nodes)"
      (Staged.stage (fun () -> ignore (Vc.join a b)))
  in
  let cache_probe =
    let c = Cache.create ~size_words:8192 ~block_words:4 in
    for i = 0 to 2047 do
      ignore (Cache.insert c (i * 4) Cache.Shared)
    done;
    let i = ref 0 in
    Test.make ~name:"cache probe"
      (Staged.stage (fun () ->
           i := (!i + 37) land 8191;
           ignore (Cache.probe c !i)))
  in
  let pqueue_churn =
    let q = Pqueue.create ~dummy:() in
    let t = ref 0 in
    Test.make ~name:"event-queue push+pop"
      (Staged.stage (fun () ->
           incr t;
           Pqueue.push q ~time:!t ();
           ignore (Pqueue.pop q)))
  in
  let barrier_round =
    Test.make ~name:"8-node TreadMarks barrier round"
      (Staged.stage (fun () ->
           let module Engine = Shm_sim.Engine in
           let module Counters = Shm_stats.Counters in
           let module Fabric = Shm_net.Fabric in
           let module Config = Shm_tmk.Config in
           let module System = Shm_tmk.System in
           let eng = Engine.create () in
           let counters = Counters.create () in
           let fabric =
             Fabric.create eng counters
               (Fabric.atm_dec ~overhead:Overhead.treadmarks_user)
               ~nodes:8
           in
           let memories = Array.init 8 (fun _ -> Memory.create ~words:512) in
           let cfg = Config.default ~n_nodes:8 ~shared_words:512 in
           let sys = System.create eng counters fabric cfg ~memories in
           System.start sys;
           for node = 0 to 7 do
             ignore
               (Engine.spawn eng ~name:(string_of_int node) ~at:0 (fun f ->
                    System.barrier_arrive sys f ~node ~id:0))
           done;
           Engine.run eng))
  in
  let tests =
    Test.make_grouped ~name:"core"
      [ diff_roundtrip; vc_join; cache_probe; pqueue_churn; barrier_round ]
  in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"Microbenchmarks (Bechamel, monotonic clock)"
      ~columns:[ "benchmark"; "ns/run" ]
  in
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      let cell =
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Table.cell_f ~digits:1 est
        | Some _ | None -> "n/a"
      in
      rows := (name, cell) :: !rows)
    results;
  List.iter
    (fun (name, cell) -> Table.add_row table [ name; cell ])
    (List.sort compare !rows);
  Table.print table

(* ------------------------------------------------------------------ *)
(* Submit phase: one plan per experiment, declaring exactly the runs   *)
(* its renderer will consume, so the pool can execute runs from the    *)
(* whole selected suite in parallel before any rendering starts.       *)

let sec2_plan_apps = [ "ilink-clp"; "sor"; "tsp"; "water"; "m-water" ]

let plan_sec2 (app_key, app) =
  declare ~app_key ~platform:(dec ()) ~platform_key:"dec" app ~n:1;
  let tmk_p = tmk () and sgi_p = sgi () in
  declare ~app_key ~platform:sgi_p ~platform_key:"sgi" app ~n:1;
  List.iter
    (fun n ->
      declare ~app_key ~platform:tmk_p ~platform_key:"treadmarks" app ~n;
      declare ~app_key ~platform:sgi_p ~platform_key:"sgi" app ~n)
    procs_sec2

let plan_sec3 (app_key, app) =
  let archs =
    [ ("AH", ah_machine ()); ("HS", hs_machine ()); ("AS", as_machine ()) ]
  in
  List.iter
    (fun (k, p) -> declare ~app_key ~platform:p ~platform_key:k app ~n:1)
    archs;
  List.iter
    (fun n ->
      List.iter
        (fun (k, p) -> declare ~app_key ~platform:p ~platform_key:k app ~n)
        archs)
    (List.tl procs_sec3)

let plan_overhead ~tag ~make_platform (app_key, app) =
  List.iter
    (fun (f, w) ->
      let key = Printf.sprintf "%s-%s-ov%d-%d" tag app_key f w in
      let p = make_platform (Overhead.sweep ~fixed:f ~per_word:w) in
      declare ~app_key ~platform:p ~platform_key:key app ~n:1;
      List.iter
        (fun n -> declare ~app_key ~platform:p ~platform_key:key app ~n)
        (List.tl procs_sec3))
    [ (5000, 10); (500, 10); (100, 10); (100, 1) ]

let plan_table1 () =
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      declare ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1;
      declare ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks" app
        ~n:1;
      declare ~app_key:name ~platform:(sgi ()) ~platform_key:"sgi" app ~n:1)
    sec2_apps

let plan_table2 () =
  List.iter
    (fun name ->
      declare ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks"
        (Registry.app ~scale:!scale name)
        ~n:8)
    sec2_apps

let plan_tsp_eager () =
  let app_key, app = sec2_app "tsp" in
  declare ~app_key ~platform:(dec ()) ~platform_key:"dec" app ~n:1;
  declare ~app_key ~platform:(sgi ()) ~platform_key:"sgi" app ~n:1;
  declare ~app_key ~platform:(tmk ()) ~platform_key:"treadmarks" app ~n:8;
  declare ~app_key ~platform:(tmk_eager ()) ~platform_key:"treadmarks-eager"
    app ~n:8;
  declare ~app_key ~platform:(sgi ()) ~platform_key:"sgi" app ~n:8

let plan_kernel_level () =
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      declare ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1;
      declare ~app_key:name ~platform:(sgi ()) ~platform_key:"sgi" app ~n:1;
      declare ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks" app
        ~n:8;
      declare ~app_key:name ~platform:(tmk_kernel ())
        ~platform_key:"treadmarks-kernel" app ~n:8;
      declare ~app_key:name ~platform:(sgi ()) ~platform_key:"sgi" app ~n:8)
    sec2_plan_apps

let plan_sim64 () =
  List.iter
    (fun (app_key, app) ->
      declare ~app_key ~platform:(as_machine ()) ~platform_key:"AS" app ~n:64;
      declare ~app_key ~platform:(hs_machine ()) ~platform_key:"HS" app ~n:64)
    [ sor_sim (); tsp_sim (); mwater_sim () ]

let plan_lrc_vs_ivy () =
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      declare ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1;
      declare ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks" app
        ~n:8;
      declare ~app_key:name ~platform:(ivy ()) ~platform_key:"ivy" app ~n:8)
    [ "sor"; "tsp"; "water"; "m-water"; "ilink-clp" ]

let plan_lrc_vs_erc () =
  let erc () =
    Dsm_cluster.dec ~protocol:"erc"
      ~level:Dsm_cluster.User ()
  in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      declare ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1;
      declare ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks" app
        ~n:8;
      declare ~app_key:name ~platform:(erc ()) ~platform_key:"treadmarks-erc"
        app ~n:8)
    [ "sor"; "tsp"; "water"; "m-water"; "ilink-clp" ]

let plan_sgi_bus () =
  let fast = Shm_platform.Sgi.make_fast () in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      declare ~app_key:name ~platform:(sgi ()) ~platform_key:"sgi" app ~n:1;
      declare ~app_key:name ~platform:(sgi ()) ~platform_key:"sgi" app ~n:8;
      declare ~app_key:name ~platform:fast ~platform_key:"sgi-fast" app ~n:1;
      declare ~app_key:name ~platform:fast ~platform_key:"sgi-fast" app ~n:8;
      declare ~app_key:name ~platform:(dec ()) ~platform_key:"dec" app ~n:1;
      declare ~app_key:name ~platform:(tmk ()) ~platform_key:"treadmarks" app
        ~n:8)
    [ "sor"; "sor-square"; "m-water" ]

let plan_breakdown () =
  let platforms = bd_platforms () in
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      List.iter
        (fun (platform_key, _, platform) ->
          declare ~app_key:name ~platform ~platform_key app ~n:8)
        platforms)
    bd_apps

let plan_protocol_matrix () =
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      List.iter
        (fun p ->
          declare ~app_key:name ~platform:(pm_platform p)
            ~platform_key:(pm_key p) app ~n:8)
        pm_protocols)
    bd_apps

let plan_crash_churn () =
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      List.iter
        (fun (label, crash_key, clean_p, crash_p) ->
          declare ~app_key:name ~platform:clean_p ~platform_key:label app ~n:4;
          declare ~app_key:name ~platform:crash_p ~platform_key:crash_key app
            ~n:4)
        (crash_platforms ()))
    crash_apps

let plan_sharing_patterns () =
  List.iter
    (fun name ->
      let app = Registry.app ~scale:!scale name in
      List.iter
        (fun (pf, pk) ->
          declare ~app_key:name ~platform:(pf ()) ~platform_key:pk app ~n:1;
          declare ~app_key:name ~platform:(pf ()) ~platform_key:pk app ~n:8)
        [ (tmk, "treadmarks"); (ivy, "ivy"); (sgi, "sgi") ])
    [ "migratory"; "producer-consumer"; "false-sharing"; "read-mostly" ]

let plan_kv () =
  List.iter
    (fun (platform_key, platform, n) ->
      declare ~app_key:"kv" ~platform ~platform_key
        (Registry.app ~scale:!scale "kv")
        ~n)
    (kv_platforms ())

(* ------------------------------------------------------------------ *)
(* Experiment registry                                                 *)

type experiment = {
  id : string;
  title : string;
  plan : unit -> unit; (* submit phase: declare the run set *)
  run : unit -> unit; (* render phase: await results, print tables *)
}

let no_plan () = ()

let experiments =
  [
    { id = "t1"; title = "Table 1: single-processor times"; plan = plan_table1;
      run = table1 };
    { id = "t2"; title = "Table 2: 8-processor TreadMarks statistics";
      plan = plan_table2; run = table2 };
    { id = "f1"; title = "Figure 1: ILINK-CLP";
      plan = (fun () -> plan_sec2 (sec2_app "ilink-clp"));
      run =
        (fun () ->
          sec2_figure ~title:"Figure 1: ILINK CLP speedups"
            (sec2_app "ilink-clp")) };
    { id = "f2"; title = "Figure 2: ILINK-BAD";
      plan = (fun () -> plan_sec2 (sec2_app "ilink-bad"));
      run =
        (fun () ->
          sec2_figure ~title:"Figure 2: ILINK BAD speedups"
            (sec2_app "ilink-bad")) };
    { id = "f3"; title = "Figure 3: SOR (large)";
      plan = (fun () -> plan_sec2 (sec2_app "sor"));
      run =
        (fun () ->
          sec2_figure ~title:"Figure 3: SOR 2000x1000-class speedups"
            (sec2_app "sor")) };
    { id = "f4"; title = "Figure 4: SOR (square)";
      plan = (fun () -> plan_sec2 (sec2_app "sor-square"));
      run =
        (fun () ->
          sec2_figure ~title:"Figure 4: SOR 1000x1000-class speedups"
            (sec2_app "sor-square")) };
    { id = "f5"; title = "Figure 5: TSP (smaller input)";
      plan = (fun () -> plan_sec2 (sec2_app "tsp-small"));
      run =
        (fun () ->
          sec2_figure ~title:"Figure 5: TSP 18-city-class speedups"
            (sec2_app "tsp-small")) };
    { id = "f6"; title = "Figure 6: TSP (larger input)";
      plan = (fun () -> plan_sec2 (sec2_app "tsp"));
      run =
        (fun () ->
          sec2_figure ~title:"Figure 6: TSP 19-city-class speedups"
            (sec2_app "tsp")) };
    { id = "f7"; title = "Figure 7: Water";
      plan = (fun () -> plan_sec2 (sec2_app "water"));
      run =
        (fun () ->
          sec2_figure ~title:"Figure 7: Water speedups" (sec2_app "water")) };
    { id = "f8"; title = "Figure 8: M-Water";
      plan = (fun () -> plan_sec2 (sec2_app "m-water"));
      run =
        (fun () ->
          sec2_figure ~title:"Figure 8: M-Water speedups" (sec2_app "m-water")) };
    { id = "x1"; title = "TSP eager vs lazy release"; plan = plan_tsp_eager;
      run = tsp_eager };
    { id = "x2"; title = "user- vs kernel-level TreadMarks";
      plan = plan_kernel_level; run = kernel_level };
    { id = "x3"; title = "SOR with all points changing";
      plan = (fun () -> plan_sec2 (sec2_app "sor-touchall"));
      run = sor_touch_all };
    { id = "f9"; title = "Figure 9: SOR on AS/AH/HS";
      plan = (fun () -> plan_sec3 (sor_sim ()));
      run =
        (fun () ->
          sec3_figure ~title:"Figure 9: SOR speedups, AS/AH/HS" (sor_sim ())) };
    { id = "f10"; title = "Figure 10: TSP on AS/AH/HS";
      plan = (fun () -> plan_sec3 (tsp_sim ()));
      run =
        (fun () ->
          sec3_figure ~title:"Figure 10: TSP speedups, AS/AH/HS" (tsp_sim ())) };
    { id = "f11"; title = "Figure 11: M-Water on AS/AH/HS";
      plan = (fun () -> plan_sec3 (mwater_sim ()));
      run =
        (fun () ->
          sec3_figure ~title:"Figure 11: M-Water speedups, AS/AH/HS"
            (mwater_sim ())) };
    { id = "f12"; title = "Figure 12: message totals"; plan = plan_sim64;
      run = messages_figure };
    { id = "f13"; title = "Figure 13: data totals"; plan = plan_sim64;
      run = data_figure };
    { id = "f14"; title = "Figure 14: AS SOR overhead sweep";
      plan =
        (fun () ->
          plan_overhead ~tag:"AS"
            ~make_platform:(fun ov -> as_machine ~overhead:ov ())
            (sor_sim ()));
      run =
        (fun () ->
          overhead_figure
            ~title:
              "Figure 14: SOR on AS, software-overhead sweep (fixed/per-word \
               cycles)"
            ~tag:"AS"
            ~make_platform:(fun ov -> as_machine ~overhead:ov ())
            (sor_sim ())) };
    { id = "f15"; title = "Figure 15: AS M-Water overhead sweep";
      plan =
        (fun () ->
          plan_overhead ~tag:"AS"
            ~make_platform:(fun ov -> as_machine ~overhead:ov ())
            (mwater_sim ()));
      run =
        (fun () ->
          overhead_figure
            ~title:
              "Figure 15: M-Water on AS, software-overhead sweep \
               (fixed/per-word cycles)"
            ~tag:"AS"
            ~make_platform:(fun ov -> as_machine ~overhead:ov ())
            (mwater_sim ())) };
    { id = "f16"; title = "Figure 16: HS M-Water overhead sweep";
      plan =
        (fun () ->
          plan_overhead ~tag:"HS"
            ~make_platform:(fun ov -> hs_machine ~overhead:ov ())
            (mwater_sim ()));
      run =
        (fun () ->
          overhead_figure
            ~title:
              "Figure 16: M-Water on HS, software-overhead sweep \
               (fixed/per-word cycles)"
            ~tag:"HS"
            ~make_platform:(fun ov -> hs_machine ~overhead:ov ())
            (mwater_sim ())) };
    { id = "ab1"; title = "Ablation: LRC vs IVY page DSM";
      plan = plan_lrc_vs_ivy; run = lrc_vs_ivy };
    { id = "ab2"; title = "Ablation: lazy vs eager-invalidate RC";
      plan = plan_lrc_vs_erc; run = lrc_vs_erc };
    { id = "ab3"; title = "Ablation: SGI bus bandwidth"; plan = plan_sgi_bus;
      run = sgi_bus_ablation };
    { id = "ab4"; title = "Ablation: sharing patterns";
      plan = plan_sharing_patterns; run = sharing_patterns };
    { id = "bd1"; title = "Execution-time breakdown (software vs hardware)";
      plan = plan_breakdown; run = breakdown_exhibit };
    { id = "pm1"; title = "Protocol matrix: engines on the SDSM cluster";
      plan = plan_protocol_matrix; run = protocol_matrix };
    { id = "cr1"; title = "Availability under crash/restart churn";
      plan = plan_crash_churn; run = crash_churn };
    { id = "kv1"; title = "KV serving: throughput and tail latency";
      plan = plan_kv; run = kv_exhibit };
    { id = "micro"; title = "Bechamel micro-benchmarks"; plan = no_plan;
      run = micro };
  ]

(* ------------------------------------------------------------------ *)
(* Domain-pool probe: wall-clock one fixed run set through a 1-wide and
   a 4-wide pool.  Whole-suite wall times at different --jobs are not
   comparable from a single run (per-run walls measured inside workers
   inflate under oversubscription), so the probe re-executes the same
   runs through fresh pools and reports outside-the-pool walls.  On a
   host with a single core the honest result is a slowdown; the probe
   records whatever the host delivers. *)

let pool_probe () =
  (* Water is the heaviest section-2 app, so the probe measures pool
     behaviour rather than domain spawn overhead. *)
  let app = Registry.app ~scale:!scale "water" in
  let run_set () =
    (dec (), "dec", 1)
    :: List.concat_map
         (fun n -> [ (tmk (), "treadmarks", n); (sgi (), "sgi", n) ])
         procs_sec2
  in
  let time_with ~jobs =
    let pool = Pool.create ~jobs in
    let probe_cache : (run_key, timed) Run_cache.t = Run_cache.create pool in
    let t0 = Unix.gettimeofday () in
    let futs =
      List.map
        (fun (platform, platform_key, n) ->
          let key = { app_key = "water"; platform_key; n } in
          Run_cache.find_or_submit probe_cache key (execute key platform app))
        (run_set ())
    in
    List.iter (fun f -> ignore (Future.await f)) futs;
    let wall = Unix.gettimeofday () -. t0 in
    Pool.shutdown pool;
    wall
  in
  let jobs1 = time_with ~jobs:1 in
  let jobs4 = time_with ~jobs:4 in
  Printf.printf
    "Pool probe (water, DEC/TreadMarks/SGI, 1-8 procs): jobs=1 %.2f s, \
     jobs=4 %.2f s (speedup %.2fx)\n"
    jobs1 jobs4
    (if jobs4 > 0.0 then jobs1 /. jobs4 else 0.0);
  (jobs1, jobs4)

(* ------------------------------------------------------------------ *)
(* Machine-readable results: BENCH_access.json                         *)

(* Hand-rolled JSON writer (no JSON library in the tree).  Floats use
   %.17g so values round-trip bit-exactly; checksums are compared
   across runs by external tooling. *)

let json_escape s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

(* Schema bench_access/4: every executed experiment's wall time, the
   domain-pool width, and a sequential-equivalent estimate (the sum of
   per-run walls measured inside the workers — what the suite would cost
   with --jobs 1).  Runs appear in submission order, which is the same at
   any --jobs; only runs whose results a table or figure consumed are
   recorded, so the run list is identical across pool widths too.  /3
   added per-run offered/delivered/dropped/retrans reliability counters
   (all equal to messages / zero on the bench's fault-free runs).  /4
   adds the simulator-throughput exhibit: per-run "mcycles_per_s"
   (simulated cycles retired per wall second), the aggregate
   "mcycles_per_s" over all recorded runs, "pool_speedup"
   (sequential-equivalent wall over this run's wall, i.e. what --jobs
   bought relative to --jobs 1) and "host_cores" so throughput numbers
   can be compared across hosts; with --pool-probe it also records
   "pool_probe" — outside-the-pool walls of one fixed run set executed
   at jobs=1 and jobs=4 (the only fair cross-width comparison).  /5
   adds per-run crash-recovery fields: "crash" (whether the run crashed
   any node), "crashes", "recovery_time" (rejoin cost in simulated
   seconds) and "ckpt_bytes" — all false/zero on crash-free runs.  /6
   adds the serving-workload fields "kv_ops", "kv_p50", "kv_p99",
   "kv_p999" (latency percentiles in cycles) and "kv_model_ok" — all
   zero on runs of apps other than the KV store. *)
let write_bench_json ~path ~jobs ~total_wall ~experiment_walls ~probe =
  let runs =
    List.filter_map
      (fun (key, fut) ->
        if Hashtbl.mem announced key then
          Option.map (fun tr -> (key, tr)) (Future.peek fut)
        else None)
      (Run_cache.to_list (cache ()))
  in
  let sequential_equivalent =
    List.fold_left (fun acc (_, tr) -> acc +. tr.wall) 0.0 runs
  in
  let total_sim_cycles =
    List.fold_left (fun acc (_, tr) -> acc + tr.report.Report.cycles) 0 runs
  in
  let mcycles_per_s cycles wall =
    if wall > 0.0 then float_of_int cycles /. wall /. 1e6 else 0.0
  in
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"schema\": \"bench_access/6\",\n";
  out "  \"scale\": %S,\n" (Registry.scale_name !scale);
  out "  \"jobs\": %d,\n" jobs;
  out "  \"host_cores\": %d,\n" (Domain.recommended_domain_count ());
  out "  \"total_wall_s\": %s,\n" (json_float total_wall);
  out "  \"sequential_equivalent_s\": %s,\n" (json_float sequential_equivalent);
  out "  \"pool_speedup\": %s,\n"
    (json_float
       (if total_wall > 0.0 then sequential_equivalent /. total_wall else 0.0));
  out "  \"mcycles_per_s\": %s,\n"
    (json_float (mcycles_per_s total_sim_cycles sequential_equivalent));
  (match probe with
  | None -> ()
  | Some (jobs1, jobs4) ->
      out
        "  \"pool_probe\": {\"experiment\": \"sec2-water\", \"jobs1_wall_s\": \
         %s, \"jobs4_wall_s\": %s, \"jobs4_speedup\": %s},\n"
        (json_float jobs1) (json_float jobs4)
        (json_float (if jobs4 > 0.0 then jobs1 /. jobs4 else 0.0)));
  out "  \"experiments\": [\n";
  let n_exp = List.length experiment_walls in
  List.iteri
    (fun i (id, wall) ->
      out "    {\"id\": \"%s\", \"wall_s\": %s}%s\n" (json_escape id)
        (json_float wall)
        (if i = n_exp - 1 then "" else ","))
    experiment_walls;
  out "  ],\n";
  out "  \"runs\": [\n";
  let n_runs = List.length runs in
  List.iteri
    (fun i ({ app_key; platform_key; n }, { report = r; wall; _ }) ->
      out
        "    {\"app\": \"%s\", \"platform\": \"%s\", \"nprocs\": %d, \
         \"wall_s\": %s, \"sim_cycles\": %d, \"sim_s\": %s, \
         \"mcycles_per_s\": %s, \"messages\": %d, \"kbytes\": %d, \
         \"offered\": %d, \"delivered\": %d, \"dropped\": %d, \
         \"retrans\": %d, \"crash\": %b, \"crashes\": %d, \
         \"recovery_time\": %s, \"ckpt_bytes\": %d, \"kv_ops\": %d, \
         \"kv_p50\": %d, \"kv_p99\": %d, \"kv_p999\": %d, \
         \"kv_model_ok\": %d, \"checksum\": %s}%s\n"
        (json_escape app_key) (json_escape platform_key) n (json_float wall)
        r.Report.cycles
        (json_float (Report.seconds r))
        (json_float (mcycles_per_s r.Report.cycles wall))
        (Report.get r "net.msgs.total")
        (Report.get r "net.bytes.total" / 1024)
        (Report.offered r) (Report.delivered r) (Report.dropped r)
        (Report.retransmissions r)
        (Report.crashes r > 0)
        (Report.crashes r)
        (json_float (Report.recovery_time r))
        (Report.ckpt_bytes r)
        (Report.get r "kv.ops")
        (Report.get r "kv.lat_p50")
        (Report.get r "kv.lat_p99")
        (Report.get r "kv.lat_p999")
        (Report.get r "kv.model_ok")
        (json_float r.Report.checksum)
        (if i = n_runs - 1 then "" else ","))
    runs;
  out "  ]\n";
  out "}\n";
  close_out oc

(* ------------------------------------------------------------------ *)
(* Driver                                                              *)

let parse_args () =
  let rec go = function
    | [] -> ()
    | "--list" :: rest ->
        list_only := true;
        go rest
    | "--skip-micro" :: rest ->
        skip_micro := true;
        go rest
    | "--pool-probe" :: rest ->
        pool_probe_arg := true;
        go rest
    | "--only" :: ids :: rest ->
        only := String.split_on_char ',' (String.lowercase_ascii ids);
        go rest
    | "--jobs" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v >= 1 -> jobs_arg := v
        | Some _ | None -> failwith (Printf.sprintf "bad --jobs %S" n));
        go rest
    | "--json" :: p :: rest ->
        json_path := p;
        go rest
    | "--scale" :: s :: rest ->
        (match Registry.scale_of_string s with
        | Some v -> scale := v
        | None -> failwith (Printf.sprintf "unknown scale %S" s));
        go rest
    | "--full" :: rest ->
        scale := Registry.Paper;
        go rest
    | "--quick" :: rest ->
        scale := Registry.Quick;
        go rest
    | arg :: _ -> failwith (Printf.sprintf "unknown argument %S" arg)
  in
  go (List.tl (Array.to_list Sys.argv))

let () =
  (* The simulators allocate short-lived boxes at a high rate; a larger
     minor heap cuts collection counts by two orders of magnitude. *)
  Gc.set { (Gc.get ()) with Gc.minor_heap_size = 8 * 1024 * 1024 };
  parse_args ();
  if !list_only then
    List.iter (fun e -> Printf.printf "%-6s %s\n" e.id e.title) experiments
  else begin
    let wanted e =
      (match !only with [] -> true | ids -> List.mem e.id ids)
      && not (!skip_micro && e.id = "micro")
    in
    let jobs = if !jobs_arg > 0 then !jobs_arg else Pool.default_jobs () in
    let pool = Pool.create ~jobs in
    the_cache := Some (Run_cache.create pool);
    let selected = List.filter wanted experiments in
    let t0 = Unix.gettimeofday () in
    Printf.printf
      "Reproduction harness: Cox et al., ISCA 1994 (scale = %s, jobs = %d)\n\n"
      (Registry.scale_name !scale) jobs;
    (* Submit phase: declare every selected experiment's run set so the
       pool can execute the whole suite's runs in parallel.  Rendering
       below then awaits each run in the original deterministic order. *)
    List.iter (fun e -> e.plan ()) selected;
    let experiment_walls = ref [] in
    List.iter
      (fun e ->
        Printf.printf "=== %s: %s ===\n%!" (String.uppercase_ascii e.id)
          e.title;
        let e0 = Unix.gettimeofday () in
        e.run ();
        experiment_walls :=
          (e.id, Unix.gettimeofday () -. e0) :: !experiment_walls;
        print_newline ())
      selected;
    let total_wall = Unix.gettimeofday () -. t0 in
    Printf.printf "Total wall time: %.1f s\n" total_wall;
    Pool.shutdown pool;
    let probe = if !pool_probe_arg then Some (pool_probe ()) else None in
    let path = !json_path in
    write_bench_json ~path ~jobs ~total_wall
      ~experiment_walls:(List.rev !experiment_walls) ~probe;
    Printf.printf "Wrote %s\n" path
  end
