(* shmsim: run any of the paper's applications on any simulated platform.

   Examples:
     shmsim run -a sor -p treadmarks -n 8
     shmsim run -a m-water -p sgi -n 1,2,4,8 --scale quick
     shmsim run -a sor -p treadmarks -n 1,2,4,8 --jobs 4
     shmsim list

   Multi-run invocations (several processor counts, or [compare]'s
   platform sweep) execute their independent simulations on a pool of
   OCaml 5 domains; results render in the requested order regardless of
   completion order, so output is identical at any --jobs. *)

module Registry = Shm_apps.Registry
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Table = Shm_stats.Table
module Pool = Shm_runner.Pool
module Future = Shm_runner.Future

open Cmdliner

let scale_conv =
  let parse s =
    match Registry.scale_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Registry.scale_name s))

let procs_conv =
  let parse s =
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg "expected a comma-separated list of ints")
  in
  Arg.conv (parse, fun ppf l ->
      Format.pp_print_string ppf (String.concat "," (List.map string_of_int l)))

let app_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "a"; "app" ] ~docv:"APP"
        ~doc:
          (Printf.sprintf "Application to run; one of %s."
             (String.concat ", " Registry.names)))

let platform_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "p"; "platform" ] ~docv:"PLATFORM"
        ~doc:
          (Printf.sprintf "Platform model; one of %s."
             (String.concat ", " Machines.names)))

let procs_arg =
  Arg.(
    value & opt procs_conv [ 1 ]
    & info [ "n"; "procs" ] ~docv:"N[,N...]"
        ~doc:"Processor counts to run (speedups are relative to the first).")

let scale_arg =
  Arg.(
    value & opt scale_conv Registry.Default
    & info [ "scale" ] ~docv:"SCALE" ~doc:"Problem size: quick, default or paper.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print all raw counters.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute independent runs on $(docv) domains (default: \
           $(b,SHMCS_JOBS) or the machine's recommended domain count minus \
           one).  Output is identical at any $(docv).")

(* [with_pool jobs f] resolves the pool width, runs [f pool], and joins
   the workers even on error. *)
let with_pool jobs f =
  let jobs = if jobs > 0 then jobs else Pool.default_jobs () in
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let run_cmd =
  let run app_name platform_name procs scale stats jobs =
    let app = Registry.app ~scale app_name in
    let platform = Machines.get platform_name in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s on %s (%s scale)" app.name platform.Platform.name
             (Registry.scale_name scale))
        ~columns:[ "procs"; "seconds"; "speedup"; "msgs"; "kbytes"; "checksum" ]
    in
    with_pool jobs (fun pool ->
        let futures =
          List.map
            (fun n ->
              (n, Pool.submit pool (fun () -> platform.Platform.run app ~nprocs:n)))
            procs
        in
        let base = ref None in
        List.iter
          (fun (n, fut) ->
            let r = Future.await fut in
            let b = match !base with None -> base := Some r; r | Some b -> b in
            Table.add_row table
              [
                string_of_int n;
                Table.cell_f ~digits:4 (Report.seconds r);
                Table.cell_speedup (Report.speedup ~base:b r);
                string_of_int (Report.get r "net.msgs.total");
                string_of_int (Report.get r "net.bytes.total" / 1024);
                Printf.sprintf "%.6g" r.Report.checksum;
              ];
            if stats then begin
              Printf.printf "--- counters (procs=%d)\n" n;
              List.iter
                (fun (k, v) -> Printf.printf "%-32s %d\n" k v)
                r.Report.counters
            end)
          futures);
    Table.print table
  in
  Cmd.v (Cmd.info "run" ~doc:"Run an application on a platform model")
    Term.(
      const run $ app_arg $ platform_arg $ procs_arg $ scale_arg $ stats_arg
      $ jobs_arg)

let list_cmd =
  let list () =
    print_endline "applications:";
    List.iter (fun n -> Printf.printf "  %s\n" n) Registry.names;
    print_endline "platforms:";
    List.iter (fun n -> Printf.printf "  %s\n" n) Machines.names
  in
  Cmd.v
    (Cmd.info "list" ~doc:"List available applications and platforms")
    Term.(const list $ const ())

let compare_cmd =
  let compare app_name procs scale jobs =
    let scale_apps = Registry.app ~scale in
    let platforms =
      [ "treadmarks"; "treadmarks-kernel"; "treadmarks-erc"; "ivy"; "sgi" ]
    in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s across shared-memory implementations (%s scale)"
             app_name (Registry.scale_name scale))
        ~columns:[ "platform"; "procs"; "seconds"; "speedup"; "msgs"; "kbytes" ]
    in
    with_pool jobs (fun pool ->
        (* Submit the whole platform x procs matrix up front; each run
           builds its own app instance inside the worker, so nothing
           mutable is shared between concurrent simulations. *)
        let submit pname n =
          Pool.submit pool (fun () ->
              (Machines.get pname).Platform.run (scale_apps app_name) ~nprocs:n)
        in
        let grid =
          List.map
            (fun pname ->
              let base = submit pname 1 in
              ( pname,
                base,
                List.map (fun n -> (n, if n = 1 then base else submit pname n)) procs ))
            platforms
        in
        List.iter
          (fun (pname, base_fut, rows) ->
            let p = Machines.get pname in
            let base = Future.await base_fut in
            List.iter
              (fun (n, fut) ->
                let r = Future.await fut in
                Table.add_row table
                  [
                    p.Platform.name;
                    string_of_int n;
                    Table.cell_f ~digits:4 (Report.seconds r);
                    Table.cell_speedup (Report.speedup ~base r);
                    string_of_int (Report.get r "net.msgs.total");
                    string_of_int (Report.get r "net.bytes.total" / 1024);
                  ])
              rows)
          grid);
    Table.print table
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run one application on every software-DSM variant and the SGI")
    Term.(const compare $ app_arg $ procs_arg $ scale_arg $ jobs_arg)

let main =
  Cmd.group
    (Cmd.info "shmsim" ~version:"1.0"
       ~doc:
         "Software vs. hardware shared-memory implementation: simulation \
          models from Cox et al., ISCA 1994")
    [ run_cmd; list_cmd; compare_cmd ]

let () = exit (Cmd.eval main)
