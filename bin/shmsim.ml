(* shmsim: run any of the paper's applications on any simulated platform.

   Examples:
     shmsim run -a sor -p treadmarks -n 8
     shmsim run -a m-water -p sgi -n 1,2,4,8 --scale quick
     shmsim run -a sor -p treadmarks -n 1,2,4,8 --jobs 4
     shmsim list

   Multi-run invocations (several processor counts, or [compare]'s
   platform sweep) execute their independent simulations on a pool of
   OCaml 5 domains; results render in the requested order regardless of
   completion order, so output is identical at any --jobs. *)

module Registry = Shm_apps.Registry
module Machines = Shm_platform.Machines
module Platform = Shm_platform.Platform
module Report = Shm_platform.Report
module Instrument = Shm_platform.Instrument
module Trace = Shm_sim.Trace
module Lifecycle = Shm_sim.Lifecycle
module Fabric = Shm_net.Fabric
module Table = Shm_stats.Table
module Pool = Shm_runner.Pool
module Future = Shm_runner.Future

open Cmdliner

let scale_conv =
  let parse s =
    match Registry.scale_of_string s with
    | Some v -> Ok v
    | None -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  Arg.conv (parse, fun ppf s -> Format.pp_print_string ppf (Registry.scale_name s))

let procs_conv =
  let parse s =
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg "expected a comma-separated list of ints")
  in
  Arg.conv (parse, fun ppf l ->
      Format.pp_print_string ppf (String.concat "," (List.map string_of_int l)))

let app_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "a"; "app" ] ~docv:"APP"
        ~doc:
          (Printf.sprintf "Application to run; one of %s."
             (String.concat ", " Registry.names)))

let platform_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "p"; "platform" ] ~docv:"PLATFORM"
        ~doc:
          (Printf.sprintf "Platform model; one of %s."
             (String.concat ", " Machines.names)))

let protocol_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "protocol" ] ~docv:"PROTO"
        ~doc:
          (Printf.sprintf
             "Coherence engine to mount on the platform (see $(b,shmsim \
              protocols)); one of %s.  Machines refuse engines of the wrong \
              kind — a hardware engine on a software-DSM cluster and vice \
              versa."
             (String.concat ", " Machines.protocols)))

let procs_arg =
  Arg.(
    value & opt procs_conv [ 1 ]
    & info [ "n"; "procs" ] ~docv:"N[,N...]"
        ~doc:"Processor counts to run (speedups are relative to the first).")

let scale_arg =
  Arg.(
    value & opt scale_conv Registry.Default
    & info [ "scale" ] ~docv:"SCALE" ~doc:"Problem size: quick, default or paper.")

let stats_arg =
  Arg.(value & flag & info [ "stats" ] ~doc:"Print all raw counters.")

let jobs_arg =
  Arg.(
    value & opt int 0
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Execute independent runs on $(docv) domains (default: \
           $(b,SHMCS_JOBS) or the machine's recommended domain count minus \
           one).  Output is identical at any $(docv).")

(* Fault-injection flags (validated here so a bad value is a friendly
   cmdliner error, not a raw exception from deep inside the simulator). *)

let rate_conv ~what =
  let parse s =
    match float_of_string_opt s with
    | Some r when r >= 0.0 && r <= 1.0 -> Ok r
    | Some _ ->
        Error
          (`Msg (Printf.sprintf "%s must be a probability in [0, 1], got %s"
                   what s))
    | None -> Error (`Msg (Printf.sprintf "%s must be a number, got %S" what s))
  in
  Arg.conv (parse, fun ppf r -> Format.fprintf ppf "%g" r)

let nonneg_conv ~what =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 0 -> Ok n
    | Some _ ->
        Error (`Msg (Printf.sprintf "%s must be non-negative, got %s" what s))
    | None ->
        Error (`Msg (Printf.sprintf "%s must be an integer, got %S" what s))
  in
  Arg.conv (parse, fun ppf n -> Format.pp_print_int ppf n)

let drop_arg =
  Arg.(
    value & opt (rate_conv ~what:"--drop") 0.0
    & info [ "drop" ] ~docv:"RATE"
        ~doc:
          "Drop each network message with probability $(docv) (both miss \
           and sync classes).  Software-DSM platforms only.")

let dup_arg =
  Arg.(
    value & opt (rate_conv ~what:"--dup") 0.0
    & info [ "dup" ] ~docv:"RATE"
        ~doc:"Duplicate each delivered message with probability $(docv).")

let jitter_arg =
  Arg.(
    value & opt (nonneg_conv ~what:"--jitter") 0
    & info [ "jitter" ] ~docv:"CYCLES"
        ~doc:"Delay each delivery by a uniform extra 0..$(docv) cycles.")

let fault_seed_arg =
  Arg.(
    value & opt (nonneg_conv ~what:"--fault-seed") 1
    & info [ "fault-seed" ] ~docv:"N"
        ~doc:
          "Seed of the fault-injection PRNG stream; the same seed \
           reproduces the same fault and retransmission schedule.")

(* Crash-injection flags (DESIGN.md §13).  [--ckpt-interval] defaults to
   500k cycles whenever a crash source is armed, so a bare [--crash 1@2M]
   run exercises the checkpoint path without further flags. *)

let crash_conv =
  let parse s =
    match String.index_opt s '@' with
    | Some i -> (
        let node = String.sub s 0 i in
        let cycle = String.sub s (i + 1) (String.length s - i - 1) in
        match (int_of_string_opt node, int_of_string_opt cycle) with
        | Some n, Some c when n >= 0 && c >= 0 -> Ok (n, c)
        | _ ->
            Error
              (`Msg
                 (Printf.sprintf
                    "--crash expects NODE@CYCLE with non-negative ints, got %S"
                    s)))
    | None ->
        Error (`Msg (Printf.sprintf "--crash expects NODE@CYCLE, got %S" s))
  in
  Arg.conv (parse, fun ppf (n, c) -> Format.fprintf ppf "%d@%d" n c)

let crash_arg =
  Arg.(
    value & opt_all crash_conv []
    & info [ "crash" ] ~docv:"NODE@CYCLE"
        ~doc:
          "Crash node $(i,NODE) at cycle $(i,CYCLE); repeatable.  The node \
           drops its in-flight messages, goes unreachable for $(b,--outage) \
           cycles, then restarts and rejoins from its last checkpoint.  \
           Software-DSM platforms only.")

let crash_rate_arg =
  Arg.(
    value & opt (rate_conv ~what:"--crash-rate") 0.0
    & info [ "crash-rate" ] ~docv:"RATE"
        ~doc:
          "Additionally crash each node with probability $(docv) per \
           1M-cycle window (drawn from the $(b,--fault-seed) stream's \
           crash PRNG; at most a few nodes per run).")

let outage_arg =
  Arg.(
    value & opt (nonneg_conv ~what:"--outage") Lifecycle.none.outage_cycles
    & info [ "outage" ] ~docv:"CYCLES"
        ~doc:"Cycles a crashed node stays down before restarting.")

let ckpt_interval_arg =
  Arg.(
    value
    & opt (some (nonneg_conv ~what:"--ckpt-interval")) None
    & info [ "ckpt-interval" ] ~docv:"CYCLES"
        ~doc:
          "Failure-atomic checkpoint period (0 disables); defaults to \
           500000 when any crash source is armed, 0 otherwise.")

let crash_of ~crashes ~rate ~outage ~seed ~ckpt_interval =
  let p =
    { Lifecycle.none with
      Lifecycle.crashes;
      crash_rate = rate;
      crash_seed = seed;
      outage_cycles = outage }
  in
  let ckpt =
    match ckpt_interval with
    | Some i -> i
    | None -> if Lifecycle.active p then 500_000 else 0
  in
  { p with Lifecycle.ckpt_interval = ckpt }

let crash_banner crash =
  if not (Lifecycle.active crash) then ""
  else
    Printf.sprintf ", crash: scheduled=%d rate=%g outage=%d ckpt=%d"
      (List.length crash.Lifecycle.crashes)
      crash.Lifecycle.crash_rate crash.Lifecycle.outage_cycles
      crash.Lifecycle.ckpt_interval

(* Serving-workload (kv) knobs.  These forward to the registry as app
   parameter overrides, so they are validated against the app's declared
   keys — passing them to an app that has no such knob is a friendly
   error, not a silent no-op. *)

let keys_arg =
  Arg.(
    value & opt (some (nonneg_conv ~what:"--keys")) None
    & info [ "keys" ] ~docv:"N" ~doc:"KV store: key-space size.")

let zipf_arg =
  Arg.(
    value & opt (some float) None
    & info [ "zipf" ] ~docv:"THETA"
        ~doc:"KV store: Zipf popularity skew (0 = uniform).")

let get_ratio_arg =
  Arg.(
    value & opt (some (rate_conv ~what:"--get-ratio")) None
    & info [ "get-ratio" ] ~docv:"RATE"
        ~doc:"KV store: fraction of requests that are gets, in [0, 1].")

let requests_arg =
  Arg.(
    value & opt (some (nonneg_conv ~what:"--requests")) None
    & info [ "requests" ] ~docv:"N"
        ~doc:"KV store: requests issued per node (open loop).")

let app_params ~keys ~zipf ~get_ratio ~requests =
  List.filter_map Fun.id
    [
      Option.map (fun v -> ("keys", string_of_int v)) keys;
      Option.map (fun v -> ("zipf", Printf.sprintf "%g" v)) zipf;
      Option.map (fun v -> ("get-ratio", Printf.sprintf "%g" v)) get_ratio;
      Option.map (fun v -> ("requests", string_of_int v)) requests;
    ]

let max_cycles_arg =
  Arg.(
    value & opt (some (nonneg_conv ~what:"--max-cycles")) None
    & info [ "max-cycles" ] ~docv:"N"
        ~doc:
          "Abort a run whose event time exceeds $(docv) cycles (livelock \
           watchdog); fault-injection runs default to a generous backstop.")

let json_arg =
  Arg.(
    value & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Also write the results (including the resolved fault policy \
              and reliability counters) as JSON to $(docv).")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"PATH"
        ~doc:
          "Write a Chrome-trace JSON timeline of the run to $(docv) \
           (load in chrome://tracing or Perfetto): one track per simulated \
           processor and protocol daemon with spans per time category, plus \
           instant events for faults, retransmissions and invalidations.  \
           Requires a single $(b,--procs) count.  Tracing never perturbs \
           the simulation: cycles, messages and checksums are identical \
           with and without it.")

let faults_of ~drop ~dup ~jitter ~seed =
  { Fabric.no_faults with
    Fabric.drop_miss = drop;
    drop_sync = drop;
    dup_rate = dup;
    jitter_cycles = jitter;
    fault_seed = seed }

let fault_banner faults =
  if not (Fabric.faults_active faults) then ""
  else
    Printf.sprintf ", faults: drop=%g dup=%g jitter=%d seed=%d"
      faults.Fabric.drop_miss faults.Fabric.dup_rate faults.Fabric.jitter_cycles
      faults.Fabric.fault_seed

let write_run_json path ~app ~platform ~scale ~faults ~crash rows =
  let buf = Buffer.create 1024 in
  let fault_fields =
    Printf.sprintf
      "{\"active\": %b, \"drop\": %g, \"dup\": %g, \"jitter\": %d, \"seed\": \
       %d}"
      (Fabric.faults_active faults)
      faults.Fabric.drop_miss faults.Fabric.dup_rate
      faults.Fabric.jitter_cycles faults.Fabric.fault_seed
  in
  let crash_fields =
    Printf.sprintf
      "{\"active\": %b, \"scheduled\": %d, \"rate\": %g, \"outage\": %d, \
       \"ckpt_interval\": %d}"
      (Lifecycle.active crash)
      (List.length crash.Lifecycle.crashes)
      crash.Lifecycle.crash_rate crash.Lifecycle.outage_cycles
      crash.Lifecycle.ckpt_interval
  in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\": \"shmsim_run/3\", \"app\": \"%s\", \"platform\": \
        \"%s\", \"scale\": \"%s\", \"faults\": %s, \"crash\": %s, \"runs\": ["
       app platform scale fault_fields crash_fields);
  List.iteri
    (fun i (n, r) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf
           "{\"nprocs\": %d, \"cycles\": %d, \"seconds\": %.9g, \"checksum\": \
            \"%h\", \"msgs\": %d, \"kbytes\": %d, \"offered\": %d, \
            \"delivered\": %d, \"dropped\": %d, \"duplicated\": %d, \
            \"retrans\": %d, \"dups_suppressed\": %d, \"crashes\": %d, \
            \"restarts\": %d, \"ckpts\": %d, \"ckpt_bytes\": %d, \
            \"recovery_cycles\": %d, \"recovery_seconds\": %.9g, \
            \"kv_ops\": %d, \"kv_p50\": %d, \"kv_p99\": %d, \"kv_p999\": %d, \
            \"kv_model_ok\": %d}"
           n r.Report.cycles (Report.seconds r) r.Report.checksum
           (Report.get r "net.msgs.total")
           (Report.get r "net.bytes.total" / 1024)
           (Report.offered r) (Report.delivered r) (Report.dropped r)
           (Report.duplicated r)
           (Report.retransmissions r)
           (Report.dups_suppressed r)
           (Report.crashes r) (Report.restarts r) (Report.ckpt_count r)
           (Report.ckpt_bytes r)
           (Report.recovery_cycles r)
           (Report.recovery_time r)
           (Report.get r "kv.ops")
           (Report.get r "kv.lat_p50")
           (Report.get r "kv.lat_p99")
           (Report.get r "kv.lat_p999")
           (Report.get r "kv.model_ok")))
    rows;
  Buffer.add_string buf "]}\n";
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (Buffer.contents buf))

(* [with_pool jobs f] resolves the pool width, runs [f pool], and joins
   the workers even on error. *)
let with_pool jobs f =
  let jobs = if jobs > 0 then jobs else Pool.default_jobs () in
  let pool = Pool.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) (fun () -> f pool)

let run_cmd =
  let run app_name platform_name protocol procs scale stats jobs drop dup
      jitter seed crashes crash_rate outage ckpt_interval keys zipf get_ratio
      requests max_cycles json trace_path =
    let params = app_params ~keys ~zipf ~get_ratio ~requests in
    (* Each worker builds its own app instance: apps carry per-run
       observation state (the kv store's request log and latency
       histograms), so concurrent runs must not share one (DESIGN.md §8).
       Build one up front anyway, for its display name and to surface
       parameter errors before any simulation starts. *)
    let make_app () = Registry.app ~scale ~params app_name in
    let app =
      try make_app ()
      with Invalid_argument msg ->
        Printf.eprintf "shmsim: %s\n" msg;
        exit 2
    in
    let faults = faults_of ~drop ~dup ~jitter ~seed in
    let crash =
      crash_of ~crashes ~rate:crash_rate ~outage ~seed ~ckpt_interval
    in
    let trace =
      match trace_path with
      | None -> None
      | Some _ when List.length procs <> 1 ->
          Printf.eprintf
            "shmsim: --trace records one run; give a single --procs count\n";
          exit 2
      | Some path -> Some (path, Trace.create ())
    in
    let instrument =
      match trace with
      | None -> Instrument.off
      | Some (_, tr) -> Instrument.with_trace tr
    in
    let platform =
      try
        Machines.get ~faults ~crash ?max_cycles ~instrument ?protocol
          platform_name
      with Invalid_argument msg ->
        Printf.eprintf "shmsim: %s\n" msg;
        exit 2
    in
    let fault_cols =
      if Fabric.faults_active faults then [ "dropped"; "retrans" ] else []
    in
    let crash_cols =
      if Lifecycle.active crash then [ "crashes"; "ckpts"; "recov_ms" ]
      else []
    in
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s on %s (%s scale%s%s)" app.name
             platform.Platform.name
             (Registry.scale_name scale)
             (fault_banner faults) (crash_banner crash))
        ~columns:
          ([ "procs"; "seconds"; "speedup"; "msgs"; "kbytes"; "checksum" ]
          @ fault_cols @ crash_cols)
    in
    let results = ref [] in
    (* Engine-level refusals (e.g. tardis under a crash policy) surface at
       mount time inside the run, not from Machines.get — report them as
       friendly CLI errors too. *)
    (try
       with_pool jobs (fun pool ->
        let futures =
          List.map
            (fun n ->
              ( n,
                Pool.submit pool (fun () ->
                    platform.Platform.run (make_app ()) ~nprocs:n) ))
            procs
        in
        let base = ref None in
        List.iter
          (fun (n, fut) ->
            let r = Future.await fut in
            results := (n, r) :: !results;
            let b = match !base with None -> base := Some r; r | Some b -> b in
            Table.add_row table
              ([
                 string_of_int n;
                 Table.cell_f ~digits:4 (Report.seconds r);
                 Table.cell_speedup (Report.speedup ~base:b r);
                 string_of_int (Report.get r "net.msgs.total");
                 string_of_int (Report.get r "net.bytes.total" / 1024);
                 Printf.sprintf "%.6g" r.Report.checksum;
               ]
              @ (if fault_cols = [] then []
                 else
                   [
                     string_of_int (Report.dropped r);
                     string_of_int (Report.retransmissions r);
                   ])
              @
              if crash_cols = [] then []
              else
                [
                  string_of_int (Report.crashes r);
                  string_of_int (Report.ckpt_count r);
                  Table.cell_f ~digits:3 (1e3 *. Report.recovery_time r);
                ]);
            if stats then begin
              Printf.printf "--- counters (procs=%d)\n" n;
              List.iter
                (fun (k, v) -> Printf.printf "%-32s %d\n" k v)
                r.Report.counters
            end)
          futures)
     with Invalid_argument msg ->
       Printf.eprintf "shmsim: %s\n" msg;
       exit 2);
    Table.print table;
    let kv_rows =
      List.filter (fun (_, r) -> Report.get r "kv.ops" > 0) (List.rev !results)
    in
    if kv_rows <> [] then begin
      let us cycles =
        Table.cell_f ~digits:1
          (float_of_int cycles /. platform.Platform.clock_mhz)
      in
      let t =
        Table.create ~title:"kv latency (open-loop, from scheduled issue)"
          ~columns:
            [
              "procs"; "ops"; "kops/s"; "p50_us"; "p99_us"; "p999_us";
              "max_us"; "moves";
            ]
      in
      List.iter
        (fun (n, r) ->
          Table.add_row t
            [
              string_of_int n;
              string_of_int (Report.get r "kv.ops");
              Table.cell_f ~digits:1
                (float_of_int (Report.get r "kv.ops")
                /. Report.seconds r /. 1e3);
              us (Report.get r "kv.lat_p50");
              us (Report.get r "kv.lat_p99");
              us (Report.get r "kv.lat_p999");
              us (Report.get r "kv.lat_max");
              string_of_int (Report.get r "kv.moves");
            ])
        kv_rows;
      Table.print t
    end;
    if Lifecycle.active crash then
      List.iter
        (fun (n, r) ->
          Printf.printf "crash (procs=%d): %s\n" n (Report.crash_summary r))
        (List.rev !results);
    Option.iter
      (fun path ->
        write_run_json path ~app:app.name ~platform:platform.Platform.name
          ~scale:(Registry.scale_name scale) ~faults ~crash
          (List.rev !results))
      json;
    Option.iter
      (fun (path, tr) ->
        Trace.write_chrome_file tr path ~clock_mhz:platform.Platform.clock_mhz;
        Printf.printf "trace: %d spans, %d instants -> %s\n"
          (Trace.span_count tr) (Trace.instant_count tr) path)
      trace
  in
  Cmd.v (Cmd.info "run" ~doc:"Run an application on a platform model")
    Term.(
      const run $ app_arg $ platform_arg $ protocol_arg $ procs_arg $ scale_arg
      $ stats_arg $ jobs_arg $ drop_arg $ dup_arg $ jitter_arg $ fault_seed_arg
      $ crash_arg $ crash_rate_arg $ outage_arg $ ckpt_interval_arg $ keys_arg
      $ zipf_arg $ get_ratio_arg $ requests_arg $ max_cycles_arg $ json_arg
      $ trace_arg)

let list_cmd =
  let list () =
    print_endline "applications:";
    List.iter (fun n -> Printf.printf "  %s\n" n) Registry.names;
    print_endline "platforms:";
    List.iter (fun n -> Printf.printf "  %s\n" n) Machines.names;
    print_endline "protocols:";
    List.iter (fun n -> Printf.printf "  %s\n" n) Machines.protocols
  in
  Cmd.v
    (Cmd.info "list"
       ~doc:"List available applications, platforms and protocols")
    Term.(const list $ const ())

let protocols_cmd =
  let show () =
    List.iter
      (fun name ->
        let kind = Shm_engines.kind_of name in
        Printf.printf "%-10s %-13s %s\n" name
          (Shm_proto.kind_name kind)
          (Shm_engines.describe name))
      Machines.protocols
  in
  Cmd.v
    (Cmd.info "protocols"
       ~doc:
         "List the registered coherence engines: name, kind (sdsm engines \
          mount on the software-DSM clusters, hw engines on the bus and \
          crossbar machines) and a one-line description")
    Term.(const show $ const ())

let compare_cmd =
  let compare app_name protocol procs scale jobs =
    let scale_apps = Registry.app ~scale in
    let platforms =
      (* With an explicit engine the sweep becomes "that engine on the
         SDSM cluster vs. the hardware baseline"; without one it is the
         paper's full software-variant spread. *)
      match protocol with
      | Some p -> [ ("treadmarks", Some p); ("sgi", None) ]
      | None ->
          List.map
            (fun n -> (n, None))
            [ "treadmarks"; "treadmarks-kernel"; "treadmarks-erc"; "ivy"; "sgi" ]
    in
    let machine (pname, proto) =
      try Machines.get ?protocol:proto pname
      with Invalid_argument msg ->
        Printf.eprintf "shmsim: %s\n" msg;
        exit 2
    in
    (* Surface an invalid machine x protocol combination before any runs. *)
    List.iter (fun spec -> ignore (machine spec)) platforms;
    let table =
      Table.create
        ~title:
          (Printf.sprintf "%s across shared-memory implementations (%s scale)"
             app_name (Registry.scale_name scale))
        ~columns:[ "platform"; "procs"; "seconds"; "speedup"; "msgs"; "kbytes" ]
    in
    with_pool jobs (fun pool ->
        (* Submit the whole platform x procs matrix up front; each run
           builds its own app instance inside the worker, so nothing
           mutable is shared between concurrent simulations. *)
        let submit spec n =
          Pool.submit pool (fun () ->
              (machine spec).Platform.run (scale_apps app_name) ~nprocs:n)
        in
        let grid =
          List.map
            (fun spec ->
              let base = submit spec 1 in
              ( spec,
                base,
                List.map (fun n -> (n, if n = 1 then base else submit spec n)) procs ))
            platforms
        in
        List.iter
          (fun (spec, base_fut, rows) ->
            let p = machine spec in
            let base = Future.await base_fut in
            List.iter
              (fun (n, fut) ->
                let r = Future.await fut in
                Table.add_row table
                  [
                    p.Platform.name;
                    string_of_int n;
                    Table.cell_f ~digits:4 (Report.seconds r);
                    Table.cell_speedup (Report.speedup ~base r);
                    string_of_int (Report.get r "net.msgs.total");
                    string_of_int (Report.get r "net.bytes.total" / 1024);
                  ])
              rows)
          grid);
    Table.print table
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:
         "Run one application on every software-DSM variant and the SGI \
          (with $(b,--protocol), on that engine and the SGI)")
    Term.(
      const compare $ app_arg $ protocol_arg $ procs_arg $ scale_arg $ jobs_arg)

(* Self-contained validator for the files [--trace] writes.  The writer
   emits one JSON object per line (see Shm_sim.Trace), so the checks are
   line-based and need no JSON parser: known "ph" kinds only, "ts" values
   monotonically non-decreasing, at least one complete span. *)
let trace_check_cmd =
  let check path =
    let fail fmt =
      Printf.ksprintf
        (fun msg ->
          Printf.eprintf "trace-check: %s: %s\n" path msg;
          exit 1)
        fmt
    in
    let lines =
      try
        let ic = open_in path in
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () ->
            let rec go acc =
              match input_line ic with
              | line -> go (line :: acc)
              | exception End_of_file -> List.rev acc
            in
            go [])
      with Sys_error e -> fail "%s" e
    in
    (match lines with
    | first :: _ when String.length first >= 15
                      && String.sub first 0 15 = "{\"traceEvents\":" -> ()
    | _ -> fail "missing {\"traceEvents\": header");
    let field line name =
      let marker = Printf.sprintf "\"%s\":" name in
      let mlen = String.length marker in
      let rec scan i =
        if i + mlen > String.length line then None
        else if String.sub line i mlen = marker then
          let stop = ref (i + mlen) in
          while
            !stop < String.length line
            && not (List.mem line.[!stop] [ ','; '}' ])
          do
            incr stop
          done;
          Some (String.sub line (i + mlen) (!stop - i - mlen))
        else scan (i + 1)
      in
      scan 0
    in
    let spans = ref 0 and events = ref 0 and last_ts = ref neg_infinity in
    List.iteri
      (fun lineno line ->
        match field line "ph" with
        | None -> () (* header / footer lines carry no event *)
        | Some ph -> (
            incr events;
            (match ph with
            | "\"X\"" -> incr spans
            | "\"i\"" | "\"M\"" -> ()
            | other -> fail "line %d: unknown event kind %s" (lineno + 1) other);
            match field line "ts" with
            | None ->
                if ph <> "\"M\"" then
                  fail "line %d: %s event without \"ts\"" (lineno + 1) ph
            | Some ts_text -> (
                match float_of_string_opt ts_text with
                | None ->
                    fail "line %d: unreadable \"ts\":%s" (lineno + 1) ts_text
                | Some ts ->
                    if ts < !last_ts then
                      fail
                        "line %d: timestamp %g goes backwards (previous %g)"
                        (lineno + 1) ts !last_ts;
                    last_ts := ts)))
      lines;
    if !spans = 0 then fail "no complete (\"ph\":\"X\") spans";
    Printf.printf
      "trace-check: %s: %d events (%d spans), timestamps monotonic\n" path
      !events !spans
  in
  let path_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FILE" ~doc:"Chrome-trace JSON written by --trace.")
  in
  Cmd.v
    (Cmd.info "trace-check"
       ~doc:"Validate a Chrome-trace file written by $(b,run --trace)")
    Term.(const check $ path_arg)

let main =
  Cmd.group
    (Cmd.info "shmsim" ~version:"1.0"
       ~doc:
         "Software vs. hardware shared-memory implementation: simulation \
          models from Cox et al., ISCA 1994")
    [ run_cmd; list_cmd; protocols_cmd; compare_cmd; trace_check_cmd ]

let () = exit (Cmd.eval main)
