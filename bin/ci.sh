#!/bin/sh
# CI gate: type-check everything, run the full test suite, and refuse to
# pass if build artifacts sneak back into the git index.
set -eu

cd "$(dirname "$0")/.."

if git ls-files --error-unmatch _build >/dev/null 2>&1 || \
   [ -n "$(git ls-files '_build/*')" ]; then
  echo "ci: _build/ is tracked in the git index; remove it" >&2
  exit 1
fi

dune build @check
dune runtest

echo "ci: OK"
