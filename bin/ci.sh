#!/bin/sh
# CI gate: type-check everything, run the full test suite, and refuse to
# pass if build artifacts sneak back into the git index.
set -eu

cd "$(dirname "$0")/.."

if git ls-files --error-unmatch _build >/dev/null 2>&1 || \
   [ -n "$(git ls-files '_build/*')" ]; then
  echo "ci: _build/ is tracked in the git index; remove it" >&2
  exit 1
fi

dune build @check
dune runtest

# Isolation audit for the run scheduler: lib/ must hold no module-level
# mutable state, or concurrent runs on separate domains could interfere
# (see DESIGN.md §8).  Matches toplevel bindings that allocate a mutable
# container or touch global randomness.
if grep -nE '^let [a-zA-Z0-9_]+ *(:[^=]*)?= *(ref |Hashtbl\.create|Buffer\.create|Queue\.create|Bytes\.(create|make)|Array\.(make|create|init)|Atomic\.make|Weak\.create|Random\.)' \
     lib/*/*.ml; then
  echo "ci: module-level mutable state in lib/ breaks run isolation" >&2
  exit 1
fi

# Bench smoke under a parallel pool: one quick-scale exhibit with
# --jobs 2 must succeed and emit a valid bench_access/2 JSON report.
smoke_json=$(mktemp)
trap 'rm -f "$smoke_json"' EXIT
dune exec bench/main.exe -- --scale quick --only f3 --jobs 2 \
  --json "$smoke_json" >/dev/null
if command -v jq >/dev/null 2>&1; then
  schema=$(jq -r .schema "$smoke_json")
  jobs=$(jq -r .jobs "$smoke_json")
  nruns=$(jq '.runs | length' "$smoke_json")
  if [ "$schema" != "bench_access/2" ] || [ "$jobs" != 2 ] || \
     [ "$nruns" -lt 1 ]; then
    echo "ci: bad bench JSON (schema=$schema jobs=$jobs runs=$nruns)" >&2
    exit 1
  fi
else
  python3 -c '
import json, sys
d = json.load(open(sys.argv[1]))
assert d["schema"] == "bench_access/2", d["schema"]
assert d["jobs"] == 2, d["jobs"]
assert len(d["runs"]) >= 1
' "$smoke_json"
fi

echo "ci: OK"
