#!/bin/sh
# CI gate: type-check everything, run the full test suite, and refuse to
# pass if build artifacts sneak back into the git index.
set -eu

cd "$(dirname "$0")/.."

if git ls-files --error-unmatch _build >/dev/null 2>&1 || \
   [ -n "$(git ls-files '_build/*')" ]; then
  echo "ci: _build/ is tracked in the git index; remove it" >&2
  exit 1
fi

dune build @check
dune runtest

# Isolation audit for the run scheduler: lib/ must hold no module-level
# mutable state, or concurrent runs on separate domains could interfere
# (see DESIGN.md §8).  Matches toplevel bindings that allocate a mutable
# container or touch global randomness.
if grep -nE '^let [a-zA-Z0-9_]+ *(:[^=]*)?= *(ref |Hashtbl\.create|Buffer\.create|Queue\.create|Bytes\.(create|make)|Array\.(make|create|init)|Atomic\.make|Weak\.create|Random\.)' \
     lib/*/*.ml; then
  echo "ci: module-level mutable state in lib/ breaks run isolation" >&2
  exit 1
fi

# Reliability audit: the DSM protocol layers must route every remote
# message through Shm_net.Reliable — a direct Fabric send/recv would
# bypass sequencing and break the fault-tolerance contract of
# DESIGN.md §9.
if grep -nE 'Fabric\.(send|recv|loopback)' lib/tmk/*.ml lib/ivy/*.ml \
     lib/tardis/*.ml; then
  echo "ci: the DSM engines must use Shm_net.Reliable, not raw Fabric" >&2
  exit 1
fi

# Diagnosability audit: a protocol layer that reaches an impossible state
# must raise a descriptive error naming the page/requester/state, never
# a bare `assert false` (DESIGN.md §10 — the Ivy manager's Invalid-state
# branch was exactly such a silent failure).
if grep -n 'assert false' lib/ivy/*.ml lib/tmk/*.ml lib/tardis/*.ml; then
  echo "ci: raise a descriptive error instead of 'assert false' in the DSM protocol layers" >&2
  exit 1
fi

# Layering audit: lib/platform mounts coherence engines only through the
# Shm_proto interface and the Shm_engines registry (DESIGN.md §11).  A
# platform naming a concrete engine library would re-couple the layers
# the protocol interface decoupled.
if grep -nE 'Shm_tmk\.|Shm_ivy\.|Shm_tardis\.|Snoop\.|Directory\.|Shm_memsys\.Snoop|Shm_memsys\.Directory' \
     lib/platform/*.ml lib/platform/*.mli; then
  echo "ci: lib/platform must mount engines via Shm_proto/Shm_engines, not name them directly" >&2
  exit 1
fi

# Bench smoke under a parallel pool: one quick-scale exhibit with
# --jobs 2 must succeed and emit a valid bench_access/5 JSON report,
# byte-identical to the same exhibit at --jobs 1 modulo the wall-time
# fields (run results and order must not depend on the pool width).
smoke_json=$(mktemp)
smoke1_json=$(mktemp)
clean_json=$(mktemp)
chaos_json=$(mktemp)
trap 'rm -f "$smoke_json" "$smoke1_json" "$clean_json" "$chaos_json" ${crash_json:+"$crash_json"} ${kv_json:+"$kv_json"} ${kv_ref_json:+"$kv_ref_json"} ${trace_json:+"$trace_json"} ${traced_run_json:+"$traced_run_json"}' EXIT
dune exec bench/main.exe -- --scale quick --only f3 --jobs 2 \
  --json "$smoke_json" >/dev/null
dune exec bench/main.exe -- --scale quick --only f3 --jobs 1 \
  --json "$smoke1_json" >/dev/null
python3 - "$smoke_json" "$smoke1_json" <<'EOF'
import json, sys

d2 = json.load(open(sys.argv[1]))
d1 = json.load(open(sys.argv[2]))
assert d2["schema"] == "bench_access/6", d2["schema"]
assert d2["jobs"] == 2 and d1["jobs"] == 1, (d2["jobs"], d1["jobs"])
assert len(d2["runs"]) >= 1
assert d2["host_cores"] >= 1 and d2["pool_speedup"] > 0
# /5 crash-recovery fields are present and zero on this crash-free run;
# /6 serving-workload fields are present and zero on this non-KV run.
for r in d2["runs"]:
    assert r["crash"] is False and r["crashes"] == 0, r
    assert r["recovery_time"] == 0.0 and r["ckpt_bytes"] == 0, r
    assert r["kv_ops"] == 0 and r["kv_model_ok"] == 0, r

# Simulation results are deterministic: everything but host-side timing
# must be identical between --jobs 1 and --jobs 2.
timing = ("wall_s", "mcycles_per_s")
strip = lambda r: {k: v for k, v in r.items() if k not in timing}
r1, r2 = [strip(r) for r in d1["runs"]], [strip(r) for r in d2["runs"]]
assert r1 == r2, "bench runs differ between --jobs 1 and --jobs 2"

# Perf smoke: aggregate simulator throughput on this exhibit.  The seed
# tree sustained ~270 Mcycles/s on the reference container; 80 is a
# generous floor that still catches an order-of-magnitude regression in
# the event core without flaking on slow or loaded hosts.
tp = d1["mcycles_per_s"]
assert tp >= 80.0, f"simulator throughput regressed: {tp:.1f} Mcycles/s < 80"
print(f"ci: bench throughput {tp:.1f} Mcycles/s (jobs=1), "
      f"pool_speedup {d2['pool_speedup']:.2f} at jobs=2")
EOF

# Chaos smoke: a seeded 5% drop schedule over the Quick five-app matrix
# on the software-DSM engines (including the timestamp-coherence engine
# mounted via --protocol) must leave every checksum identical to the
# fault-free run, with the reliable layer actually retransmitting.  The
# JSON writer emits one flat line, so grep suffices to extract fields
# without a jq dependency.  $plat expands to multiple words for the
# --protocol rows, so it is deliberately unquoted.
for plat in "treadmarks" "ivy" "treadmarks --protocol tardis"; do
  for app in sor tsp water m-water ilink-clp; do
    dune exec bin/shmsim.exe -- run -a "$app" -p $plat -n 4 \
      --scale quick --json "$clean_json" >/dev/null
    dune exec bin/shmsim.exe -- run -a "$app" -p $plat -n 4 \
      --scale quick --drop 0.05 --fault-seed 1 \
      --json "$chaos_json" >/dev/null
    clean_sum=$(grep -o '"checksum": "[^"]*"' "$clean_json")
    chaos_sum=$(grep -o '"checksum": "[^"]*"' "$chaos_json")
    retrans=$(grep -o '"retrans": [0-9]*' "$chaos_json" | grep -o '[0-9]*$')
    if [ -z "$clean_sum" ] || [ "$clean_sum" != "$chaos_sum" ]; then
      echo "ci: chaos checksum diverged for $app on $plat" >&2
      echo "ci:   clean: $clean_sum" >&2
      echo "ci:   chaos: $chaos_sum" >&2
      exit 1
    fi
    if [ "${retrans:-0}" -eq 0 ]; then
      echo "ci: chaos run for $app on $plat never retransmitted" >&2
      exit 1
    fi
  done
done

# Crash smoke: kill and restart one node mid-run on both SDSM platforms
# (DESIGN.md §13).  The run must complete, recover to the crash-free
# checksum, and report nonzero crash/recovery/checkpoint counters.
crash_json=$(mktemp)
for plat in treadmarks ivy; do
  for app in sor tsp; do
    dune exec bin/shmsim.exe -- run -a "$app" -p "$plat" -n 4 \
      --scale quick --json "$clean_json" >/dev/null
    dune exec bin/shmsim.exe -- run -a "$app" -p "$plat" -n 4 \
      --scale quick --crash 1@500000 --json "$crash_json" >/dev/null
    clean_sum=$(grep -o '"checksum": "[^"]*"' "$clean_json")
    crash_sum=$(grep -o '"checksum": "[^"]*"' "$crash_json")
    crashes=$(grep -o '"crashes": [0-9]*' "$crash_json" | grep -o '[0-9]*$')
    restarts=$(grep -o '"restarts": [0-9]*' "$crash_json" | grep -o '[0-9]*$')
    ckpts=$(grep -o '"ckpts": [0-9]*' "$crash_json" | grep -o '[0-9]*$')
    recov=$(grep -o '"recovery_cycles": [0-9]*' "$crash_json" \
      | grep -o '[0-9]*$')
    if [ -z "$clean_sum" ] || [ "$clean_sum" != "$crash_sum" ]; then
      echo "ci: post-recovery checksum diverged for $app on $plat" >&2
      echo "ci:   clean: $clean_sum" >&2
      echo "ci:   crash: $crash_sum" >&2
      exit 1
    fi
    if [ "${crashes:-0}" -eq 0 ] || [ "${restarts:-0}" -eq 0 ] || \
       [ "${ckpts:-0}" -eq 0 ] || [ "${recov:-0}" -eq 0 ]; then
      echo "ci: crash run for $app on $plat missing recovery activity" \
        "(crashes=${crashes:-0} restarts=${restarts:-0}" \
        "ckpts=${ckpts:-0} recovery_cycles=${recov:-0})" >&2
      exit 1
    fi
  done
done
rm -f "$crash_json"

# KV serving smoke (DESIGN.md §14): the sharded store under the
# open-loop generator must pass its built-in differential check
# ("kv_model_ok": 1 — every recorded get replayed against a sequential
# hash-table model) on both a software DSM and the bus machine.  The
# put-partitioned trace makes the content digest platform-independent,
# so the chaos (5% drop) and crash/restart variants must land on the
# treadmarks run's exact checksum while showing real fault activity.
kv_json=$(mktemp)
kv_ref_json=$(mktemp)
kv_args="run -a kv -n 4 --scale quick --requests 150 --keys 256"
dune exec bin/shmsim.exe -- $kv_args -p treadmarks \
  --json "$kv_ref_json" >/dev/null
kv_ref_sum=$(grep -o '"checksum": "[^"]*"' "$kv_ref_json")
for variant in "-p sgi" "-p treadmarks --drop 0.05 --fault-seed 1" \
               "-p treadmarks --crash 1@500000"; do
  dune exec bin/shmsim.exe -- $kv_args $variant --json "$kv_json" >/dev/null
  model_ok=$(grep -o '"kv_model_ok": [0-9]*' "$kv_json" | grep -o '[0-9]*$')
  kv_sum=$(grep -o '"checksum": "[^"]*"' "$kv_json")
  if [ "${model_ok:-0}" -ne 1 ]; then
    echo "ci: kv differential check failed for '$variant'" >&2
    exit 1
  fi
  if [ -z "$kv_ref_sum" ] || [ "$kv_sum" != "$kv_ref_sum" ]; then
    echo "ci: kv digest diverged for '$variant'" >&2
    echo "ci:   reference: $kv_ref_sum" >&2
    echo "ci:   variant:   $kv_sum" >&2
    exit 1
  fi
  case "$variant" in
  *--drop*)
    retrans=$(grep -o '"retrans": [0-9]*' "$kv_json" | grep -o '[0-9]*$')
    if [ "${retrans:-0}" -eq 0 ]; then
      echo "ci: kv chaos run never retransmitted" >&2
      exit 1
    fi
    ;;
  *--crash*)
    crashes=$(grep -o '"crashes": [0-9]*' "$kv_json" | grep -o '[0-9]*$')
    restarts=$(grep -o '"restarts": [0-9]*' "$kv_json" | grep -o '[0-9]*$')
    if [ "${crashes:-0}" -eq 0 ] || [ "${restarts:-0}" -eq 0 ]; then
      echo "ci: kv crash run missing recovery activity" \
        "(crashes=${crashes:-0} restarts=${restarts:-0})" >&2
      exit 1
    fi
    ;;
  esac
done
rm -f "$kv_json" "$kv_ref_json"

# Tracing smoke: a traced SOR run must produce a valid Chrome-trace file
# (known event kinds, monotonic timestamps — `shmsim trace-check` is the
# self-contained validator) and identical results to the untraced run.
trace_json=$(mktemp)
traced_run_json=$(mktemp)
dune exec bin/shmsim.exe -- run -a sor -p treadmarks -n 4 --scale quick \
  --trace "$trace_json" --json "$traced_run_json" >/dev/null
dune exec bin/shmsim.exe -- trace-check "$trace_json"
dune exec bin/shmsim.exe -- run -a sor -p treadmarks -n 4 --scale quick \
  --json "$clean_json" >/dev/null
if ! cmp -s "$clean_json" "$traced_run_json"; then
  echo "ci: --trace perturbed the sor/treadmarks run" >&2
  diff "$clean_json" "$traced_run_json" >&2 || true
  exit 1
fi
rm -f "$trace_json" "$traced_run_json"

echo "ci: OK"
