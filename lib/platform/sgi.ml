module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Memory = Shm_memsys.Memory
module Snoop = Shm_memsys.Snoop
module Parmacs = Shm_parmacs.Parmacs

let run_on_snoop ?(instrument = Instrument.off) ~platform_name ~clock_mhz
    ~config_of (app : Parmacs.app) ~nprocs =
  let eng = Instrument.engine instrument in
  let counters = Counters.create () in
  let total_words = app.shared_words + Hw_sync.region_words in
  let mem = Memory.create ~words:total_words in
  app.init mem;
  let machine = Snoop.create eng counters mem (config_of ~n_cpus:nprocs) in
  let access =
    {
      Hw_sync.rmw = (fun f ~cpu addr g -> Snoop.rmw machine f ~cpu addr g);
      read = (fun f ~cpu addr -> ignore (Snoop.read machine f ~cpu addr));
    }
  in
  let sync = Hw_sync.create eng access ~base:app.shared_words ~nprocs in
  let ends = Array.make nprocs 0 in
  let fibers =
    Array.init nprocs (fun cpu ->
      Engine.spawn eng ~name:(Printf.sprintf "cpu%d" cpu) ~at:0 (fun f ->
           let fcell = ref 0.0 in
           let ctx =
             {
               Parmacs.id = cpu;
               nprocs;
               read = (fun addr -> Snoop.read machine f ~cpu addr);
               write = (fun addr v -> Snoop.write machine f ~cpu addr v);
               fcell;
               readf =
                 (fun addr ->
                   Snoop.read_timing machine f ~cpu addr;
                   fcell := Memory.get_float mem addr);
               writef =
                 (fun addr ->
                   Snoop.write_timing machine f ~cpu addr;
                   Memory.set_float mem addr !fcell);
               range =
                 Parmacs.range_ops_of_runs ~mem
                   ~read_run:(fun addr words ~f:move ->
                     Snoop.read_range machine f ~cpu addr words ~f:move)
                   ~write_run:(fun addr words ~f:move ->
                     Snoop.write_range machine f ~cpu addr words ~f:move);
               lock = (fun l -> Hw_sync.lock sync f ~cpu l);
               unlock = (fun l -> Hw_sync.unlock sync f ~cpu l);
               barrier = (fun b -> Hw_sync.barrier sync f ~cpu b);
               compute = (fun n -> Engine.advance f n);
             }
           in
           app.work ctx;
           ends.(cpu) <- Engine.clock f))
  in
  Engine.run eng;
  Snoop.check_coherence machine;
  Instrument.finish instrument counters fibers;
  {
    Report.platform = platform_name;
    app = app.name;
    nprocs;
    cycles = Array.fold_left max 0 ends;
    clock_mhz;
    checksum = Parmacs.checksum_of mem app;
    counters = Counters.to_list counters;
  }

let make ?(instrument = Instrument.off) () =
  {
    Platform.name = "sgi-4d480";
    clock_mhz = 40.0;
    max_procs = 8;
    run =
      run_on_snoop ~instrument ~platform_name:"sgi-4d480" ~clock_mhz:40.0
        ~config_of:(fun ~n_cpus -> Snoop.sgi_config ~n_cpus);
  }

(* Paper Section 2.5: "Dual cache tags and a faster bus, relative to the
   speed of the processors, are necessary to overcome the bandwidth
   limitation on the SGI."  This variant doubles the sustained bus
   bandwidth and halves the snoop/upgrade occupancy (dual tags). *)
let make_fast ?(instrument = Instrument.off) () =
  let config_of ~n_cpus =
    let base = Snoop.sgi_config ~n_cpus in
    {
      base with
      Snoop.bus_block_cycles = base.Snoop.bus_block_cycles / 2;
      bus_upgrade_cycles = base.Snoop.bus_upgrade_cycles / 2;
      memory_extra_cycles = base.Snoop.memory_extra_cycles / 2;
    }
  in
  {
    Platform.name = "sgi-fastbus";
    clock_mhz = 40.0;
    max_procs = 8;
    run =
      run_on_snoop ~instrument ~platform_name:"sgi-fastbus" ~clock_mhz:40.0
        ~config_of;
  }
