let make ?protocol ?instrument () =
  Hw_cluster.make ~default_protocol:"mesi" ?protocol ?instrument
    ~name:"sgi-4d480" ~clock_mhz:40.0 ~max_procs:8 ~profile:Shm_proto.Sgi_bus
    ()

(* Paper Section 2.5: "Dual cache tags and a faster bus, relative to the
   speed of the processors, are necessary to overcome the bandwidth
   limitation on the SGI."  The fast profile doubles the sustained bus
   bandwidth and halves the snoop/upgrade occupancy (dual tags). *)
let make_fast ?protocol ?instrument () =
  Hw_cluster.make ~default_protocol:"mesi" ?protocol ?instrument
    ~name:"sgi-fastbus" ~clock_mhz:40.0 ~max_procs:8
    ~profile:Shm_proto.Sgi_bus_fast ()
