module Engine = Shm_sim.Engine
module Waitq = Shm_sim.Waitq
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Snoop = Shm_memsys.Snoop
module Config = Shm_tmk.Config
module System = Shm_tmk.System
module Parmacs = Shm_parmacs.Parmacs

let make ?(node_cpus = 8) ?(overhead = Overhead.treadmarks_user)
    ?(eager = false) ?(instrument = Instrument.off) () =
  let name = Printf.sprintf "HS%d" node_cpus in
  let run (app : Parmacs.app) ~nprocs =
    let n_nodes = (nprocs + node_cpus - 1) / node_cpus in
    let cpus_of_node n = min node_cpus (nprocs - (n * node_cpus)) in
    let eng = Instrument.engine instrument in
    let counters = Counters.create () in
    let fabric =
      Fabric.create eng counters (Fabric.atm_sim ~overhead) ~nodes:n_nodes
    in
    (* Round up to whole pages: twins and diffs work page-at-a-time. *)
    let shared_words = (app.shared_words + 511) / 512 * 512 in
    let image = Memory.create ~words:shared_words in
    app.init image;
    let total_words = shared_words + Hw_sync.region_words in
    let memories =
      Array.init n_nodes (fun _ ->
          let m = Memory.create ~words:total_words in
          Memory.blit ~src:image ~src_pos:0 ~dst:m ~dst_pos:0
            ~len:shared_words;
          m)
    in
    let cfg =
      {
        (Config.default ~n_nodes ~shared_words) with
        eager_locks = (if eager then app.eager_lock_hints else []);
      }
    in
    let sys = System.create eng counters fabric cfg ~memories in
    let machines =
      Array.init n_nodes (fun n ->
          Snoop.create eng counters memories.(n)
            (Snoop.hs_node_config ~n_cpus:(cpus_of_node n)))
    in
    System.set_page_hook sys (fun ~node ~page ->
        Snoop.invalidate_range machines.(node)
          ~addr:(page * cfg.page_words) ~words:cfg.page_words);
    System.start sys;
    (* Hierarchical barriers: an on-node counter in the node's sync region;
       the last processor on the node performs the DSM-level arrival. *)
    let counter_addr b = shared_words + Hw_sync.max_locks + b in
    let gen_addr b =
      shared_words + Hw_sync.max_locks + Hw_sync.max_barriers + b
    in
    let barrier_waitqs =
      Array.init n_nodes (fun _ -> Hashtbl.create 8)
    in
    let waitq_of node b =
      let tbl = barrier_waitqs.(node) in
      match Hashtbl.find_opt tbl b with
      | Some wq -> wq
      | None ->
          let wq = Waitq.create eng in
          Hashtbl.add tbl b wq;
          wq
    in
    let node_barrier f ~node ~cpu b =
      Engine.with_category f Engine.Barrier_wait @@ fun () ->
      let m = machines.(node) in
      let arrived =
        Int64.to_int (Snoop.rmw m f ~cpu (counter_addr b) Int64.succ) + 1
      in
      if arrived = cpus_of_node node then begin
        ignore (Snoop.rmw m f ~cpu (counter_addr b) (fun _ -> 0L));
        System.barrier_arrive sys f ~node ~id:b;
        ignore (Snoop.rmw m f ~cpu (gen_addr b) Int64.succ);
        ignore (Waitq.wake_all (waitq_of node b) ~at:(Engine.clock f))
      end
      else begin
        Waitq.wait f (waitq_of node b);
        ignore (Snoop.read m f ~cpu (gen_addr b))
      end
    in
    let ends = Array.make nprocs 0 in
    let fibers =
      Array.init nprocs (fun p ->
        let node = p / node_cpus in
        let cpu = p mod node_cpus in
        Engine.spawn eng ~name:(Printf.sprintf "n%dc%d" node cpu) ~at:0
           (fun f ->
             let machine = machines.(node) in
             let read addr =
               System.read_guard sys f ~node addr;
               Snoop.read machine f ~cpu addr
             and write addr v =
               (* Bus transaction first (it can yield), the DSM guard
                  second, the store immediately after: a same-node
                  release yielding in between would otherwise close
                  the interval and lose this write from its diff. *)
               Snoop.write_timing machine f ~cpu addr;
               System.write_guard sys f ~node addr;
               Memory.set memories.(node) addr v
             in
             let fcell = ref 0.0 in
             let readf addr =
               System.read_guard sys f ~node addr;
               Snoop.read_timing machine f ~cpu addr;
               fcell := Memory.get_float memories.(node) addr
             and writef addr =
               Snoop.write_timing machine f ~cpu addr;
               System.write_guard sys f ~node addr;
               Memory.set_float memories.(node) addr !fcell
             in
             let ctx =
               {
                 Parmacs.id = p;
                 nprocs;
                 read;
                 write;
                 fcell;
                 readf;
                 writef;
                 (* The snoop-then-guard-then-store interleaving above is
                    too delicate to batch; ranges fall back to the literal
                    per-word loop here. *)
                 range = Parmacs.range_ops_wordwise ~read ~write;
                 lock = (fun l -> System.acquire sys f ~node ~lock:l);
                 unlock = (fun l -> System.release sys f ~node ~lock:l);
                 barrier = (fun b -> node_barrier f ~node ~cpu b);
                 compute = (fun n -> Engine.advance f n);
               }
             in
             app.work ctx;
             ends.(p) <- Engine.clock f))
    in
    (try Engine.run eng
     with Shm_sim.Engine.Deadlock _ as e ->
       if Sys.getenv_opt "TMKDBG_LOCKS" <> None then
         for l = 0 to 7 do
           Printf.eprintf "lock %d: %s\n" l (System.dump_lock sys ~lock:l)
         done;
       raise e);
    Instrument.finish instrument counters fibers;
    {
      Report.platform = name;
      app = app.name;
      nprocs;
      cycles = Array.fold_left max 0 ends;
      clock_mhz = 100.0;
      checksum = Parmacs.checksum_of memories.(0) app;
      counters = Counters.to_list counters;
    }
  in
  { Platform.name; clock_mhz = 100.0; max_procs = 256; run }
