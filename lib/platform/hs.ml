module Engine = Shm_sim.Engine
module Waitq = Shm_sim.Waitq
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Parmacs = Shm_parmacs.Parmacs

let page_words = 512

let make ?(node_cpus = 8) ?(overhead = Overhead.treadmarks_user)
    ?(eager = false) ?(protocol = "lrc") ?(instrument = Instrument.off) () =
  let name =
    if protocol = "lrc" then Printf.sprintf "HS%d" node_cpus
    else Printf.sprintf "HS%d+%s" node_cpus protocol
  in
  let (module E : Shm_proto.ENGINE) = Shm_engines.get protocol in
  (match E.kind with
  | Shm_proto.Sdsm -> ()
  | Shm_proto.Hw ->
      invalid_arg
        (Printf.sprintf
           "platform %S runs a software-DSM protocol between its \
            hardware-coherent nodes; protocol %S is a hardware \
            cache-coherence engine (mount it on one of: sgi, sgi-fast, ah)"
           name E.name));
  let (module Node_eng : Shm_proto.ENGINE) = Shm_engines.get "mesi" in
  let run (app : Parmacs.app) ~nprocs =
    let n_nodes = (nprocs + node_cpus - 1) / node_cpus in
    let cpus_of_node n = min node_cpus (nprocs - (n * node_cpus)) in
    let eng = Instrument.engine instrument in
    let counters = Counters.create () in
    (* Round up to whole pages: twins and diffs work page-at-a-time. *)
    let shared_words = (app.shared_words + 511) / 512 * 512 in
    let image = Memory.create ~words:shared_words in
    app.init image;
    let total_words = shared_words + Shm_memsys.Hw_sync.region_words in
    let memories =
      Array.init n_nodes (fun _ ->
          let m = Memory.create ~words:total_words in
          Memory.blit ~src:image ~src_pos:0 ~dst:m ~dst_pos:0
            ~len:shared_words;
          m)
    in
    let dsm =
      E.mount
        {
          Shm_proto.eng;
          counters;
          fabric = Fabric.atm_sim ~overhead;
          nodes = n_nodes;
          page_words;
          shared_words;
          memories;
          eager_lock_hints = (if eager then app.eager_lock_hints else []);
          hw_profile = None;
          lifecycle = None;
        }
    in
    let node_insts =
      Array.init n_nodes (fun n ->
          Node_eng.mount
            {
              Shm_proto.eng;
              counters;
              fabric = Fabric.crossbar_sim (* unused: the node bus is wired *);
              nodes = cpus_of_node n;
              page_words;
              shared_words;
              memories = [| memories.(n) |];
              eager_lock_hints = [];
              hw_profile = Some Shm_proto.Hs_node_bus;
              lifecycle = None;
            })
    in
    dsm.Shm_proto.set_page_hook (fun ~node ~page ->
        (Option.get node_insts.(node).Shm_proto.invalidate_range)
          ~addr:(page * page_words) ~words:page_words);
    dsm.Shm_proto.start ();
    (* Hierarchical barriers: an on-node counter in the node's sync region;
       the last processor on the node performs the DSM-level arrival. *)
    let counter_addr b = shared_words + Shm_memsys.Hw_sync.max_locks + b in
    let gen_addr b =
      shared_words + Shm_memsys.Hw_sync.max_locks
      + Shm_memsys.Hw_sync.max_barriers + b
    in
    let barrier_waitqs =
      Array.init n_nodes (fun _ -> Hashtbl.create 8)
    in
    let waitq_of node b =
      let tbl = barrier_waitqs.(node) in
      match Hashtbl.find_opt tbl b with
      | Some wq -> wq
      | None ->
          let wq = Waitq.create eng in
          Hashtbl.add tbl b wq;
          wq
    in
    let node_rmw n = Option.get node_insts.(n).Shm_proto.rmw in
    let node_barrier f ~node ~cpu b =
      Engine.with_category f Engine.Barrier_wait @@ fun () ->
      let rmw = node_rmw node in
      let arrived =
        Int64.to_int (rmw f ~node:cpu (counter_addr b) Int64.succ) + 1
      in
      if arrived = cpus_of_node node then begin
        ignore (rmw f ~node:cpu (counter_addr b) (fun _ -> 0L));
        dsm.Shm_proto.barrier_arrive f ~node ~id:b;
        ignore (rmw f ~node:cpu (gen_addr b) Int64.succ);
        ignore (Waitq.wake_all (waitq_of node b) ~at:(Engine.clock f))
      end
      else begin
        Waitq.wait f (waitq_of node b);
        node_insts.(node).Shm_proto.read_guard f ~node:cpu (gen_addr b)
      end
    in
    let ends = Array.make nprocs 0 in
    let fibers =
      Array.init nprocs (fun p ->
        let node = p / node_cpus in
        let cpu = p mod node_cpus in
        Engine.spawn eng ~name:(Printf.sprintf "n%dc%d" node cpu) ~at:0
           (fun f ->
             let bus = node_insts.(node) in
             let read addr =
               dsm.Shm_proto.read_guard f ~node addr;
               bus.Shm_proto.read_guard f ~node:cpu addr;
               Memory.get memories.(node) addr
             and write addr v =
               (* Bus transaction first (it can yield), the DSM guard
                  second, the store immediately after: a same-node
                  release yielding in between would otherwise close
                  the interval and lose this write from its diff. *)
               bus.Shm_proto.write_guard f ~node:cpu addr;
               dsm.Shm_proto.write_guard f ~node addr;
               Memory.set memories.(node) addr v
             in
             let fcell = ref 0.0 in
             let readf addr =
               dsm.Shm_proto.read_guard f ~node addr;
               bus.Shm_proto.read_guard f ~node:cpu addr;
               fcell := Memory.get_float memories.(node) addr
             and writef addr =
               bus.Shm_proto.write_guard f ~node:cpu addr;
               dsm.Shm_proto.write_guard f ~node addr;
               Memory.set_float memories.(node) addr !fcell
             in
             let icell = ref 0 in
             let readi addr =
               dsm.Shm_proto.read_guard f ~node addr;
               bus.Shm_proto.read_guard f ~node:cpu addr;
               icell := Memory.get_int memories.(node) addr
             and writei addr =
               bus.Shm_proto.write_guard f ~node:cpu addr;
               dsm.Shm_proto.write_guard f ~node addr;
               Memory.set_int memories.(node) addr !icell
             in
             let ctx =
               {
                 Parmacs.id = p;
                 nprocs;
                 read;
                 write;
                 fcell;
                 readf;
                 writef;
                 icell;
                 readi;
                 writei;
                 (* The snoop-then-guard-then-store interleaving above is
                    too delicate to batch; ranges fall back to the literal
                    per-word loop here. *)
                 range = Parmacs.range_ops_wordwise ~read ~write;
                 lock = (fun l -> dsm.Shm_proto.acquire f ~node ~lock:l);
                 unlock = (fun l -> dsm.Shm_proto.release f ~node ~lock:l);
                 barrier = (fun b -> node_barrier f ~node ~cpu b);
                 compute = (fun n -> Engine.advance f n);
                 clock = (fun () -> Engine.clock f);
               }
             in
             app.work ctx;
             ends.(p) <- Engine.clock f))
    in
    (try Engine.run eng
     with Shm_sim.Engine.Deadlock _ as e ->
       (match (Sys.getenv_opt "TMKDBG_LOCKS", dsm.Shm_proto.dump_lock) with
       | Some _, Some dump ->
           for l = 0 to 7 do
             Printf.eprintf "lock %d: %s\n" l (dump ~lock:l)
           done
       | _ -> ());
       raise e);
    Instrument.finish instrument counters fibers;
    List.iter (fun (k, v) -> Counters.add counters k v) (app.stats ());
    {
      Report.platform = name;
      app = app.name;
      nprocs;
      cycles = Array.fold_left max 0 ends;
      clock_mhz = 100.0;
      checksum = Parmacs.checksum_of memories.(0) app;
      counters = Counters.to_list counters;
    }
  in
  { Platform.name; clock_mhz = 100.0; max_procs = 256; run }
