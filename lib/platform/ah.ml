module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Memory = Shm_memsys.Memory
module Directory = Shm_memsys.Directory
module Parmacs = Shm_parmacs.Parmacs

let make ?(instrument = Instrument.off) () =
  let run (app : Parmacs.app) ~nprocs =
    let eng = Instrument.engine instrument in
    let counters = Counters.create () in
    let total_words = app.shared_words + Hw_sync.region_words in
    let mem = Memory.create ~words:total_words in
    app.init mem;
    let machine =
      Directory.create eng counters mem (Directory.sim_config ~n_nodes:nprocs)
    in
    let access =
      {
        Hw_sync.rmw =
          (fun f ~cpu addr g -> Directory.rmw machine f ~node:cpu addr g);
        read =
          (fun f ~cpu addr -> ignore (Directory.read machine f ~node:cpu addr));
      }
    in
    let sync = Hw_sync.create eng access ~base:app.shared_words ~nprocs in
    let ends = Array.make nprocs 0 in
    let fibers =
      Array.init nprocs (fun cpu ->
        Engine.spawn eng ~name:(Printf.sprintf "cpu%d" cpu) ~at:0 (fun f ->
             let fcell = ref 0.0 in
             let ctx =
               {
                 Parmacs.id = cpu;
                 nprocs;
                 read = (fun addr -> Directory.read machine f ~node:cpu addr);
                 write =
                   (fun addr v -> Directory.write machine f ~node:cpu addr v);
                 fcell;
                 readf =
                   (fun addr ->
                     Directory.read_timing machine f ~node:cpu addr;
                     fcell := Memory.get_float mem addr);
                 writef =
                   (fun addr ->
                     Directory.write_timing machine f ~node:cpu addr;
                     Memory.set_float mem addr !fcell);
                 range =
                   Parmacs.range_ops_of_runs ~mem
                     ~read_run:(fun addr words ~f:move ->
                       Directory.read_range machine f ~node:cpu addr words
                         ~f:move)
                     ~write_run:(fun addr words ~f:move ->
                       Directory.write_range machine f ~node:cpu addr words
                         ~f:move);
                 lock = (fun l -> Hw_sync.lock sync f ~cpu l);
                 unlock = (fun l -> Hw_sync.unlock sync f ~cpu l);
                 barrier = (fun b -> Hw_sync.barrier sync f ~cpu b);
                 compute = (fun n -> Engine.advance f n);
               }
             in
             app.work ctx;
             ends.(cpu) <- Engine.clock f))
    in
    Engine.run eng;
    Directory.check_invariants machine;
    Instrument.finish instrument counters fibers;
    {
      Report.platform = "AH";
      app = app.name;
      nprocs;
      cycles = Array.fold_left max 0 ends;
      clock_mhz = 100.0;
      checksum = Parmacs.checksum_of mem app;
      counters = Counters.to_list counters;
    }
  in
  { Platform.name = "AH"; clock_mhz = 100.0; max_procs = 256; run }
