let make ?protocol ?instrument () =
  Hw_cluster.make ~default_protocol:"directory" ?protocol ?instrument
    ~name:"AH" ~clock_mhz:100.0 ~max_procs:256 ~profile:Shm_proto.Crossbar ()
