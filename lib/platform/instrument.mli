(** Per-run instrumentation selector threaded through platform
    constructors ([?instrument], default {!off}).

    [breakdown] turns on per-fiber execution-time attribution (surfaced as
    ["time.<category>"] counters in the run report); [trace] additionally
    streams segments and instant events into a {!Shm_sim.Trace} buffer for
    Chrome-trace export.  With {!off} the engine is uninstrumented and runs
    are byte-identical to an uninstrumented build. *)

type t = { breakdown : bool; trace : Shm_sim.Trace.t option }

val off : t
val breakdown_only : t
val with_trace : Shm_sim.Trace.t -> t

val active : t -> bool

(** [engine t] is the [Engine.create] call matching this selector. *)
val engine : t -> Shm_sim.Engine.t

(** [finish t counters fibers] runs [Engine.check_attribution] on each
    fiber (the sum invariant) and accumulates ["time.*"] counters — all
    categories, zeros included — aggregated over [fibers].  No-op when
    [not (active t)].
    @raise Failure if any fiber's category totals do not sum to its
    elapsed clock. *)
val finish : t -> Shm_stats.Counters.t -> Shm_sim.Engine.fiber array -> unit
