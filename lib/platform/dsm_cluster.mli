(** DSM platforms: TreadMarks over an ATM LAN.

    Two incarnations:
    - [dec ~level]: the paper's experimental platform — DECstation-5000/240
      workstations (40 MHz), with TreadMarks either at user level or moved
      inside the Ultrix kernel (Section 2.4.4);
    - [as_machine ~overhead]: the Section-3 "All Software" design — 100 MHz
      uniprocessor nodes, with the messaging overhead swept for
      Figures 14-15;
    plus [dec_plain], a single DECstation without TreadMarks (the baseline
    column of Table 1). *)

type level = User | Kernel

(** [eager] honours the app's eager-release lock hints (TSP bound);
    [notice_policy] selects lazy (TreadMarks) or eager-invalidate
    (conventional RC) write-notice propagation; [faults] arms network
    fault injection on the ATM fabric (the DSM then runs over
    {!Shm_net.Reliable}); [max_cycles] bounds the run with
    {!Shm_sim.Engine.Watchdog} — fault-mode runs default to a generous
    backstop so a retransmission livelock cannot hang forever;
    [instrument] enables the per-fiber time breakdown (and optional
    Chrome-trace capture) — when left at {!Instrument.off} the run is
    byte-identical to an uninstrumented one. *)
val dec :
  ?eager:bool ->
  ?notice_policy:Shm_tmk.Config.notice_policy ->
  ?faults:Shm_net.Fabric.faults ->
  ?max_cycles:int ->
  ?instrument:Instrument.t ->
  level:level ->
  unit ->
  Platform.t

val as_machine :
  ?eager:bool ->
  ?overhead:Shm_net.Overhead.t ->
  ?faults:Shm_net.Fabric.faults ->
  ?max_cycles:int ->
  ?instrument:Instrument.t ->
  unit ->
  Platform.t

(** Plain DECstation: valid only for [nprocs = 1]. *)
val dec_plain : ?instrument:Instrument.t -> unit -> Platform.t
