(** Software-DSM platforms: a cluster of nodes with private memories kept
    coherent by a mounted {!Shm_proto.ENGINE} over a message fabric.

    Two named incarnations:
    - [dec ~level]: the paper's experimental platform — DECstation-5000/240
      workstations (40 MHz) on an ATM LAN, with the DSM layer either at
      user level or moved inside the Ultrix kernel (Section 2.4.4);
    - [as_machine ~overhead]: the Section-3 "All Software" design — 100 MHz
      uniprocessor nodes, with the messaging overhead swept for
      Figures 14-15;
    plus [dec_plain], a single DECstation without any DSM (the baseline
    column of Table 1), and [make], the generic engine-mounted runner the
    named machines (and {!Ivy_cluster}) are built from. *)

type level = User | Kernel

(** [make ~engine ...] builds a cluster platform around a software-DSM
    coherence engine.  @raise Invalid_argument if [engine] is a hardware
    engine. *)
val make :
  engine:(module Shm_proto.ENGINE) ->
  ?faults:Shm_net.Fabric.faults ->
  ?crash:Shm_sim.Lifecycle.policy ->
  ?max_cycles:int ->
  ?instrument:Instrument.t ->
  name:string ->
  clock_mhz:float ->
  max_procs:int ->
  fabric_of:(unit -> Shm_net.Fabric.config) ->
  cache_cfg:Shm_memsys.Private_cache.config ->
  eager:bool ->
  unit ->
  Platform.t

(** [eager] honours the app's eager-release lock hints (TSP bound);
    [protocol] names the coherence engine to mount (default ["lrc"],
    TreadMarks; ["erc"] reproduces the old eager-invalidate variant,
    ["eager-lrc"], ["ivy"] and ["tardis"] are the other software
    engines); [faults] arms network fault injection on the ATM fabric
    (the DSM then runs over {!Shm_net.Reliable}); [max_cycles] bounds the
    run with {!Shm_sim.Engine.Watchdog} — fault-mode runs default to a
    generous backstop so a retransmission livelock cannot hang forever;
    [instrument] enables the per-fiber time breakdown (and optional
    Chrome-trace capture) — when left at {!Instrument.off} the run is
    byte-identical to an uninstrumented one; [crash] arms whole-node
    crash/restart injection with failure-atomic recovery (DESIGN.md §13)
    — processors of a down node park at their next shared access and
    the engine checkpoints, re-homes managers and replays on rejoin.
    An inactive [crash] policy constructs nothing. *)
val dec :
  ?eager:bool ->
  ?protocol:string ->
  ?faults:Shm_net.Fabric.faults ->
  ?crash:Shm_sim.Lifecycle.policy ->
  ?max_cycles:int ->
  ?instrument:Instrument.t ->
  level:level ->
  unit ->
  Platform.t

val as_machine :
  ?eager:bool ->
  ?protocol:string ->
  ?overhead:Shm_net.Overhead.t ->
  ?faults:Shm_net.Fabric.faults ->
  ?crash:Shm_sim.Lifecycle.policy ->
  ?max_cycles:int ->
  ?instrument:Instrument.t ->
  unit ->
  Platform.t

(** Plain DECstation: valid only for [nprocs = 1]. *)
val dec_plain : ?instrument:Instrument.t -> unit -> Platform.t
