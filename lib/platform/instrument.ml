module Engine = Shm_sim.Engine
module Trace = Shm_sim.Trace
module Counters = Shm_stats.Counters

type t = { breakdown : bool; trace : Trace.t option }

let off = { breakdown = false; trace = None }
let breakdown_only = { breakdown = true; trace = None }
let with_trace tr = { breakdown = true; trace = Some tr }

let active t = t.breakdown || t.trace <> None

let engine t =
  Engine.create ~instrument:(active t)
    ?tracer:(Option.map Trace.tracer t.trace)
    ()

(* Post-run hook for platform drivers: verify the attribution invariant on
   every application fiber and fold the per-category totals into ["time.*"]
   counters.  All categories are emitted (zeros included) so consumers can
   rely on the full name set; daemon fibers (protocol handlers,
   retransmission timers) are checked by the engine-level tests but excluded
   from the aggregate, which covers processor time like the paper's
   breakdowns.  A no-op when instrumentation is off, keeping counter output
   byte-identical. *)
let finish t counters fibers =
  if active t then
    Array.iter
      (fun f ->
        Engine.check_attribution f;
        List.iter
          (fun (cat, cycles) ->
            Counters.add counters ("time." ^ Engine.category_name cat) cycles)
          (Engine.breakdown f))
      fibers
