(** Named platform instances shared by the CLI, examples and benches. *)

(** Canonical names: ["dec"], ["treadmarks"], ["treadmarks-kernel"],
    ["treadmarks-eager"], ["treadmarks-erc"], ["ivy"], ["sgi"],
    ["sgi-fast"], ["as"], ["ah"], ["hs"]. *)
val names : string list

(** Platforms that accept an active fault policy (software DSM over the
    unreliable ATM fabric). *)
val fault_capable : string list

(** Platforms that accept an active crash policy — whole-node
    crash/restart injection with checkpoint-based recovery (DESIGN.md
    §13).  Currently equal to {!fault_capable}; the Tardis engine
    additionally refuses to mount under a crash policy on any of them. *)
val crash_capable : string list

(** Registered coherence-engine names, mountable with [get ?protocol]
    (= {!Shm_engines.names}). *)
val protocols : string list

(** [get ?faults ?max_cycles name] builds the platform.  [faults] arms
    network fault injection; [crash] arms whole-node crash/restart
    injection with failure-atomic checkpoints and online recovery
    (DESIGN.md §13); [max_cycles] bounds each run with
    {!Shm_sim.Engine.Watchdog} (fault- and crash-mode runs get a generous
    default backstop).  All three are only meaningful on {!fault_capable}
    / {!crash_capable} platforms — the hardware platforms model reliable
    machines and refuse an active policy.  [protocol] overrides the
    coherence engine the machine mounts (see {!protocols}); machines
    refuse engines of the wrong kind (a hardware engine on a
    message-passing cluster and vice versa), and ["dec"] — a uniprocessor
    — refuses all of them.  [instrument] enables the per-fiber time
    breakdown and optional Chrome-trace capture on any platform (see
    {!Instrument}).
    @raise Invalid_argument for an unknown name, an active fault or crash
    policy on a hardware platform, or an invalid machine x protocol
    combination. *)
val get :
  ?faults:Shm_net.Fabric.faults ->
  ?crash:Shm_sim.Lifecycle.policy ->
  ?max_cycles:int ->
  ?instrument:Instrument.t ->
  ?protocol:string ->
  string ->
  Platform.t
