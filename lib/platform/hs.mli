(** The "Hardware-Software" design of paper Section 3: bus-based
    multiprocessor nodes (snooping coherence inside a node) connected by a
    general-purpose network running a software-DSM protocol between nodes.

    The DSM layer treats each node as one unit: faults merge, co-located
    processors' modifications coalesce into one diff, barriers are
    hierarchical (on-node counter, one arrival message per node), and a
    lock whose token is on-node is acquired without messages.

    [protocol] selects the inter-node engine (default ["lrc"]; any
    software-DSM engine mounts — hardware engines are refused). *)

val make :
  ?node_cpus:int ->
  ?overhead:Shm_net.Overhead.t ->
  ?eager:bool ->
  ?protocol:string ->
  ?instrument:Instrument.t ->
  unit ->
  Platform.t
