module Engine = Shm_sim.Engine
module Lifecycle = Shm_sim.Lifecycle
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Private_cache = Shm_memsys.Private_cache
module Parmacs = Shm_parmacs.Parmacs

type level = User | Kernel

let page_words = 512

(* Backstop for fault-mode runs with no explicit --max-cycles: generous
   enough for any paper-scale run (~1e10 cycles), small enough that a
   retransmission livelock surfaces as Engine.Watchdog instead of an
   apparent hang. *)
let default_fault_watchdog = 200_000_000_000

(* The generic software-DSM cluster: one memory per node, a message
   fabric between them, and whichever coherence engine the caller
   mounts.  Everything protocol-specific is behind the engine instance;
   this runner owns the machine (fabric timing, private caches, the
   software-TLB fast path, the processor fibers). *)
let make ~engine:(module E : Shm_proto.ENGINE) ?(faults = Fabric.no_faults)
    ?(crash = Lifecycle.none) ?max_cycles ?(instrument = Instrument.off) ~name
    ~clock_mhz ~max_procs ~fabric_of ~cache_cfg ~eager () =
  (match E.kind with
  | Shm_proto.Sdsm -> ()
  | Shm_proto.Hw ->
      invalid_arg
        (Printf.sprintf
           "platform %S is a software-DSM cluster; protocol %S is a hardware \
            cache-coherence engine (mount it on one of: sgi, sgi-fast, ah)"
           name E.name));
  let run (app : Parmacs.app) ~nprocs =
    let eng = Instrument.engine instrument in
    let counters = Counters.create () in
    (* Crash-free runs never construct a lifecycle: every code path below
       is then byte-identical to the pre-crash-layer platform. *)
    let lifecycle =
      if Lifecycle.active crash then
        Some (Lifecycle.create eng counters crash ~nodes:nprocs)
      else None
    in
    (* Round up to whole pages: the engines work page-at-a-time. *)
    let shared_words = (app.shared_words + page_words - 1) / page_words * page_words in
    let image = Memory.create ~words:shared_words in
    app.init image;
    let memories =
      Array.init nprocs (fun _ ->
          let m = Memory.create ~words:shared_words in
          Memory.copy_all ~src:image ~dst:m;
          m)
    in
    let inst =
      E.mount
        {
          Shm_proto.eng;
          counters;
          fabric = { (fabric_of ()) with Fabric.faults };
          nodes = nprocs;
          page_words;
          shared_words;
          memories;
          eager_lock_hints = (if eager then app.eager_lock_hints else []);
          hw_profile = None;
          lifecycle;
        }
    in
    let caches = Array.init nprocs (fun _ -> Private_cache.create cache_cfg) in
    inst.Shm_proto.set_page_hook (fun ~node ~page ->
        Private_cache.invalidate_range caches.(node) ~addr:(page * page_words)
          ~words:page_words);
    inst.Shm_proto.start ();
    let rights_of =
      match inst.Shm_proto.access_rights with
      | Some f -> f
      | None ->
          invalid_arg
            (Printf.sprintf
               "platform %S: engine %S provides no page table for the \
                software-TLB fast path"
               name E.name)
    in
    let ends = Array.make nprocs 0 in
    let fibers =
      Array.init nprocs (fun node ->
        Engine.spawn eng ~name:(Printf.sprintf "cpu%d" node) ~at:0 (fun f ->
             let mem = memories.(node) and pc = caches.(node) in
             (* Software-TLB fast path: one byte load decides whether the
                guard call can be skipped (page readable / writable with
                the twin in place).  The engine keeps the byte current on
                every transition, so the fast path is exactly the guard's
                no-op branch. *)
             let rights = rights_of ~node in
             let shift = inst.Shm_proto.page_shift in
             assert (shift >= 0);
             let read addr =
               if Bytes.unsafe_get rights (addr lsr shift) = '\000' then
                 inst.Shm_proto.read_guard f ~node addr;
               Private_cache.read pc f addr;
               Memory.get mem addr
             and write addr v =
               if Bytes.unsafe_get rights (addr lsr shift) <> '\002' then
                 inst.Shm_proto.write_guard f ~node addr;
               Private_cache.write pc f addr;
               Memory.set mem addr v
             in
             let fcell = ref 0.0 in
             let readf addr =
               if Bytes.unsafe_get rights (addr lsr shift) = '\000' then
                 inst.Shm_proto.read_guard f ~node addr;
               Private_cache.read pc f addr;
               fcell := Memory.get_float mem addr
             and writef addr =
               if Bytes.unsafe_get rights (addr lsr shift) <> '\002' then
                 inst.Shm_proto.write_guard f ~node addr;
               Private_cache.write pc f addr;
               Memory.set_float mem addr !fcell
             in
             let icell = ref 0 in
             let readi addr =
               if Bytes.unsafe_get rights (addr lsr shift) = '\000' then
                 inst.Shm_proto.read_guard f ~node addr;
               Private_cache.read pc f addr;
               icell := Memory.get_int mem addr
             and writei addr =
               if Bytes.unsafe_get rights (addr lsr shift) <> '\002' then
                 inst.Shm_proto.write_guard f ~node addr;
               Private_cache.write pc f addr;
               Memory.set_int mem addr !icell
             in
             let range =
               if inst.Shm_proto.wordwise_ranges then
                 Parmacs.range_ops_wordwise ~read ~write
               else
                 Parmacs.range_ops_of_runs ~mem
                   ~read_run:(fun addr words ~f:move ->
                     inst.Shm_proto.read_range_guard f ~node addr words
                       ~f:(fun p l ->
                         Private_cache.read_range pc f p l;
                         move p l))
                   ~write_run:(fun addr words ~f:move ->
                     inst.Shm_proto.write_range_guard f ~node addr words
                       ~f:(fun p l ->
                         Private_cache.write_range pc f p l;
                         move p l))
             in
             let ctx =
               {
                 Parmacs.id = node;
                 nprocs;
                 read;
                 write;
                 fcell;
                 readf;
                 writef;
                 icell;
                 readi;
                 writei;
                 range;
                 lock = (fun l -> inst.Shm_proto.acquire f ~node ~lock:l);
                 unlock = (fun l -> inst.Shm_proto.release f ~node ~lock:l);
                 barrier = (fun b -> inst.Shm_proto.barrier_arrive f ~node ~id:b);
                 compute = (fun n -> Engine.advance f n);
                 clock = (fun () -> Engine.clock f);
               }
             in
             (* With a crash policy armed, every shared-memory and
                synchronization operation first gates on the node's
                liveness: a crashed node's processors park at their next
                shared access (the failure-atomicity boundary) and resume
                at the restart cycle, after the engine's rejoin hooks
                ran.  The [None] arm reuses [ctx] untouched, so the hot
                paths of crash-free runs are the exact closures above. *)
             let ctx =
               match lifecycle with
               | None -> ctx
               | Some lc ->
                   let g () = Lifecycle.gate lc f ~node in
                   let range =
                     if inst.Shm_proto.wordwise_ranges then
                       Parmacs.range_ops_wordwise
                         ~read:(fun addr ->
                           g ();
                           read addr)
                         ~write:(fun addr v ->
                           g ();
                           write addr v)
                     else
                       Parmacs.range_ops_of_runs ~mem
                         ~read_run:(fun addr words ~f:move ->
                           g ();
                           inst.Shm_proto.read_range_guard f ~node addr words
                             ~f:(fun p l ->
                               Private_cache.read_range pc f p l;
                               move p l))
                         ~write_run:(fun addr words ~f:move ->
                           g ();
                           inst.Shm_proto.write_range_guard f ~node addr words
                             ~f:(fun p l ->
                               Private_cache.write_range pc f p l;
                               move p l))
                   in
                   {
                     ctx with
                     Parmacs.read =
                       (fun addr ->
                         g ();
                         read addr);
                     write =
                       (fun addr v ->
                         g ();
                         write addr v);
                     readf =
                       (fun addr ->
                         g ();
                         readf addr);
                     writef =
                       (fun addr ->
                         g ();
                         writef addr);
                     readi =
                       (fun addr ->
                         g ();
                         readi addr);
                     writei =
                       (fun addr ->
                         g ();
                         writei addr);
                     range;
                     lock =
                       (fun l ->
                         g ();
                         inst.Shm_proto.acquire f ~node ~lock:l);
                     unlock =
                       (fun l ->
                         g ();
                         inst.Shm_proto.release f ~node ~lock:l);
                     barrier =
                       (fun b ->
                         g ();
                         inst.Shm_proto.barrier_arrive f ~node ~id:b);
                   }
             in
             app.work ctx;
             ends.(node) <- Engine.clock f))
    in
    Option.iter Lifecycle.start lifecycle;
    let max_cycles =
      match max_cycles with
      | Some _ -> max_cycles
      | None ->
          if Fabric.faults_active faults || lifecycle <> None then
            Some default_fault_watchdog
          else None
    in
    (* Diagnostics distinguish "blocked on a crashed peer" from a genuine
       deadlock: the lifecycle's liveness note rides along with the
       pending-retransmission summary in every blocked-fiber report. *)
    let diag () =
      let base = inst.Shm_proto.retx_note () in
      match lifecycle with
      | None -> base
      | Some lc ->
          let ln = Lifecycle.note lc in
          if base = "" then ln else base ^ "; " ^ ln
    in
    Engine.run ?max_cycles ~diag eng;
    inst.Shm_proto.check_invariants ();
    Instrument.finish instrument counters fibers;
    List.iter (fun (k, v) -> Counters.add counters k v) (app.stats ());
    {
      Report.platform = name;
      app = app.name;
      nprocs;
      cycles = Array.fold_left max 0 ends;
      clock_mhz;
      checksum = Parmacs.checksum_of memories.(0) app;
      counters = Counters.to_list counters;
    }
  in
  { Platform.name; clock_mhz; max_procs; run }

let dec ?(eager = false) ?(protocol = "lrc") ?faults ?crash ?max_cycles
    ?instrument ~level () =
  let overhead, suffix =
    match level with
    | User -> (Overhead.treadmarks_user, "user")
    | Kernel -> (Overhead.treadmarks_kernel, "kernel")
  in
  let name =
    match protocol with
    | "lrc" -> Printf.sprintf "treadmarks-%s" suffix
    | "erc" -> "treadmarks-erc"
    | p -> Printf.sprintf "treadmarks-%s+%s" suffix p
  in
  make ~engine:(Shm_engines.get protocol) ?faults ?crash ?max_cycles
    ?instrument ~name ~clock_mhz:40.0 ~max_procs:8
    ~fabric_of:(fun () -> Fabric.atm_dec ~overhead)
    ~cache_cfg:Private_cache.dec_config ~eager ()

let as_machine ?(eager = false) ?(protocol = "lrc")
    ?(overhead = Overhead.treadmarks_user) ?faults ?crash ?max_cycles
    ?instrument () =
  let name = if protocol = "lrc" then "AS" else "AS+" ^ protocol in
  make ~engine:(Shm_engines.get protocol) ?faults ?crash ?max_cycles
    ?instrument ~name ~clock_mhz:100.0 ~max_procs:256
    ~fabric_of:(fun () -> Fabric.atm_sim ~overhead)
    ~cache_cfg:Private_cache.sim_node_config ~eager ()

let dec_plain ?(instrument = Instrument.off) () =
  let run (app : Parmacs.app) ~nprocs =
    if nprocs <> 1 then invalid_arg "dec_plain: uniprocessor only";
    let eng = Instrument.engine instrument in
    let counters = Counters.create () in
    let mem = Memory.create ~words:app.shared_words in
    app.init mem;
    let cache = Private_cache.create Private_cache.dec_config in
    let finish = ref 0 in
    let fiber =
      Engine.spawn eng ~name:"cpu0" ~at:0 (fun f ->
           let fcell = ref 0.0 in
           let icell = ref 0 in
           let ctx =
             {
               Parmacs.id = 0;
               nprocs = 1;
               read =
                 (fun addr ->
                   Private_cache.read cache f addr;
                   Memory.get mem addr);
               write =
                 (fun addr v ->
                   Private_cache.write cache f addr;
                   Memory.set mem addr v);
               fcell;
               readf =
                 (fun addr ->
                   Private_cache.read cache f addr;
                   fcell := Memory.get_float mem addr);
               writef =
                 (fun addr ->
                   Private_cache.write cache f addr;
                   Memory.set_float mem addr !fcell);
               icell;
               readi =
                 (fun addr ->
                   Private_cache.read cache f addr;
                   icell := Memory.get_int mem addr);
               writei =
                 (fun addr ->
                   Private_cache.write cache f addr;
                   Memory.set_int mem addr !icell);
               range =
                 Parmacs.range_ops_of_runs ~mem
                   ~read_run:(fun addr words ~f:move ->
                     Private_cache.read_range cache f addr words;
                     move addr words)
                   ~write_run:(fun addr words ~f:move ->
                     Private_cache.write_range cache f addr words;
                     move addr words);
               lock = ignore;
               unlock = ignore;
               barrier = ignore;
               compute = (fun n -> Engine.advance f n);
               clock = (fun () -> Engine.clock f);
             }
           in
           app.work ctx;
           finish := Engine.clock f)
    in
    Engine.run eng;
    Instrument.finish instrument counters [| fiber |];
    List.iter (fun (k, v) -> Counters.add counters k v) (app.stats ());
    {
      Report.platform = "dec";
      app = app.name;
      nprocs = 1;
      cycles = !finish;
      clock_mhz = 40.0;
      checksum = Parmacs.checksum_of mem app;
      counters = Counters.to_list counters;
    }
  in
  { Platform.name = "dec"; clock_mhz = 40.0; max_procs = 1; run }
