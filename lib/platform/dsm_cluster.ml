module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Private_cache = Shm_memsys.Private_cache
module Config = Shm_tmk.Config
module System = Shm_tmk.System
module Parmacs = Shm_parmacs.Parmacs

type level = User | Kernel

(* Backstop for fault-mode runs with no explicit --max-cycles: generous
   enough for any paper-scale run (~1e10 cycles), small enough that a
   retransmission livelock surfaces as Engine.Watchdog instead of an
   apparent hang. *)
let default_fault_watchdog = 200_000_000_000

let make ?(notice_policy = Config.Lazy) ?(faults = Fabric.no_faults)
    ?max_cycles ?(instrument = Instrument.off) ~name ~clock_mhz ~max_procs
    ~fabric_of ~cache_cfg ~eager () =
  let run (app : Parmacs.app) ~nprocs =
    let eng = Instrument.engine instrument in
    let counters = Counters.create () in
    let fabric =
      Fabric.create eng counters
        { (fabric_of ()) with Fabric.faults }
        ~nodes:nprocs
    in
    (* Round up to whole pages: twins and diffs work page-at-a-time. *)
    let shared_words = (app.shared_words + 511) / 512 * 512 in
    let image = Memory.create ~words:shared_words in
    app.init image;
    let memories =
      Array.init nprocs (fun _ ->
          let m = Memory.create ~words:shared_words in
          Memory.copy_all ~src:image ~dst:m;
          m)
    in
    let cfg =
      {
        (Config.default ~n_nodes:nprocs ~shared_words) with
        notice_policy;
        eager_locks = (if eager then app.eager_lock_hints else []);
      }
    in
    let sys = System.create eng counters fabric cfg ~memories in
    let caches = Array.init nprocs (fun _ -> Private_cache.create cache_cfg) in
    System.set_page_hook sys (fun ~node ~page ->
        Private_cache.invalidate_range caches.(node)
          ~addr:(page * cfg.page_words) ~words:cfg.page_words);
    System.start sys;
    let ends = Array.make nprocs 0 in
    let fibers =
      Array.init nprocs (fun node ->
        Engine.spawn eng ~name:(Printf.sprintf "cpu%d" node) ~at:0 (fun f ->
             let mem = memories.(node) and pc = caches.(node) in
             (* Software-TLB fast path: one byte load decides whether the
                guard call can be skipped (page readable / writable with
                the twin in place).  The protocol keeps the byte current on
                every transition, so the fast path is exactly the guard's
                no-op branch. *)
             let rights = System.access_rights sys ~node in
             let shift = System.page_shift sys in
             assert (shift >= 0);
             let read addr =
               if Bytes.unsafe_get rights (addr lsr shift) = '\000' then
                 System.read_guard sys f ~node addr;
               Private_cache.read pc f addr;
               Memory.get mem addr
             and write addr v =
               if Bytes.unsafe_get rights (addr lsr shift) <> '\002' then
                 System.write_guard sys f ~node addr;
               Private_cache.write pc f addr;
               Memory.set mem addr v
             in
             let fcell = ref 0.0 in
             let readf addr =
               if Bytes.unsafe_get rights (addr lsr shift) = '\000' then
                 System.read_guard sys f ~node addr;
               Private_cache.read pc f addr;
               fcell := Memory.get_float mem addr
             and writef addr =
               if Bytes.unsafe_get rights (addr lsr shift) <> '\002' then
                 System.write_guard sys f ~node addr;
               Private_cache.write pc f addr;
               Memory.set_float mem addr !fcell
             in
             let range =
               match notice_policy with
               | Config.Eager_invalidate ->
                   (* Under eager-invalidate RC a notice broadcast can land
                      inside the twin-creation yield mid-run; only the
                      word-at-a-time order is exactly equivalent there. *)
                   Parmacs.range_ops_wordwise ~read ~write
               | Config.Lazy ->
                   Parmacs.range_ops_of_runs ~mem
                     ~read_run:(fun addr words ~f:move ->
                       System.read_range_guard sys f ~node addr words
                         ~f:(fun p l ->
                           Private_cache.read_range pc f p l;
                           move p l))
                     ~write_run:(fun addr words ~f:move ->
                       System.write_range_guard sys f ~node addr words
                         ~f:(fun p l ->
                           Private_cache.write_range pc f p l;
                           move p l))
             in
             let ctx =
               {
                 Parmacs.id = node;
                 nprocs;
                 read;
                 write;
                 fcell;
                 readf;
                 writef;
                 range;
                 lock = (fun l -> System.acquire sys f ~node ~lock:l);
                 unlock = (fun l -> System.release sys f ~node ~lock:l);
                 barrier = (fun b -> System.barrier_arrive sys f ~node ~id:b);
                 compute = (fun n -> Engine.advance f n);
               }
             in
             app.work ctx;
             ends.(node) <- Engine.clock f))
    in
    let max_cycles =
      match max_cycles with
      | Some _ -> max_cycles
      | None ->
          if Fabric.faults_active faults then Some default_fault_watchdog
          else None
    in
    Engine.run ?max_cycles ~diag:(fun () -> System.retx_note sys) eng;
    System.check_invariants sys;
    Instrument.finish instrument counters fibers;
    {
      Report.platform = name;
      app = app.name;
      nprocs;
      cycles = Array.fold_left max 0 ends;
      clock_mhz;
      checksum = Parmacs.checksum_of memories.(0) app;
      counters = Counters.to_list counters;
    }
  in
  { Platform.name; clock_mhz; max_procs; run }

let dec ?(eager = false) ?(notice_policy = Config.Lazy) ?faults ?max_cycles
    ?instrument ~level () =
  let overhead, suffix =
    match level with
    | User -> (Overhead.treadmarks_user, "user")
    | Kernel -> (Overhead.treadmarks_kernel, "kernel")
  in
  let suffix =
    match notice_policy with
    | Config.Lazy -> suffix
    | Config.Eager_invalidate -> "erc"
  in
  make ~notice_policy ?faults ?max_cycles ?instrument
    ~name:(Printf.sprintf "treadmarks-%s" suffix)
    ~clock_mhz:40.0 ~max_procs:8
    ~fabric_of:(fun () -> Fabric.atm_dec ~overhead)
    ~cache_cfg:Private_cache.dec_config ~eager ()

let as_machine ?(eager = false) ?(overhead = Overhead.treadmarks_user) ?faults
    ?max_cycles ?instrument () =
  make ?faults ?max_cycles ?instrument ~name:"AS" ~clock_mhz:100.0
    ~max_procs:256
    ~fabric_of:(fun () -> Fabric.atm_sim ~overhead)
    ~cache_cfg:Private_cache.sim_node_config ~eager ()

let dec_plain ?(instrument = Instrument.off) () =
  let run (app : Parmacs.app) ~nprocs =
    if nprocs <> 1 then invalid_arg "dec_plain: uniprocessor only";
    let eng = Instrument.engine instrument in
    let counters = Counters.create () in
    let mem = Memory.create ~words:app.shared_words in
    app.init mem;
    let cache = Private_cache.create Private_cache.dec_config in
    let finish = ref 0 in
    let fiber =
      Engine.spawn eng ~name:"cpu0" ~at:0 (fun f ->
           let fcell = ref 0.0 in
           let ctx =
             {
               Parmacs.id = 0;
               nprocs = 1;
               read =
                 (fun addr ->
                   Private_cache.read cache f addr;
                   Memory.get mem addr);
               write =
                 (fun addr v ->
                   Private_cache.write cache f addr;
                   Memory.set mem addr v);
               fcell;
               readf =
                 (fun addr ->
                   Private_cache.read cache f addr;
                   fcell := Memory.get_float mem addr);
               writef =
                 (fun addr ->
                   Private_cache.write cache f addr;
                   Memory.set_float mem addr !fcell);
               range =
                 Parmacs.range_ops_of_runs ~mem
                   ~read_run:(fun addr words ~f:move ->
                     Private_cache.read_range cache f addr words;
                     move addr words)
                   ~write_run:(fun addr words ~f:move ->
                     Private_cache.write_range cache f addr words;
                     move addr words);
               lock = ignore;
               unlock = ignore;
               barrier = ignore;
               compute = (fun n -> Engine.advance f n);
             }
           in
           app.work ctx;
           finish := Engine.clock f)
    in
    Engine.run eng;
    Instrument.finish instrument counters [| fiber |];
    {
      Report.platform = "dec";
      app = app.name;
      nprocs = 1;
      cycles = !finish;
      clock_mhz = 40.0;
      checksum = Parmacs.checksum_of mem app;
      counters = Counters.to_list counters;
    }
  in
  { Platform.name = "dec"; clock_mhz = 40.0; max_procs = 1; run }
