(** The "All Hardware" design of paper Section 3: uniprocessor nodes on a
    crossbar with directory-based cache coherence (DASH/FLASH-like).

    [protocol] overrides the mounted engine (default ["directory"]); only
    hardware engines mount here. *)

(** [instrument] as in {!Dsm_cluster.dec}. *)
val make : ?protocol:string -> ?instrument:Instrument.t -> unit -> Platform.t
