(** The "All Hardware" design of paper Section 3: uniprocessor nodes on a
    crossbar with directory-based cache coherence (DASH/FLASH-like). *)

(** [instrument] as in {!Dsm_cluster.dec}. *)
val make : ?instrument:Instrument.t -> unit -> Platform.t
