type t = {
  platform : string;
  app : string;
  nprocs : int;
  cycles : int;
  clock_mhz : float;
  checksum : float;
  counters : (string * int) list;
}

let seconds t = float_of_int t.cycles /. (t.clock_mhz *. 1e6)

let get t name =
  Option.value ~default:0 (List.assoc_opt name t.counters)

(* An empty or degenerate run (0 cycles) must not leak NaN/inf into JSON
   output — JSON has no encoding for them, so a consumer would see a parse
   error far from the cause.  Both guards report 0.0 instead. *)
let rate t name =
  let s = seconds t in
  if s <= 0.0 then 0.0 else float_of_int (get t name) /. s

let speedup ~base t =
  if t.cycles <= 0 then 0.0
  else float_of_int base.cycles /. float_of_int t.cycles

let offered t = get t "net.msgs.offered"
let delivered t = get t "net.msgs.delivered"
let dropped t = get t "net.faults.dropped"
let duplicated t = get t "net.faults.duplicated"
let retransmissions t = get t "net.retrans.total"
let dups_suppressed t = get t "net.reliable.dups"

let fault_summary t =
  Printf.sprintf
    "offered=%d delivered=%d dropped=%d duplicated=%d retrans=%d \
     dups_suppressed=%d acks=%d"
    (offered t) (delivered t) (dropped t) (duplicated t) (retransmissions t)
    (dups_suppressed t)
    (get t "net.reliable.acks")

let crashes t = get t "sim.crashes"
let restarts t = get t "sim.restarts"
let downtime t = get t "sim.downtime"
let ckpt_count t = get t "ckpt.count"
let ckpt_bytes t = get t "ckpt.bytes"
let recovery_cycles t = get t "recovery.cycles"

(* Wall-clock seconds the crashed nodes spent rejoining — the
   availability-under-churn figure of merit (EXPERIMENTS.md). *)
let recovery_time t =
  float_of_int (recovery_cycles t) /. (t.clock_mhz *. 1e6)

let crash_summary t =
  Printf.sprintf
    "crashes=%d restarts=%d downtime=%d ckpts=%d ckpt_bytes=%d \
     recoveries=%d recovery_cycles=%d invalidated=%d rehomes=%d"
    (crashes t) (restarts t) (downtime t) (ckpt_count t) (ckpt_bytes t)
    (get t "recovery.count") (recovery_cycles t)
    (get t "recovery.invalidated")
    (get t "recovery.rehomes")

let breakdown t =
  List.filter_map
    (fun cat ->
      let name = "time." ^ Shm_sim.Engine.category_name cat in
      Option.map (fun v -> (cat, v)) (List.assoc_opt name t.counters))
    Shm_sim.Engine.categories

let consumed_names =
  [
    "net.msgs.offered"; "net.msgs.delivered"; "net.faults.dropped";
    "net.faults.duplicated"; "net.retrans.total"; "net.reliable.dups";
    "net.reliable.acks"; "sim.crashes"; "sim.restarts"; "sim.downtime";
    "ckpt.count"; "ckpt.bytes"; "recovery.count"; "recovery.cycles";
    "recovery.invalidated"; "recovery.rehomes";
  ]

let pp ppf t =
  Format.fprintf ppf "%s/%s p=%d: %.4f s (%d cycles), checksum=%.6g"
    t.platform t.app t.nprocs (seconds t) t.cycles t.checksum
