module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Private_cache = Shm_memsys.Private_cache

(* The DECstation cluster with the IVY engine mounted by default: same
   hardware as Dsm_cluster.dec, different coherence protocol.  Kept as a
   named machine because it is the paper-adjacent ablation baseline. *)
let make ?(protocol = "ivy") ?faults ?crash ?max_cycles ?instrument () =
  let name = if protocol = "ivy" then "ivy" else "ivy+" ^ protocol in
  let p =
    Dsm_cluster.make ~engine:(Shm_engines.get protocol) ?faults ?crash
      ?max_cycles ?instrument ~name ~clock_mhz:40.0 ~max_procs:64
      ~fabric_of:(fun () -> Fabric.atm_dec ~overhead:Overhead.treadmarks_user)
      ~cache_cfg:Private_cache.dec_config ~eager:false ()
  in
  p
