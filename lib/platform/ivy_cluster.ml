module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Private_cache = Shm_memsys.Private_cache
module Ivy = Shm_ivy.System
module Parmacs = Shm_parmacs.Parmacs

let page_words = 512

(* See dsm_cluster.ml: watchdog backstop for fault-mode runs. *)
let default_fault_watchdog = 200_000_000_000

let make ?(faults = Shm_net.Fabric.no_faults) ?max_cycles
    ?(instrument = Instrument.off) () =
  let run (app : Parmacs.app) ~nprocs =
    let eng = Instrument.engine instrument in
    let counters = Counters.create () in
    let fabric =
      Fabric.create eng counters
        { (Fabric.atm_dec ~overhead:Overhead.treadmarks_user) with
          Fabric.faults }
        ~nodes:nprocs
    in
    let shared_words = (app.shared_words + page_words - 1) / page_words * page_words in
    let image = Memory.create ~words:shared_words in
    app.init image;
    let memories =
      Array.init nprocs (fun _ ->
          let m = Memory.create ~words:shared_words in
          Memory.copy_all ~src:image ~dst:m;
          m)
    in
    let sys = Ivy.create eng counters fabric ~page_words ~shared_words ~memories in
    let caches =
      Array.init nprocs (fun _ -> Private_cache.create Private_cache.dec_config)
    in
    Ivy.set_page_hook sys (fun ~node ~page ->
        Private_cache.invalidate_range caches.(node) ~addr:(page * page_words)
          ~words:page_words);
    Ivy.start sys;
    let ends = Array.make nprocs 0 in
    let fibers =
      Array.init nprocs (fun node ->
        Engine.spawn eng ~name:(Printf.sprintf "cpu%d" node) ~at:0 (fun f ->
             let mem = memories.(node) and pc = caches.(node) in
             (* Software-TLB fast path: skip the guard when the rights byte
                already grants the access (see dsm_cluster.ml). *)
             let rights = Ivy.access_rights sys ~node in
             let shift = Ivy.page_shift sys in
             assert (shift >= 0);
             let read addr =
               if Bytes.unsafe_get rights (addr lsr shift) = '\000' then
                 Ivy.read_guard sys f ~node addr;
               Private_cache.read pc f addr;
               Memory.get mem addr
             and write addr v =
               if Bytes.unsafe_get rights (addr lsr shift) <> '\002' then
                 Ivy.write_guard sys f ~node addr;
               Private_cache.write pc f addr;
               Memory.set mem addr v
             in
             let fcell = ref 0.0 in
             let readf addr =
               if Bytes.unsafe_get rights (addr lsr shift) = '\000' then
                 Ivy.read_guard sys f ~node addr;
               Private_cache.read pc f addr;
               fcell := Memory.get_float mem addr
             and writef addr =
               if Bytes.unsafe_get rights (addr lsr shift) <> '\002' then
                 Ivy.write_guard sys f ~node addr;
               Private_cache.write pc f addr;
               Memory.set_float mem addr !fcell
             in
             let range =
               Parmacs.range_ops_of_runs ~mem
                 ~read_run:(fun addr words ~f:move ->
                   Ivy.read_range_guard sys f ~node addr words
                     ~f:(fun p l ->
                       Private_cache.read_range pc f p l;
                       move p l))
                 ~write_run:(fun addr words ~f:move ->
                   Ivy.write_range_guard sys f ~node addr words
                     ~f:(fun p l ->
                       Private_cache.write_range pc f p l;
                       move p l))
             in
             let ctx =
               {
                 Parmacs.id = node;
                 nprocs;
                 read;
                 write;
                 fcell;
                 readf;
                 writef;
                 range;
                 lock = (fun l -> Ivy.acquire sys f ~node ~lock:l);
                 unlock = (fun l -> Ivy.release sys f ~node ~lock:l);
                 barrier = (fun b -> Ivy.barrier_arrive sys f ~node ~id:b);
                 compute = (fun n -> Engine.advance f n);
               }
             in
             app.work ctx;
             ends.(node) <- Engine.clock f))
    in
    let max_cycles =
      match max_cycles with
      | Some _ -> max_cycles
      | None ->
          if Fabric.faults_active faults then Some default_fault_watchdog
          else None
    in
    Engine.run ?max_cycles ~diag:(fun () -> Ivy.retx_note sys) eng;
    Ivy.check_invariants sys;
    Instrument.finish instrument counters fibers;
    {
      Report.platform = "ivy";
      app = app.name;
      nprocs;
      cycles = Array.fold_left max 0 ends;
      clock_mhz = 40.0;
      checksum = Parmacs.checksum_of memories.(0) app;
      counters = Counters.to_list counters;
    }
  in
  { Platform.name = "ivy"; clock_mhz = 40.0; max_procs = 64; run }
