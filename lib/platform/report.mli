(** Result of one application run on one platform. *)

type t = {
  platform : string;
  app : string;
  nprocs : int;
  cycles : int;  (** simulated cycles of the timed parallel section *)
  clock_mhz : float;
  checksum : float;
  counters : (string * int) list;
}

val seconds : t -> float

(** [get t name] is a counter value ([0] if absent). *)
val get : t -> string -> int

(** [rate t name] is the counter per simulated second; [0.0] when the run
    covered no simulated time (never NaN/inf). *)
val rate : t -> string -> float

(** [speedup ~base t] is [base.cycles / t.cycles] (base is usually the
    1-processor run); [0.0] when [t] ran for no cycles (never inf). *)
val speedup : base:t -> t -> float

(** The execution-time breakdown of an instrumented run: cycles attributed
    to each {!Shm_sim.Engine.category}, summed over the application
    processors (the [time.*] counters).  Empty when the run was not
    instrumented. *)
val breakdown : t -> (Shm_sim.Engine.category * int) list

(** Every counter name the accessors below read — the counter-name audit
    test checks each is actually emitted by the subsystems, so a renamed
    counter cannot silently start reading 0. *)
val consumed_names : string list

(** {2 Fault-injection / reliability counters}

    All zero on fault-free runs and hardware platforms. *)

val offered : t -> int  (** [net.msgs.offered]: every send attempt *)

val delivered : t -> int  (** [net.msgs.delivered]: copies posted *)

val dropped : t -> int  (** [net.faults.dropped] *)

val duplicated : t -> int  (** [net.faults.duplicated] *)

val retransmissions : t -> int  (** [net.retrans.total] *)

val dups_suppressed : t -> int  (** [net.reliable.dups] *)

(** One-line rendering of the counters above. *)
val fault_summary : t -> string

(** {2 Crash-injection / recovery counters (DESIGN.md §13)}

    All zero on crash-free runs. *)

val crashes : t -> int  (** [sim.crashes]: nodes killed *)

val restarts : t -> int  (** [sim.restarts]: nodes brought back *)

val downtime : t -> int  (** [sim.downtime]: summed outage cycles *)

val ckpt_count : t -> int  (** [ckpt.count]: per-node checkpoint sweeps *)

val ckpt_bytes : t -> int  (** [ckpt.bytes]: checkpoint image bytes written *)

val recovery_cycles : t -> int  (** [recovery.cycles]: rejoin CPU cycles *)

(** [recovery_time t] is [recovery_cycles] in simulated seconds. *)
val recovery_time : t -> float

(** One-line rendering of the crash counters. *)
val crash_summary : t -> string

val pp : Format.formatter -> t -> unit
