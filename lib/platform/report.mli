(** Result of one application run on one platform. *)

type t = {
  platform : string;
  app : string;
  nprocs : int;
  cycles : int;  (** simulated cycles of the timed parallel section *)
  clock_mhz : float;
  checksum : float;
  counters : (string * int) list;
}

val seconds : t -> float

(** [get t name] is a counter value ([0] if absent). *)
val get : t -> string -> int

(** [rate t name] is the counter per simulated second. *)
val rate : t -> string -> float

(** [speedup ~base t] is [base.cycles / t.cycles] (base is usually the
    1-processor run). *)
val speedup : base:t -> t -> float

(** {2 Fault-injection / reliability counters}

    All zero on fault-free runs and hardware platforms. *)

val offered : t -> int  (** [net.msgs.offered]: every send attempt *)

val delivered : t -> int  (** [net.msgs.delivered]: copies posted *)

val dropped : t -> int  (** [net.faults.dropped] *)

val duplicated : t -> int  (** [net.faults.duplicated] *)

val retransmissions : t -> int  (** [net.retrans.total] *)

val dups_suppressed : t -> int  (** [net.reliable.dups] *)

(** One-line rendering of the counters above. *)
val fault_summary : t -> string

val pp : Format.formatter -> t -> unit
