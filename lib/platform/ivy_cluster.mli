(** The DECstation cluster running the IVY-style sequentially-consistent
    page DSM instead of TreadMarks — the baseline software shared memory
    that lazy release consistency was designed to improve on (an ablation
    beyond the paper's own comparisons; see DESIGN.md).

    [protocol] overrides the mounted engine (default ["ivy"]); it exists
    so the machine composes with the registry like every other platform,
    but mounting something else here is equivalent to using
    {!Dsm_cluster.dec} with that protocol on a wider cluster. *)

(** [faults] / [crash] / [max_cycles] / [instrument] as in
    {!Dsm_cluster.dec}. *)
val make :
  ?protocol:string ->
  ?faults:Shm_net.Fabric.faults ->
  ?crash:Shm_sim.Lifecycle.policy ->
  ?max_cycles:int ->
  ?instrument:Instrument.t ->
  unit ->
  Platform.t
