(** The DECstation cluster running the IVY-style sequentially-consistent
    page DSM instead of TreadMarks — the baseline software shared memory
    that lazy release consistency was designed to improve on (an ablation
    beyond the paper's own comparisons; see DESIGN.md). *)

(** [faults] / [max_cycles] / [instrument] as in {!Dsm_cluster.dec}. *)
val make :
  ?faults:Shm_net.Fabric.faults ->
  ?max_cycles:int ->
  ?instrument:Instrument.t ->
  unit ->
  Platform.t
