(** The SGI 4D/480 model: up to 8 processors with snooping (Illinois)
    cache coherence over a shared bus — the paper's hardware platform. *)

(** [instrument] as in {!Dsm_cluster.dec}. *)
val make : ?instrument:Instrument.t -> unit -> Platform.t

(** The paper's Section-2.5 hypothetical: dual cache tags and a bus twice
    as fast relative to the processors. *)
val make_fast : ?instrument:Instrument.t -> unit -> Platform.t
