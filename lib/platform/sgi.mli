(** The SGI 4D/480 model: up to 8 processors with snooping (Illinois)
    cache coherence over a shared bus — the paper's hardware platform.

    [protocol] overrides the mounted engine (default ["mesi"]); only
    hardware engines mount here. *)

(** [instrument] as in {!Dsm_cluster.dec}. *)
val make : ?protocol:string -> ?instrument:Instrument.t -> unit -> Platform.t

(** The paper's Section-2.5 hypothetical: dual cache tags and a bus twice
    as fast relative to the processors. *)
val make_fast :
  ?protocol:string -> ?instrument:Instrument.t -> unit -> Platform.t
