module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Memory = Shm_memsys.Memory
module Parmacs = Shm_parmacs.Parmacs

(* The generic hardware shared-memory machine: one physical memory, a
   mounted hardware coherence engine providing access timing and the
   flat test-and-set sync region above the application's space. *)

let reject_sdsm ~platform_name (module E : Shm_proto.ENGINE) =
  match E.kind with
  | Shm_proto.Hw -> ()
  | Shm_proto.Sdsm ->
      invalid_arg
        (Printf.sprintf
           "platform %S has hardware cache coherence; protocol %S is a \
            software-DSM engine (mount it on one of: treadmarks, \
            treadmarks-kernel, treadmarks-eager, ivy, as, hs)"
           platform_name E.name)

let sync_region_words = Shm_memsys.Hw_sync.region_words

let run ~engine:(module E : Shm_proto.ENGINE) ~instrument ~platform_name
    ~clock_mhz ~profile (app : Parmacs.app) ~nprocs =
  let eng = Instrument.engine instrument in
  let counters = Counters.create () in
  let total_words = app.shared_words + sync_region_words in
  let mem = Memory.create ~words:total_words in
  app.init mem;
  let inst =
    E.mount
      {
        Shm_proto.eng;
        counters;
        fabric = Fabric.crossbar_sim (* unused: hardware engines are wired *);
        nodes = nprocs;
        page_words = 512;
        shared_words = app.shared_words;
        memories = [| mem |];
        eager_lock_hints = [];
        hw_profile = Some profile;
        lifecycle = None;
      }
  in
  inst.Shm_proto.start ();
  let ends = Array.make nprocs 0 in
  let fibers =
    Array.init nprocs (fun cpu ->
      Engine.spawn eng ~name:(Printf.sprintf "cpu%d" cpu) ~at:0 (fun f ->
           let fcell = ref 0.0 in
           let icell = ref 0 in
           let ctx =
             {
               Parmacs.id = cpu;
               nprocs;
               read =
                 (fun addr ->
                   inst.Shm_proto.read_guard f ~node:cpu addr;
                   Memory.get mem addr);
               write =
                 (fun addr v ->
                   inst.Shm_proto.write_guard f ~node:cpu addr;
                   Memory.set mem addr v);
               fcell;
               readf =
                 (fun addr ->
                   inst.Shm_proto.read_guard f ~node:cpu addr;
                   fcell := Memory.get_float mem addr);
               writef =
                 (fun addr ->
                   inst.Shm_proto.write_guard f ~node:cpu addr;
                   Memory.set_float mem addr !fcell);
               icell;
               readi =
                 (fun addr ->
                   inst.Shm_proto.read_guard f ~node:cpu addr;
                   icell := Memory.get_int mem addr);
               writei =
                 (fun addr ->
                   inst.Shm_proto.write_guard f ~node:cpu addr;
                   Memory.set_int mem addr !icell);
               range =
                 Parmacs.range_ops_of_runs ~mem
                   ~read_run:(fun addr words ~f:move ->
                     inst.Shm_proto.read_range_guard f ~node:cpu addr words
                       ~f:move)
                   ~write_run:(fun addr words ~f:move ->
                     inst.Shm_proto.write_range_guard f ~node:cpu addr words
                       ~f:move);
               lock = (fun l -> inst.Shm_proto.acquire f ~node:cpu ~lock:l);
               unlock = (fun l -> inst.Shm_proto.release f ~node:cpu ~lock:l);
               barrier =
                 (fun b -> inst.Shm_proto.barrier_arrive f ~node:cpu ~id:b);
               compute = (fun n -> Engine.advance f n);
               clock = (fun () -> Engine.clock f);
             }
           in
           app.work ctx;
           ends.(cpu) <- Engine.clock f))
  in
  Engine.run eng;
  inst.Shm_proto.check_invariants ();
  Instrument.finish instrument counters fibers;
  List.iter (fun (k, v) -> Counters.add counters k v) (app.stats ());
  {
    Report.platform = platform_name;
    app = app.name;
    nprocs;
    cycles = Array.fold_left max 0 ends;
    clock_mhz;
    checksum = Parmacs.checksum_of mem app;
    counters = Counters.to_list counters;
  }

let make ~default_protocol ?protocol ?(instrument = Instrument.off) ~name
    ~clock_mhz ~max_procs ~profile () =
  let protocol = Option.value protocol ~default:default_protocol in
  let engine = Shm_engines.get protocol in
  reject_sdsm ~platform_name:name engine;
  let name = if protocol = default_protocol then name else name ^ "+" ^ protocol in
  {
    Platform.name;
    clock_mhz;
    max_procs;
    run = run ~engine ~instrument ~platform_name:name ~clock_mhz ~profile;
  }
