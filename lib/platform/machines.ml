let names =
  [
    "dec"; "treadmarks"; "treadmarks-kernel"; "treadmarks-eager";
    "treadmarks-erc"; "ivy"; "sgi"; "sgi-fast"; "as"; "ah"; "hs";
  ]

let fault_capable =
  [ "treadmarks"; "treadmarks-kernel"; "treadmarks-eager"; "treadmarks-erc";
    "ivy"; "as" ]

let reject_faults name faults =
  match faults with
  | Some f when Shm_net.Fabric.faults_active f ->
      invalid_arg
        (Printf.sprintf
           "platform %S models a reliable interconnect; fault injection \
            applies only to the software-DSM platforms (%s)"
           name
           (String.concat ", " fault_capable))
  | _ -> ()

let get ?faults ?max_cycles name =
  match name with
  | "dec" ->
      reject_faults name faults;
      Dsm_cluster.dec_plain ()
  | "treadmarks" ->
      Dsm_cluster.dec ?faults ?max_cycles ~level:Dsm_cluster.User ()
  | "treadmarks-kernel" ->
      Dsm_cluster.dec ?faults ?max_cycles ~level:Dsm_cluster.Kernel ()
  | "treadmarks-eager" ->
      Dsm_cluster.dec ?faults ?max_cycles ~eager:true ~level:Dsm_cluster.User ()
  | "treadmarks-erc" ->
      Dsm_cluster.dec ?faults ?max_cycles
        ~notice_policy:Shm_tmk.Config.Eager_invalidate ~level:Dsm_cluster.User
        ()
  | "ivy" -> Ivy_cluster.make ?faults ?max_cycles ()
  | "sgi" ->
      reject_faults name faults;
      Sgi.make ()
  | "sgi-fast" ->
      reject_faults name faults;
      Sgi.make_fast ()
  | "as" -> Dsm_cluster.as_machine ?faults ?max_cycles ()
  | "ah" ->
      reject_faults name faults;
      Ah.make ()
  | "hs" ->
      reject_faults name faults;
      Hs.make ()
  | name -> invalid_arg (Printf.sprintf "unknown platform %S" name)
