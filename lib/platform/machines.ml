let names =
  [
    "dec"; "treadmarks"; "treadmarks-kernel"; "treadmarks-eager";
    "treadmarks-erc"; "ivy"; "sgi"; "sgi-fast"; "as"; "ah"; "hs";
  ]

let fault_capable =
  [ "treadmarks"; "treadmarks-kernel"; "treadmarks-eager"; "treadmarks-erc";
    "ivy"; "as" ]

let protocols = Shm_engines.names

(* Crash injection needs the node-lifecycle layer of the software-DSM
   clusters; same membership as [fault_capable], kept separate so the
   lists can diverge if a platform ever supports one but not the other. *)
let crash_capable = fault_capable

let reject_faults name faults =
  match faults with
  | Some f when Shm_net.Fabric.faults_active f ->
      invalid_arg
        (Printf.sprintf
           "platform %S models a reliable interconnect; fault injection \
            applies only to the software-DSM platforms (%s)"
           name
           (String.concat ", " fault_capable))
  | _ -> ()

let reject_crash name crash =
  match crash with
  | Some c when Shm_sim.Lifecycle.active c ->
      invalid_arg
        (Printf.sprintf
           "platform %S models a reliable machine; whole-node crash \
            injection applies only to the software-DSM platforms (%s)"
           name
           (String.concat ", " crash_capable))
  | _ -> ()

let reject_protocol name protocol =
  match protocol with
  | Some p ->
      invalid_arg
        (Printf.sprintf
           "platform %S is a uniprocessor and mounts no coherence engine; \
            protocol %S applies only to the shared-memory platforms (%s)"
           name p
           (String.concat ", " (List.filter (fun n -> n <> "dec") names)))
  | None -> ()

let get ?faults ?crash ?max_cycles ?instrument ?protocol name =
  match name with
  | "dec" ->
      reject_faults name faults;
      reject_crash name crash;
      reject_protocol name protocol;
      Dsm_cluster.dec_plain ?instrument ()
  | "treadmarks" ->
      Dsm_cluster.dec ?faults ?crash ?max_cycles ?instrument ?protocol
        ~level:Dsm_cluster.User ()
  | "treadmarks-kernel" ->
      Dsm_cluster.dec ?faults ?crash ?max_cycles ?instrument ?protocol
        ~level:Dsm_cluster.Kernel ()
  | "treadmarks-eager" ->
      Dsm_cluster.dec ?faults ?crash ?max_cycles ?instrument ?protocol
        ~eager:true ~level:Dsm_cluster.User ()
  | "treadmarks-erc" ->
      Dsm_cluster.dec ?faults ?crash ?max_cycles ?instrument
        ~protocol:(Option.value protocol ~default:"erc")
        ~level:Dsm_cluster.User ()
  | "ivy" ->
      Ivy_cluster.make ?faults ?crash ?max_cycles ?instrument
        ~protocol:(Option.value protocol ~default:"ivy") ()
  | "sgi" ->
      reject_faults name faults;
      reject_crash name crash;
      Sgi.make ?protocol ?instrument ()
  | "sgi-fast" ->
      reject_faults name faults;
      reject_crash name crash;
      Sgi.make_fast ?protocol ?instrument ()
  | "as" ->
      Dsm_cluster.as_machine ?faults ?crash ?max_cycles ?instrument ?protocol
        ()
  | "ah" ->
      reject_faults name faults;
      reject_crash name crash;
      Ah.make ?protocol ?instrument ()
  | "hs" ->
      reject_faults name faults;
      reject_crash name crash;
      Hs.make ?protocol ?instrument ()
  | name -> invalid_arg (Printf.sprintf "unknown platform %S" name)
