let names =
  [
    "dec"; "treadmarks"; "treadmarks-kernel"; "treadmarks-eager";
    "treadmarks-erc"; "ivy"; "sgi"; "sgi-fast"; "as"; "ah"; "hs";
  ]

let fault_capable =
  [ "treadmarks"; "treadmarks-kernel"; "treadmarks-eager"; "treadmarks-erc";
    "ivy"; "as" ]

let reject_faults name faults =
  match faults with
  | Some f when Shm_net.Fabric.faults_active f ->
      invalid_arg
        (Printf.sprintf
           "platform %S models a reliable interconnect; fault injection \
            applies only to the software-DSM platforms (%s)"
           name
           (String.concat ", " fault_capable))
  | _ -> ()

let get ?faults ?max_cycles ?instrument name =
  match name with
  | "dec" ->
      reject_faults name faults;
      Dsm_cluster.dec_plain ?instrument ()
  | "treadmarks" ->
      Dsm_cluster.dec ?faults ?max_cycles ?instrument ~level:Dsm_cluster.User ()
  | "treadmarks-kernel" ->
      Dsm_cluster.dec ?faults ?max_cycles ?instrument ~level:Dsm_cluster.Kernel
        ()
  | "treadmarks-eager" ->
      Dsm_cluster.dec ?faults ?max_cycles ?instrument ~eager:true
        ~level:Dsm_cluster.User ()
  | "treadmarks-erc" ->
      Dsm_cluster.dec ?faults ?max_cycles ?instrument
        ~notice_policy:Shm_tmk.Config.Eager_invalidate ~level:Dsm_cluster.User
        ()
  | "ivy" -> Ivy_cluster.make ?faults ?max_cycles ?instrument ()
  | "sgi" ->
      reject_faults name faults;
      Sgi.make ?instrument ()
  | "sgi-fast" ->
      reject_faults name faults;
      Sgi.make_fast ?instrument ()
  | "as" -> Dsm_cluster.as_machine ?faults ?max_cycles ?instrument ()
  | "ah" ->
      reject_faults name faults;
      Ah.make ?instrument ()
  | "hs" ->
      reject_faults name faults;
      Hs.make ?instrument ()
  | name -> invalid_arg (Printf.sprintf "unknown platform %S" name)
