(** The generic hardware shared-memory machine: a single physical memory
    kept coherent by a mounted hardware {!Shm_proto.ENGINE}, with flat
    test-and-set locks and barriers in a reserved region above the
    application's shared space.  {!Sgi} and {!Ah} are named instances. *)

(** [make ~default_protocol ~name ~clock_mhz ~max_procs ~profile ()]
    builds the platform, mounting [?protocol] (default
    [default_protocol]); a non-default protocol is reflected in the
    platform name as ["name+protocol"].  @raise Invalid_argument if the
    engine is a software-DSM engine, mirroring the fault-policy refusal
    in {!Machines.get}. *)
val make :
  default_protocol:string ->
  ?protocol:string ->
  ?instrument:Instrument.t ->
  name:string ->
  clock_mhz:float ->
  max_procs:int ->
  profile:Shm_proto.hw_profile ->
  unit ->
  Platform.t
