(* Fixed log-bucket histogram (see hist.mli for the layout contract).

   Index layout, with [sub] = 16 sub-buckets per octave:
     v in [0, 2*sub)         -> bucket v               (width 1, exact)
     v >= 2*sub              -> shift v right until it lands in
                                [sub, 2*sub); with e shifts the bucket
                                is [sub + e*sub + (v >> e) - sub], whose
                                value range is
                                [(sub+m) << e, ((sub+m+1) << e) - 1].
   Ranges are disjoint and ascending, so cumulative walks and quantile
   extraction need no sorting. *)

let sub_bits = 4
let subbuckets = 1 lsl sub_bits

(* 63-bit ints need at most 58 shifts to land in [16, 32); 60 octaves of
   16 sub-buckets covers every index the mapping can produce. *)
let bucket_count = 60 * subbuckets

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : int;
  mutable max_v : int;
  mutable min_v : int;
}

let create () =
  {
    counts = Array.make bucket_count 0;
    count = 0;
    sum = 0;
    max_v = 0;
    min_v = max_int;
  }

let[@inline] bucket_of v =
  let v = if v < 0 then 0 else v in
  if v < 2 * subbuckets then v
  else begin
    let e = ref 0 and x = ref v in
    while !x >= 2 * subbuckets do
      x := !x lsr 1;
      incr e
    done;
    (* !x is now in [subbuckets, 2*subbuckets). *)
    ((!e + 1) * subbuckets) + (!x - subbuckets)
  end

let bounds i =
  if i < 0 || i >= bucket_count then invalid_arg "Hist.bounds: bad index";
  if i < 2 * subbuckets then (i, i)
  else
    let e = (i / subbuckets) - 1 and m = i mod subbuckets in
    (((subbuckets + m) lsl e), (((subbuckets + m + 1) lsl e) - 1))

let record t v =
  let v = if v < 0 then 0 else v in
  let i = bucket_of v in
  Array.unsafe_set t.counts i (Array.unsafe_get t.counts i + 1);
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v > t.max_v then t.max_v <- v;
  if v < t.min_v then t.min_v <- v

let count t = t.count
let sum t = t.sum
let max_value t = if t.count = 0 then 0 else t.max_v
let min_value t = if t.count = 0 then 0 else t.min_v
let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

let percentile t p =
  if not (p > 0.0 && p <= 100.0) then
    invalid_arg (Printf.sprintf "Hist.percentile: %g not in (0, 100]" p);
  if t.count = 0 then 0
  else begin
    let rank =
      let r = int_of_float (ceil (p /. 100.0 *. float_of_int t.count)) in
      if r < 1 then 1 else if r > t.count then t.count else r
    in
    let i = ref 0 and cum = ref 0 in
    while !cum + t.counts.(!i) < rank do
      cum := !cum + t.counts.(!i);
      incr i
    done;
    let _, hi = bounds !i in
    if hi > t.max_v then t.max_v else hi
  end

let merge ~into src =
  for i = 0 to bucket_count - 1 do
    into.counts.(i) <- into.counts.(i) + src.counts.(i)
  done;
  into.count <- into.count + src.count;
  into.sum <- into.sum + src.sum;
  if src.count > 0 then begin
    if src.max_v > into.max_v then into.max_v <- src.max_v;
    if src.min_v < into.min_v then into.min_v <- src.min_v
  end

let copy t =
  {
    counts = Array.copy t.counts;
    count = t.count;
    sum = t.sum;
    max_v = t.max_v;
    min_v = t.min_v;
  }

let equal a b =
  a.count = b.count && a.sum = b.sum && a.max_v = b.max_v
  && a.min_v = b.min_v && a.counts = b.counts

let to_list t =
  let acc = ref [] in
  for i = bucket_count - 1 downto 0 do
    if t.counts.(i) > 0 then begin
      let lo, hi = bounds i in
      acc := (lo, hi, t.counts.(i)) :: !acc
    end
  done;
  !acc
