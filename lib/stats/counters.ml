type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let cell t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t name r;
      r

let add t name n =
  let r = cell t name in
  r := !r + n

let incr t name = add t name 1

let get t name = match Hashtbl.find_opt t name with Some r -> !r | None -> 0

let mem t name = Hashtbl.mem t name

let find t name =
  match Hashtbl.find_opt t name with
  | Some r -> !r
  | None ->
      invalid_arg
        (Printf.sprintf
           "Counters.find: no counter named %S (known: %s)" name
           (String.concat ", "
              (List.sort String.compare
                 (Hashtbl.fold (fun k _ acc -> k :: acc) t []))))

let merge ~into src = Hashtbl.iter (fun name r -> add into name !r) src

let reset t = Hashtbl.iter (fun _ r -> r := 0) t

let to_list t =
  Hashtbl.fold (fun name r acc -> (name, !r) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  List.iter (fun (name, v) -> Format.fprintf ppf "%-32s %d@." name v) (to_list t)
