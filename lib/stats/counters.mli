(** Named integer counters.

    Every subsystem (network, caches, DSM protocol) accumulates event counts
    and byte counts here; the bench harness reads them back by name. *)

type t

val create : unit -> t

val incr : t -> string -> unit

val add : t -> string -> int -> unit

(** [cell t name] is the mutable cell behind counter [name], creating it
    at 0 if absent.  Hot paths cache the cell once and bump it with a
    plain [ref] update instead of a hashtable lookup per event. *)
val cell : t -> string -> int ref

(** [get t name] is the counter value, or [0] if never touched.  A
    misspelled name therefore silently reads as 0 — prefer {!find} (or
    check {!mem}) when the counter is expected to exist. *)
val get : t -> string -> int

(** [mem t name] is true iff [name] has ever been emitted into [t]. *)
val mem : t -> string -> bool

(** Strict {!get}: @raise Invalid_argument (listing the known names) if
    [name] was never emitted, instead of silently returning 0. *)
val find : t -> string -> int

(** [merge ~into src] adds every counter of [src] into [into]. *)
val merge : into:t -> t -> unit

val reset : t -> unit

(** [to_list t] is the (name, value) pairs sorted by name. *)
val to_list : t -> (string * int) list

val pp : Format.formatter -> t -> unit
