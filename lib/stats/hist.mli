(** Allocation-free latency histogram with bounded relative error.

    An HdrHistogram-style fixed log-bucket layout: values below
    [2 * subbuckets] land in width-1 buckets (exact); above that, each
    power-of-two octave is split into [subbuckets] equal sub-buckets, so
    a reported quantile overstates the true value by at most
    [1/subbuckets] (6.25%).  The bucket array is allocated once at
    {!create}; {!record} performs only integer stores, so per-request
    latency recording is free of GC traffic — the serving workloads
    record one value per simulated request on the hot path.

    Quantile extraction walks the cumulative counts: {!percentile}
    returns the upper bound of the bucket holding the rank-th value,
    clamped to the exact recorded maximum (so [percentile t 100.0] is
    exact, and a singleton histogram reports any quantile exactly). *)

type t

val create : unit -> t

(** [record t v] adds one observation.  Negative values clamp to 0. *)
val record : t -> int -> unit

val count : t -> int

val sum : t -> int

(** Exact extrema of the recorded values; 0 when empty. *)
val max_value : t -> int

val min_value : t -> int

(** Mean of the recorded values; 0.0 when empty. *)
val mean : t -> float

(** [percentile t p] for [p] in (0, 100]: the smallest bucket upper
    bound covering rank [ceil (p/100 * count)], clamped to the recorded
    maximum.  Monotone in [p]; 0 when empty.
    @raise Invalid_argument when [p] is outside (0, 100]. *)
val percentile : t -> float -> int

(** [merge ~into src] adds every bucket of [src] into [into]; [src] is
    unchanged.  Merging is associative and commutative. *)
val merge : into:t -> t -> unit

val copy : t -> t

(** [equal a b] compares full histogram state (buckets and extrema). *)
val equal : t -> t -> bool

(** {2 Bucket geometry} — exposed for boundary tests. *)

(** Number of width-1 sub-buckets per octave (16). *)
val subbuckets : int

val bucket_count : int

(** [bucket_of v] is the index of the bucket holding [v]. *)
val bucket_of : int -> int

(** [bounds i] is the inclusive [(lo, hi)] value range of bucket [i]. *)
val bounds : int -> int * int

(** Nonzero buckets as [(lo, hi, count)] triples in ascending order. *)
val to_list : t -> (int * int * int) list
