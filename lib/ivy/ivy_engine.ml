(* The IVY sequentially-consistent page DSM as a mountable coherence
   engine (registry name "ivy"). *)

module Fabric = Shm_net.Fabric

let name = "ivy"
let kind = Shm_proto.Sdsm

let describe =
  "IVY sequentially-consistent page DSM: one writer at a time, whole-page \
   transfers, invalidation with acknowledgements on every write fault"

let mount (ctx : Shm_proto.ctx) =
  let fabric = Fabric.create ctx.eng ctx.counters ctx.fabric ~nodes:ctx.nodes in
  (* Attach before the system creates its Reliable channel, so the
     channel arms sequencing/retransmission and sees node liveness. *)
  Option.iter (Fabric.attach_lifecycle fabric) ctx.lifecycle;
  let sys =
    System.create ?lifecycle:ctx.lifecycle ctx.eng ctx.counters fabric
      ~page_words:ctx.page_words ~shared_words:ctx.shared_words
      ~memories:ctx.memories
  in
  {
    Shm_proto.i_name = name;
    page_shift = System.page_shift sys;
    wordwise_ranges = false;
    access_rights = Some (fun ~node -> System.access_rights sys ~node);
    set_page_hook = (fun h -> System.set_page_hook sys h);
    start = (fun () -> System.start sys);
    retx_note = (fun () -> System.retx_note sys);
    read_guard = (fun f ~node addr -> System.read_guard sys f ~node addr);
    write_guard = (fun f ~node addr -> System.write_guard sys f ~node addr);
    read_range_guard =
      (fun f ~node addr words ~f:move ->
        System.read_range_guard sys f ~node addr words ~f:move);
    write_range_guard =
      (fun f ~node addr words ~f:move ->
        System.write_range_guard sys f ~node addr words ~f:move);
    acquire = (fun f ~node ~lock -> System.acquire sys f ~node ~lock);
    release = (fun f ~node ~lock -> System.release sys f ~node ~lock);
    barrier_arrive = (fun f ~node ~id -> System.barrier_arrive sys f ~node ~id);
    rmw = None;
    invalidate_range = None;
    dump_lock = None;
    check_invariants = (fun () -> System.check_invariants sys);
  }
