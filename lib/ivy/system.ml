module Engine = Shm_sim.Engine
module Mailbox = Shm_sim.Mailbox
module Waitq = Shm_sim.Waitq
module Fabric = Shm_net.Fabric
module Reliable = Shm_net.Reliable
module Msg = Shm_net.Msg
module Memory = Shm_memsys.Memory
module Counters = Shm_stats.Counters
module Lifecycle = Shm_sim.Lifecycle
module Iset = Set.Make (Int)

type page_access = Invalid | Read | Write

let access_name = function
  | Invalid -> "Invalid"
  | Read -> "Read"
  | Write -> "Write"

type pending_txn = { kind : page_access; requester : int; req : int }

exception
  Proto_error of {
    page : int;
    requester : int;
    manager : int;
    state : string;
  }

let () =
  Printexc.register_printer (function
    | Proto_error { page; requester; manager; state } ->
        Some
          (Printf.sprintf
             "Ivy.Proto_error: page %d, requester %d, manager %d: %s" page
             requester manager state)
    | _ -> None)

(* Manager-side record for a page it manages. *)
type mpage = {
  mutable owner : int;
  mutable copyset : Iset.t;
  mutable busy : bool;
  mutable acks_waited : int;
  mutable current : pending_txn option;
  waiting : pending_txn Queue.t;
}

type mlock = { mutable held : bool; lock_waiters : (int * int) Queue.t }

type recov = {
  image : Memory.t;
      (** failure-atomic checkpoint image; page-granular for IVY (whole
          pages move, so whole pages checkpoint — contrast the TreadMarks
          sub-page run-length deltas) *)
  ckpt_dirty : Bytes.t;  (** pages touched since the last checkpoint *)
}

type node = {
  id : int;
  mem : Memory.t;
  access : page_access array;
  rights : Bytes.t;
      (** software TLB mirroring [access]: ['\000'] Invalid, ['\001'] Read,
          ['\002'] Write — consulted by the platforms' fast paths. *)
  mpages : (int, mpage) Hashtbl.t;  (** pages this node manages *)
  mlocks : (int, mlock) Hashtbl.t;  (** locks this node manages *)
  pending_reqs : (int, Proto.t Mailbox.t) Hashtbl.t;
  mutable next_req : int;
  inflight : (int, Waitq.t) Hashtbl.t;
  steal : int ref;
  mutable recov : recov option;  (** checkpoint state; [None] = crash-free *)
}

type barrier_state = { mutable arrivals : (int * int) list }

type t = {
  eng : Engine.t;
  counters : Counters.t;
  net : Proto.t Reliable.t;
  page_words : int;
  n_pages : int;
  n_nodes : int;
  nodes : node array;
  barriers : barrier_state array;
  page_shift : int;  (** log2 page_words, or -1 if not a power of two *)
  mutable page_hook : node:int -> page:int -> unit;
  lock_home : (int, int) Hashtbl.t;
      (** re-homed lock managers; empty (fall through to the static
          [lock mod n_nodes] mapping) until a crash moves one *)
  mutable barrier_home : int;  (** current barrier manager; starts at 0 *)
  lifecycle : Lifecycle.t option;
}

let page_of t addr =
  if t.page_shift >= 0 then addr lsr t.page_shift else addr / t.page_words

let page_shift t = t.page_shift

let access_rights t ~node = t.nodes.(node).rights

(* Every [access] transition goes through here so the TLB mirror never
   drifts.  A transition to [Write] marks the page for the next
   checkpoint: once writable, the application mutates it with no further
   protocol event. *)
let set_access nd page (a : page_access) =
  nd.access.(page) <- a;
  (match nd.recov with
  | Some rv when a = Write -> Bytes.unsafe_set rv.ckpt_dirty page '\001'
  | Some _ | None -> ());
  Bytes.unsafe_set nd.rights page
    (match a with Invalid -> '\000' | Read -> '\001' | Write -> '\002')

let memory t ~node = t.nodes.(node).mem

let set_page_hook t f = t.page_hook <- f

let manager_of t page = page mod t.n_nodes

(* The page directory is deliberately NOT re-homed on a crash: requests
   to a down manager stall in the senders' retransmit queues until it
   restarts (a documented deviation — see DESIGN.md §13).  Locks and the
   barrier do re-home, through the overrides below. *)
let lock_manager_of t lock =
  match Hashtbl.find_opt t.lock_home lock with
  | Some home -> home
  | None -> lock mod t.n_nodes

let overhead t = (Fabric.config (Reliable.fabric t.net)).Fabric.overhead

let create ?lifecycle eng counters fabric ~page_words ~shared_words ~memories =
  let n_nodes = Array.length memories in
  let n_pages = (shared_words + page_words - 1) / page_words in
  let mk_node id =
    let mpages = Hashtbl.create 64 in
    for p = 0 to n_pages - 1 do
      if p mod n_nodes = id then
        Hashtbl.add mpages p
          {
            owner = id;
            copyset = Iset.of_list (List.init n_nodes Fun.id);
            busy = false;
            acks_waited = 0;
            current = None;
            waiting = Queue.create ();
          }
    done;
    {
      id;
      mem = memories.(id);
      access = Array.make n_pages Read;
      rights = Bytes.make n_pages (if n_nodes = 1 then '\002' else '\001');
      mpages;
      mlocks = Hashtbl.create 16;
      pending_reqs = Hashtbl.create 16;
      next_req = 0;
      inflight = Hashtbl.create 8;
      steal = ref 0;
      recov = None;
    }
  in
  (* The initial owner (the manager) holds each page in Read like everyone
     else; ownership only matters once someone writes. *)
  let t =
    {
      eng;
      counters;
      net = Reliable.create eng counters fabric;
      page_words;
      n_pages;
      n_nodes;
      nodes = Array.init n_nodes mk_node;
      barriers = Array.init 16 (fun _ -> { arrivals = [] });
      page_shift =
        (if page_words > 0 && page_words land (page_words - 1) = 0 then
           let rec go s n = if n = 1 then s else go (s + 1) (n lsr 1) in
           go 0 page_words
         else -1);
      page_hook = (fun ~node:_ ~page:_ -> ());
      lock_home = Hashtbl.create 8;
      barrier_home = 0;
      lifecycle;
    }
  in
  (match lifecycle with
  | None -> ()
  | Some _ ->
      (* Crash-aware reliability: suspected deaths are reported once per
         packet and timers park at the peer's restart instead of
         aborting (see the TreadMarks counterpart). *)
      Reliable.set_policy t.net
        {
          Reliable.default_policy with
          Reliable.backoff_cap = 6;
          on_peer_down = Some (fun ~src:_ ~dst:_ ~attempts:_ -> ());
        };
      let words = n_pages * page_words in
      Array.iter
        (fun nd ->
          let image = Memory.create ~words in
          Memory.blit ~src:nd.mem ~src_pos:0 ~dst:image ~dst_pos:0 ~len:words;
          nd.recov <-
            Some { image; ckpt_dirty = Bytes.make n_pages '\000' })
        t.nodes);
  t

let fresh_req nd =
  let r = nd.next_req in
  nd.next_req <- r + 1;
  r

let register_req t nd req =
  let mb = Mailbox.create t.eng in
  Hashtbl.replace nd.pending_reqs req mb;
  mb

let drain_steal fiber nd =
  let s = !(nd.steal) in
  if s > 0 then begin
    nd.steal := 0;
    (* Handler CPU time charged to the application is protocol overhead. *)
    Engine.with_category fiber Engine.Protocol (fun () ->
        Engine.advance fiber s)
  end

let page_data t nd page =
  Array.init t.page_words (fun k ->
      Memory.get nd.mem ((page * t.page_words) + k))

let install_page t fiber nd page data =
  Array.iteri
    (fun k v -> Memory.set nd.mem ((page * t.page_words) + k) v)
    data;
  (match nd.recov with
  | Some rv -> Bytes.unsafe_set rv.ckpt_dirty page '\001'
  | None -> ());
  Engine.advance fiber t.page_words;
  t.page_hook ~node:nd.id ~page

(* Deliver [body] to [dst]: over the fabric, or by running the dispatch
   inline when [dst] is the local node (no message, no cost). *)
let rec deliver t fiber ~src ~dst body =
  if src = dst then dispatch t fiber t.nodes.(dst) ~src body
  else
    Reliable.send t.net fiber ~src ~dst ~class_:(Proto.class_ body)
      ~size:(Proto.sizes body) body

(* ---------------- manager-side page state machine ------------------ *)

and mgr_start_txn t fiber mgr page (txn : pending_txn) =
  let mp = Hashtbl.find mgr.mpages page in
  mp.busy <- true;
  mp.current <- Some txn;
  match txn.kind with
  | Read ->
      deliver t fiber ~src:mgr.id ~dst:mp.owner
        (Proto.Read_fwd { page; requester = txn.requester; req = txn.req })
  | Write ->
      let invals =
        Iset.remove txn.requester (Iset.remove mp.owner mp.copyset)
      in
      mp.acks_waited <- Iset.cardinal invals;
      Counters.add t.counters "ivy.invalidations" mp.acks_waited;
      if mp.acks_waited = 0 then mgr_proceed_write t fiber mgr page
      else
        Iset.iter
          (fun dst ->
            deliver t fiber ~src:mgr.id ~dst
              (Proto.Invalidate { page; req = txn.req }))
          invals
  | Invalid ->
      (* A transaction can only be created by a Read_req or Write_req; an
         Invalid kind reaching the manager means a corrupted request (e.g.
         a protocol bug surfaced by a chaos schedule).  Raise a diagnosable
         error instead of Assert_failure. *)
      raise
        (Proto_error
           {
             page;
             requester = txn.requester;
             manager = mgr.id;
             state =
               Printf.sprintf
                 "transaction kind %s (req %d); manager state: owner=%d \
                  copyset={%s} busy=%b acks_waited=%d queued=%d"
                 (access_name txn.kind) txn.req mp.owner
                 (String.concat ","
                    (List.map string_of_int (Iset.elements mp.copyset)))
                 mp.busy mp.acks_waited
                 (Queue.length mp.waiting);
           })

and mgr_proceed_write t fiber mgr page =
  let mp = Hashtbl.find mgr.mpages page in
  match mp.current with
  | Some { requester; req; _ } ->
      if mp.owner = requester then
        (* Ownership upgrade: the requester already holds the data. *)
        deliver t fiber ~src:mgr.id ~dst:requester
          (Proto.Page_grant { page; req; data = None })
      else
        deliver t fiber ~src:mgr.id ~dst:mp.owner
          (Proto.Write_fwd { page; requester; req })
  | None -> failwith "ivy: write proceed without transaction"

and mgr_request t fiber mgr page txn =
  let mp = Hashtbl.find mgr.mpages page in
  if mp.busy then Queue.push txn mp.waiting
  else mgr_start_txn t fiber mgr page txn

and mgr_txn_done t fiber mgr page ~requester ~write =
  let mp = Hashtbl.find mgr.mpages page in
  if write then begin
    mp.owner <- requester;
    mp.copyset <- Iset.singleton requester
  end
  else mp.copyset <- Iset.add requester mp.copyset;
  mp.busy <- false;
  mp.current <- None;
  match Queue.take_opt mp.waiting with
  | Some txn -> mgr_start_txn t fiber mgr page txn
  | None -> ()

(* ---------------- lock manager ------------------------------------- *)

and mgr_lock_req t fiber mgr ~lock ~requester ~req =
  let ml =
    match Hashtbl.find_opt mgr.mlocks lock with
    | Some ml -> ml
    | None ->
        let ml = { held = false; lock_waiters = Queue.create () } in
        Hashtbl.add mgr.mlocks lock ml;
        ml
  in
  if ml.held then Queue.push (requester, req) ml.lock_waiters
  else begin
    ml.held <- true;
    deliver t fiber ~src:mgr.id ~dst:requester (Proto.Lock_grant { lock; req })
  end

and mgr_unlock t fiber mgr ~lock =
  let ml = Hashtbl.find mgr.mlocks lock in
  match Queue.take_opt ml.lock_waiters with
  | Some (requester, req) ->
      deliver t fiber ~src:mgr.id ~dst:requester
        (Proto.Lock_grant { lock; req })
  | None -> ml.held <- false

(* ---------------- barrier manager ---------------------------------- *)

and mgr_barrier_arrive t fiber mgr ~id ~node ~req =
  let b = t.barriers.(id) in
  b.arrivals <- (node, req) :: b.arrivals;
  if List.length b.arrivals = t.n_nodes then begin
    let arrivals = b.arrivals in
    b.arrivals <- [];
    List.iter
      (fun (dst, dreq) ->
        deliver t fiber ~src:mgr.id ~dst
          (Proto.Barrier_depart { barrier = id; req = dreq }))
      arrivals;
    Counters.incr t.counters "ivy.barriers"
  end

(* ---------------- message dispatch --------------------------------- *)

and route_response nd ~req body ~at =
  match Hashtbl.find_opt nd.pending_reqs req with
  | Some mb -> Mailbox.post mb ~at body
  | None -> failwith "ivy: response without pending request"

and dispatch t fiber nd ~src body =
  ignore src;
  match body with
  | Proto.Read_req { page; requester; req } ->
      mgr_request t fiber nd page { kind = Read; requester; req }
  | Proto.Write_req { page; requester; req } ->
      mgr_request t fiber nd page { kind = Write; requester; req }
  | Proto.Read_fwd { page; requester; req } ->
      (* We are the owner: downgrade and ship a copy. *)
      if nd.access.(page) = Write then set_access nd page Read;
      Engine.advance fiber t.page_words;
      deliver t fiber ~src:nd.id ~dst:requester
        (Proto.Page_copy { page; req; data = page_data t nd page });
      Counters.incr t.counters "ivy.page_copies"
  | Proto.Write_fwd { page; requester; req } ->
      (* We are the owner: ship the page with ownership and drop it. *)
      Engine.advance fiber t.page_words;
      let data = Some (page_data t nd page) in
      set_access nd page Invalid;
      deliver t fiber ~src:nd.id ~dst:requester
        (Proto.Page_grant { page; req; data });
      Counters.incr t.counters "ivy.page_transfers"
  | Proto.Invalidate { page; req } ->
      set_access nd page Invalid;
      Engine.instant fiber "ivy.invalidate";
      deliver t fiber ~src:nd.id ~dst:(manager_of t page)
        (Proto.Inval_ack { page; req })
  | Proto.Inval_ack { page; _ } ->
      let mp = Hashtbl.find nd.mpages page in
      mp.acks_waited <- mp.acks_waited - 1;
      if mp.acks_waited = 0 then mgr_proceed_write t fiber nd page
  | Proto.Txn_done { page; requester; write } ->
      mgr_txn_done t fiber nd page ~requester ~write:(write = 1)
  | Proto.Lock_req { lock; requester; req } as body ->
      (* Stale destination after a crash re-homed the lock (the request
         outlived the outage in a peer's retransmit queue): forward. *)
      let home = lock_manager_of t lock in
      if home <> nd.id then begin
        Counters.incr t.counters "recovery.forwards";
        deliver t fiber ~src:nd.id ~dst:home body
      end
      else mgr_lock_req t fiber nd ~lock ~requester ~req
  | Proto.Unlock { lock; requester } as body ->
      ignore requester;
      let home = lock_manager_of t lock in
      if home <> nd.id then begin
        Counters.incr t.counters "recovery.forwards";
        deliver t fiber ~src:nd.id ~dst:home body
      end
      else mgr_unlock t fiber nd ~lock
  | Proto.Barrier_arrive { barrier; node; req } as body ->
      if t.barrier_home <> nd.id then begin
        Counters.incr t.counters "recovery.forwards";
        deliver t fiber ~src:nd.id ~dst:t.barrier_home body
      end
      else mgr_barrier_arrive t fiber nd ~id:barrier ~node ~req
  | Proto.Page_copy { req; _ } | Proto.Page_grant { req; _ }
  | Proto.Lock_grant { req; _ } | Proto.Barrier_depart { req; _ } ->
      route_response nd ~req body ~at:(Engine.clock fiber)

(* ---------------- crash recovery (DESIGN.md §13) ------------------- *)

(* Page-granular failure-atomic checkpoint: whole dirty pages copy into
   the image (IVY moves whole pages, so it persists whole pages —
   contrast the TreadMarks sub-page run-length deltas).  Runs from an
   [Engine.schedule] callback; cost charged through [steal]. *)
let checkpoint t nd =
  match nd.recov with
  | None -> ()
  | Some rv ->
      let pw = t.page_words in
      let bytes = ref 0 and copied = ref 0 in
      (* Probe before persisting: a writable page stays ckpt-dirty
         between sweeps by design, but re-persisting it when nothing
         changed would make every sweep cost the whole working set —
         the per-sweep charge outruns the checkpoint interval on large
         runs and the simulation quasi-livelocks.  The probe itself
         rides the page-table write bits, so only pages that actually
         changed are copied and charged.  Accounting stays whole-page:
         IVY's protocol (and hence persistence) unit is the page. *)
      for p = 0 to t.n_pages - 1 do
        if Bytes.get rv.ckpt_dirty p <> '\000' then begin
          if not (Memory.equal_range nd.mem rv.image ~pos:(p * pw) ~len:pw)
          then begin
            Memory.blit ~src:nd.mem ~src_pos:(p * pw) ~dst:rv.image
              ~dst_pos:(p * pw) ~len:pw;
            bytes := !bytes + 16 + (8 * pw);
            copied := !copied + pw
          end;
          (* A writable page keeps changing with no further protocol
             event: keep it dirty for the next checkpoint. *)
          if nd.access.(p) <> Write then Bytes.set rv.ckpt_dirty p '\000'
        end
      done;
      nd.steal := !(nd.steal) + (overhead t).handler + !copied;
      Counters.incr t.counters "ckpt.count";
      Counters.add t.counters "ckpt.bytes" !bytes

(* Online rejoin of a restarted node: every page it neither owns nor has
   a transaction in flight for is conservatively invalidated, so the
   next access re-fetches a fresh copy through the (sequentially
   consistent) manager.  Owned pages are authoritative — the volatile
   copy survives the outage under the failure-atomic heap model — and
   invalidating them would strand the directory. *)
let rejoin t nd =
  match nd.recov with
  | None -> ()
  | Some _ ->
      for p = 0 to t.n_pages - 1 do
        if nd.access.(p) <> Invalid && not (Hashtbl.mem nd.inflight p) then begin
          let mp = Hashtbl.find t.nodes.(manager_of t p).mpages p in
          let ours =
            mp.owner = nd.id
            || mp.busy
               &&
               match mp.current with
               | Some { requester; _ } -> requester = nd.id
               | None -> false
          in
          if not ours then begin
            set_access nd p Invalid;
            t.page_hook ~node:nd.id ~page:p;
            Counters.incr t.counters "recovery.invalidated"
          end
        end
      done;
      let cycles = (overhead t).handler + t.n_pages in
      nd.steal := !(nd.steal) + cycles;
      Counters.incr t.counters "recovery.count";
      Counters.add t.counters "recovery.cycles" cycles

(* Re-home the lock and barrier managers of a crashed node onto the next
   surviving node.  The [mlock] records are shared (replicated manager
   state), so holders and queued waiters survive the move; requests that
   still name the dead node are forwarded by its handler after restart.
   The page directory is NOT re-homed — see [lock_manager_of]. *)
let rehome t lc ~dead =
  let successor =
    let rec go k =
      if k >= t.n_nodes then None
      else
        let c = (dead + k) mod t.n_nodes in
        if Lifecycle.alive lc c then Some c else go (k + 1)
    in
    go 1
  in
  match successor with
  | None -> ()
  | Some s ->
      let moved = ref 0 in
      Hashtbl.iter
        (fun lock ml ->
          if lock_manager_of t lock = dead then begin
            Hashtbl.replace t.lock_home lock s;
            Hashtbl.replace t.nodes.(s).mlocks lock ml;
            incr moved
          end)
        t.nodes.(dead).mlocks;
      if t.barrier_home = dead then begin
        (* Arrival state lives in [t.barriers], visible to the successor;
           only the role moves. *)
        t.barrier_home <- s;
        incr moved
      end;
      if !moved > 0 then Counters.add t.counters "recovery.rehomes" !moved

let handler_loop t nd fiber =
  let ov = overhead t in
  let rec loop () =
    let env =
      Engine.with_category fiber Engine.Net_wait (fun () ->
          Reliable.recv t.net fiber ~node:nd.id)
    in
    Engine.with_category fiber Engine.Protocol (fun () ->
        Engine.advance fiber ov.handler;
        (* CPU time spent serving: charged back to the application unless
           the message completes one of its own waits. *)
        (match env.Msg.body with
        | Proto.Page_copy _ | Proto.Page_grant _ | Proto.Lock_grant _
        | Proto.Barrier_depart _ ->
            ()
        | _ -> nd.steal := !(nd.steal) + ov.handler + ov.fixed_recv);
        dispatch t fiber nd ~src:env.Msg.src env.Msg.body);
    loop ()
  in
  loop ()

let start t =
  Reliable.start t.net;
  (match t.lifecycle with
  | None -> ()
  | Some lc ->
      Lifecycle.on_ckpt lc (fun ~at:_ ->
          Array.iter
            (fun nd -> if Lifecycle.alive lc nd.id then checkpoint t nd)
            t.nodes);
      Lifecycle.on_detect lc (fun ~node ~at:_ -> rehome t lc ~dead:node);
      Lifecycle.on_restart lc (fun ~node ~at:_ -> rejoin t t.nodes.(node)));
  Array.iter
    (fun nd ->
      ignore
        (Engine.spawn t.eng ~daemon:true
           ~name:(Printf.sprintf "ivy-handler-%d" nd.id)
           ~at:0
           (fun fiber -> handler_loop t nd fiber)))
    t.nodes

let retx_note t = Reliable.pending_note t.net

(* ---------------- application-facing operations -------------------- *)

let fault t fiber nd page (kind : page_access) =
  Engine.sync fiber;
  drain_steal fiber nd;
  let want_write = kind = Write in
  let satisfied () =
    match nd.access.(page) with
    | Write -> true
    | Read -> not want_write
    | Invalid -> false
  in
  let rec wait_turn () =
    match Hashtbl.find_opt nd.inflight page with
    | Some wq when not (satisfied ()) ->
        (* Another co-located processor is fetching this page. *)
        Engine.with_category fiber Engine.Net_wait (fun () ->
            Waitq.wait fiber wq);
        wait_turn ()
    | Some _ | None -> ()
  in
  wait_turn ();
  if not (satisfied ()) then
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  begin
    let wq = Waitq.create t.eng in
    Hashtbl.replace nd.inflight page wq;
    Counters.incr t.counters
      (if want_write then "ivy.write_faults" else "ivy.read_faults");
    Engine.instant fiber "ivy.fault";
    Engine.advance fiber (overhead t).handler;
    let req = fresh_req nd in
    let mb = register_req t nd req in
    let mgr = manager_of t page in
    let body =
      if want_write then Proto.Write_req { page; requester = nd.id; req }
      else Proto.Read_req { page; requester = nd.id; req }
    in
    deliver t fiber ~src:nd.id ~dst:mgr body;
    (match
       Engine.with_category fiber Engine.Net_wait (fun () ->
           Mailbox.recv fiber mb)
     with
    | Proto.Page_copy { data; _ } ->
        install_page t fiber nd page data;
        set_access nd page Read
    | Proto.Page_grant { data; _ } ->
        Option.iter (install_page t fiber nd page) data;
        set_access nd page Write
    | _ -> failwith "ivy: unexpected fault response");
    deliver t fiber ~src:nd.id ~dst:mgr
      (Proto.Txn_done
         { page; requester = nd.id; write = (if want_write then 1 else 0) });
    Hashtbl.remove nd.pending_reqs req;
    Hashtbl.remove nd.inflight page;
    ignore (Waitq.wake_all wq ~at:(Engine.clock fiber))
  end

let read_guard t fiber ~node addr =
  if t.n_nodes > 1 then begin
    let nd = t.nodes.(node) in
    let page = page_of t addr in
    while nd.access.(page) = Invalid do
      fault t fiber nd page Read
    done
  end

let write_guard t fiber ~node addr =
  (* A single process never write-protects pages. *)
  if t.n_nodes > 1 then begin
    let nd = t.nodes.(node) in
    let page = page_of t addr in
    while nd.access.(page) <> Write do
      fault t fiber nd page Write
    done
  end

(* Range guards: one guard per overlapped page, in address order, handing
   each in-page run to [f run_addr run_words] right after its guard — the
   per-page interleaving keeps the sequence observably identical to the
   per-word loop (see the TreadMarks counterpart).  [f] must not yield. *)

let read_range_guard t fiber ~node addr words ~f =
  if t.n_nodes = 1 then f addr words
  else begin
    let nd = t.nodes.(node) in
    let pw = t.page_words in
    let stop = addr + words in
    let a = ref addr in
    while !a < stop do
      let page = page_of t !a in
      let run = min ((page + 1) * pw) stop - !a in
      while nd.access.(page) = Invalid do
        fault t fiber nd page Read
      done;
      f !a run;
      a := !a + run
    done
  end

let write_range_guard t fiber ~node addr words ~f =
  if t.n_nodes = 1 then f addr words
  else begin
    let nd = t.nodes.(node) in
    let pw = t.page_words in
    let stop = addr + words in
    let a = ref addr in
    while !a < stop do
      let page = page_of t !a in
      let run = min ((page + 1) * pw) stop - !a in
      while nd.access.(page) <> Write do
        fault t fiber nd page Write
      done;
      f !a run;
      a := !a + run
    done
  end

let acquire t fiber ~node ~lock =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  let req = fresh_req nd in
  let mb = register_req t nd req in
  deliver t fiber ~src:nd.id
    ~dst:(lock_manager_of t lock)
    (Proto.Lock_req { lock; requester = nd.id; req });
  (match
     Engine.with_category fiber Engine.Lock_wait (fun () ->
         Mailbox.recv fiber mb)
   with
  | Proto.Lock_grant _ -> ()
  | _ -> failwith "ivy: unexpected lock response");
  Hashtbl.remove nd.pending_reqs req;
  Counters.incr t.counters "ivy.lock_acquires"

let release t fiber ~node ~lock =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  Engine.with_category fiber Engine.Protocol (fun () ->
      deliver t fiber ~src:nd.id
        ~dst:(lock_manager_of t lock)
        (Proto.Unlock { lock; requester = nd.id }))

let barrier_arrive t fiber ~node ~id =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  let req = fresh_req nd in
  let mb = register_req t nd req in
  deliver t fiber ~src:nd.id ~dst:t.barrier_home
    (Proto.Barrier_arrive { barrier = id; node = nd.id; req });
  (match
     Engine.with_category fiber Engine.Barrier_wait (fun () ->
         Mailbox.recv fiber mb)
   with
  | Proto.Barrier_depart _ -> ()
  | _ -> failwith "ivy: unexpected barrier response");
  Hashtbl.remove nd.pending_reqs req

let check_invariants t =
  for page = 0 to t.n_pages - 1 do
    let mgr = t.nodes.(manager_of t page) in
    let mp = Hashtbl.find mgr.mpages page in
    (* Owner must hold a valid copy (unless a transaction is in flight). *)
    if not mp.busy then begin
      if t.nodes.(mp.owner).access.(page) = Invalid then
        failwith
          (Printf.sprintf "ivy: page %d owner %d has no copy" page mp.owner);
      Array.iter
        (fun nd ->
          match nd.access.(page) with
          | Invalid -> ()
          | Read ->
              if not (Iset.mem nd.id mp.copyset) then
                failwith
                  (Printf.sprintf "ivy: page %d copy at %d not in copyset"
                     page nd.id)
          | Write ->
              if nd.id <> mp.owner then
                failwith
                  (Printf.sprintf "ivy: page %d writer %d is not owner %d"
                     page nd.id mp.owner))
        t.nodes
    end
  done
