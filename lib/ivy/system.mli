(** An IVY-style sequentially-consistent page-based DSM (Li & Hudak's
    "Memory coherence in shared virtual memory systems", cited by the
    paper as the classic software shared memory).

    Contrast with TreadMarks ({!Shm_tmk.System}): one writer at a time per
    page, whole-page transfers instead of diffs, invalidations on every
    write fault instead of at synchronization points.  Two processors
    writing disjoint halves of the same page ping-pong the full 4 KB back
    and forth — the false-sharing failure mode that motivated
    multiple-writer lazy release consistency.

    Each page has a static manager tracking the owner and copyset;
    transactions on a page serialize through the manager (queued when
    busy), and write faults invalidate every copy (acked) before ownership
    transfers.  Locks are centralized-manager queued locks; barriers a
    centralized counter.  The usage discipline matches {!Shm_tmk.System}:
    guard immediately before each access. *)

type t

(** Raised when a protocol message violates the manager's page state
    machine (e.g. a transaction with an [Invalid] access kind, which no
    well-formed request produces).  Carries the page, the requesting node,
    the manager node, and a rendered manager-state description, so a
    protocol bug surfaced under a chaos schedule is diagnosable from the
    exception alone (a [Printexc] printer is registered). *)
exception
  Proto_error of {
    page : int;
    requester : int;
    manager : int;
    state : string;
  }

(** [create ?lifecycle ...]: with [?lifecycle] the system arms crash
    recovery (DESIGN.md §13): page-granular failure-atomic checkpoints
    on the lifecycle's tick ([ckpt.count]/[ckpt.bytes]), lock- and
    barrier-manager re-homing to a surviving node on crash detection
    ([recovery.rehomes]/[recovery.forwards]), and an online rejoin at
    restart that invalidates every non-owned page so it re-fetches
    through the manager ([recovery.count]/[recovery.cycles]/
    [recovery.invalidated]).  The page {e directory} is NOT re-homed:
    page requests to a down manager stall in retransmit queues until it
    restarts (documented deviation).  The caller must attach the same
    lifecycle to the fabric before [create].  Without [?lifecycle] every
    code path is byte-identical to the pre-crash-layer system. *)
val create :
  ?lifecycle:Shm_sim.Lifecycle.t ->
  Shm_sim.Engine.t ->
  Shm_stats.Counters.t ->
  Proto.t Shm_net.Reliable.packet Shm_net.Fabric.t ->
  page_words:int ->
  shared_words:int ->
  memories:Shm_memsys.Memory.t array ->
  t

val memory : t -> node:int -> Shm_memsys.Memory.t

(** [set_page_hook t f]: [f ~node ~page] fires when a page's contents are
    replaced (so platforms can invalidate cached lines). *)
val set_page_hook : t -> (node:int -> page:int -> unit) -> unit

val start : t -> unit

(** [retx_note t] is {!Shm_net.Reliable.pending_note} for the system's
    channel — pass as [diag] to {!Shm_sim.Engine.run}. *)
val retx_note : t -> string

val page_of : t -> int -> int

(** [page_shift t] is [log2 page_words], or [-1] when [page_words] is not
    a power of two (then the TLB fast path must not be used). *)
val page_shift : t -> int

(** [access_rights t ~node]: one byte per page mirroring the node's access
    — ['\000'] Invalid, ['\001'] Read, ['\002'] Write.  Read-only for
    callers; platforms index it with [addr lsr page_shift] to skip the
    guard call when the page is already accessible. *)
val access_rights : t -> node:int -> Bytes.t

val read_guard : t -> Shm_sim.Engine.fiber -> node:int -> int -> unit

val write_guard : t -> Shm_sim.Engine.fiber -> node:int -> int -> unit

(** [read_range_guard t fiber ~node addr words ~f] guards each overlapped
    page once, in order, calling [f run_addr run_words] per in-page run
    immediately after that page's guard.  [f] must not yield. *)
val read_range_guard :
  t -> Shm_sim.Engine.fiber -> node:int -> int -> int ->
  f:(int -> int -> unit) -> unit

val write_range_guard :
  t -> Shm_sim.Engine.fiber -> node:int -> int -> int ->
  f:(int -> int -> unit) -> unit

val acquire : t -> Shm_sim.Engine.fiber -> node:int -> lock:int -> unit

val release : t -> Shm_sim.Engine.fiber -> node:int -> lock:int -> unit

val barrier_arrive : t -> Shm_sim.Engine.fiber -> node:int -> id:int -> unit

(** [check_invariants t]: exactly one owner per page, owner's copy valid,
    writers are owners, copysets cover every valid copy. *)
val check_invariants : t -> unit
