(* Whole-node crash/restart injection (DESIGN.md §13).

   A [t] owns the liveness state of every node in one simulation: a node
   is either alive or down-until-a-known-cycle.  Crashes come from an
   explicit schedule and/or a seeded per-window draw; each crash fires
   the registered [on_crash] hooks, schedules a detection event (the
   survivors' re-homing point) and a restart event (the crashed node's
   rejoin point), and the restart wakes every fiber parked on the node's
   gate.  The module never touches protocol state itself — the DSM
   engines register hooks — and a simulation without a policy attached
   never constructs a [t] at all, so crash-free runs stay byte-identical
   to the pre-lifecycle baseline. *)

type policy = {
  crashes : (int * int) list; (* (node, cycle) scheduled crashes *)
  crash_rate : float; (* per-node crash probability per window *)
  crash_seed : int;
  outage_cycles : int; (* crash -> restart *)
  detect_cycles : int; (* crash -> survivors notice (re-homing) *)
  ckpt_interval : int; (* 0 = no periodic checkpoints *)
  max_crashes : int; (* cap on randomly drawn crashes *)
}

let none =
  {
    crashes = [];
    crash_rate = 0.0;
    crash_seed = 0;
    outage_cycles = 1_000_000;
    detect_cycles = 200_000;
    ckpt_interval = 0;
    max_crashes = 4;
  }

let active p = p.crashes <> [] || p.crash_rate > 0.0

(* Window for the random crash draw: one draw per node per window. *)
let draw_window = 1_000_000

type t = {
  eng : Engine.t;
  policy : policy;
  nodes : int;
  down_until : int array; (* 0 = alive, else the restart cycle *)
  gates : Waitq.t array; (* app fibers of a down node park here *)
  prng : Prng.t;
  mutable drawn : int; (* randomly drawn crashes so far *)
  mutable on_crash : (node:int -> at:int -> unit) list;
  mutable on_detect : (node:int -> at:int -> unit) list;
  mutable on_restart : (node:int -> at:int -> unit) list;
  mutable on_ckpt : (at:int -> unit) list;
  c_crashes : int ref;
  c_restarts : int ref;
  c_downtime : int ref;
}

let create eng counters policy ~nodes =
  {
    eng;
    policy;
    nodes;
    down_until = Array.make nodes 0;
    gates = Array.init nodes (fun _ -> Waitq.create eng);
    prng = Prng.create ~seed:(0xC4A5_11FE lxor policy.crash_seed);
    drawn = 0;
    on_crash = [];
    on_detect = [];
    on_restart = [];
    on_ckpt = [];
    c_crashes = Shm_stats.Counters.cell counters "sim.crashes";
    c_restarts = Shm_stats.Counters.cell counters "sim.restarts";
    c_downtime = Shm_stats.Counters.cell counters "sim.downtime";
  }

let nodes t = t.nodes
let alive t node = t.down_until.(node) = 0
let down_until t node = t.down_until.(node)
let on_crash t f = t.on_crash <- t.on_crash @ [ f ]
let on_detect t f = t.on_detect <- t.on_detect @ [ f ]
let on_restart t f = t.on_restart <- t.on_restart @ [ f ]
let on_ckpt t f = t.on_ckpt <- t.on_ckpt @ [ f ]

(* Park the calling fiber until the node restarts.  The check-then-wait
   is safe because the restart wake runs as a scheduled engine callback:
   a fiber that observes the node down is guaranteed to be in the queue
   before the wake at [down_until] fires (equal-time events run in
   insertion order, and the crash that marked the node down was
   scheduled before this fiber could observe it). *)
let gate t fiber ~node =
  if t.down_until.(node) <> 0 then Waitq.wait fiber t.gates.(node)

let restart t node ~at =
  if t.down_until.(node) <> 0 then begin
    t.down_until.(node) <- 0;
    incr t.c_restarts;
    List.iter (fun f -> f ~node ~at) t.on_restart;
    ignore (Waitq.wake_all t.gates.(node) ~at)
  end

let detect t node ~at =
  (* Guard: the node may already have restarted under a short outage. *)
  if t.down_until.(node) <> 0 then
    List.iter (fun f -> f ~node ~at) t.on_detect

let crash t node ~at =
  if
    node >= 0 && node < t.nodes
    && t.down_until.(node) = 0
    && Engine.live_fibers t.eng > 0
  then begin
    let until = at + t.policy.outage_cycles in
    t.down_until.(node) <- until;
    incr t.c_crashes;
    t.c_downtime := !(t.c_downtime) + t.policy.outage_cycles;
    List.iter (fun f -> f ~node ~at) t.on_crash;
    Engine.schedule t.eng ~at:(at + t.policy.detect_cycles) (fun () ->
        detect t node ~at:(at + t.policy.detect_cycles));
    Engine.schedule t.eng ~at:until (fun () -> restart t node ~at:until)
  end

(* One crash draw per node per window.  The recurring event stops
   rescheduling once every non-daemon fiber has finished, so a run's
   event queue drains and [Engine.run] terminates. *)
let rec draw_tick t ~at =
  if Engine.live_fibers t.eng > 0 then begin
    for node = 0 to t.nodes - 1 do
      if
        t.drawn < t.policy.max_crashes
        && t.down_until.(node) = 0
        && Prng.float t.prng 1.0 < t.policy.crash_rate
      then begin
        t.drawn <- t.drawn + 1;
        crash t node ~at
      end
    done;
    Engine.schedule t.eng ~at:(at + draw_window) (fun () ->
        draw_tick t ~at:(at + draw_window))
  end

let rec ckpt_tick t ~at =
  if Engine.live_fibers t.eng > 0 then begin
    List.iter (fun f -> f ~at) t.on_ckpt;
    Engine.schedule t.eng ~at:(at + t.policy.ckpt_interval) (fun () ->
        ckpt_tick t ~at:(at + t.policy.ckpt_interval))
  end

let start t =
  List.iter
    (fun (node, at) -> Engine.schedule t.eng ~at (fun () -> crash t node ~at))
    t.policy.crashes;
  if t.policy.crash_rate > 0.0 then
    Engine.schedule t.eng ~at:draw_window (fun () ->
        draw_tick t ~at:draw_window);
  if t.policy.ckpt_interval > 0 then
    Engine.schedule t.eng ~at:t.policy.ckpt_interval (fun () ->
        ckpt_tick t ~at:t.policy.ckpt_interval)

let note t =
  let b = Buffer.create 64 in
  Array.iteri
    (fun node until ->
      if until <> 0 then
        Buffer.add_string b
          (Printf.sprintf "%snode %d crashed (down until cycle %d)"
             (if Buffer.length b = 0 then "" else "; ")
             node until))
    t.down_until;
  if Buffer.length b = 0 then "all nodes alive" else Buffer.contents b
