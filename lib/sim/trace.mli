(** In-memory trace buffer and Chrome-trace JSON writer.

    A [Trace.t] collects the segments and instant events streamed by an
    instrumented {!Engine} (hook it up with [Engine.create
    ~tracer:(Trace.tracer tr) ()]) and renders them in the Chrome trace
    event format, loadable in [chrome://tracing] / Perfetto: one track per
    simulated processor (complete ["ph":"X"] spans labelled with the
    attribution category) plus instant ["ph":"i"] events for faults,
    retransmissions, invalidations and write-notice application.

    The writer emits exactly one JSON object per line, with timestamps
    monotonically non-decreasing, so [shmsim trace-check] can validate the
    file line-by-line without a JSON parser. *)

type t

val create : unit -> t

(** [tracer t] is the {!Engine.tracer} that appends into [t].  Track
    display names are registered automatically as fibers are spawned. *)
val tracer : t -> Engine.tracer

val span_count : t -> int
val instant_count : t -> int

(** [write_chrome t oc ~clock_mhz] writes the trace as Chrome trace event
    JSON.  Timestamps and durations are microseconds of simulated time:
    [cycles /. clock_mhz]. *)
val write_chrome : t -> out_channel -> clock_mhz:float -> unit

val write_chrome_file : t -> string -> clock_mhz:float -> unit
