type span = {
  s_track : int;
  s_cat : Engine.category;
  s_start : int;
  s_stop : int;
}

type mark = { m_track : int; m_name : string; m_at : int }

type t = {
  mutable tracks : (int * string) list; (* fiber id -> display name *)
  mutable spans : span list; (* accumulated in reverse order *)
  mutable marks : mark list;
}

let create () = { tracks = []; spans = []; marks = [] }

let span_count t = List.length t.spans
let instant_count t = List.length t.marks

let tracer t =
  {
    Engine.trace_track =
      (fun ~track ~name -> t.tracks <- (track, name) :: t.tracks);
    trace_segment =
      (fun ~track ~cat ~start ~stop ->
        t.spans <- { s_track = track; s_cat = cat;
                     s_start = start; s_stop = stop } :: t.spans);
    trace_instant =
      (fun ~name ~track ~at ->
        t.marks <- { m_track = track; m_name = name; m_at = at } :: t.marks);
  }

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Chrome trace event format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
   One JSON object per line so the output can be validated line-by-line
   ("shmsim trace-check") without a JSON parser.  Timestamps are in
   microseconds of simulated time ([cycles / clock_mhz]); "pid" is always 0
   and "tid" is the fiber id, with a thread_name metadata record per track. *)
let write_chrome t oc ~clock_mhz =
  let us cycles = float_of_int cycles /. clock_mhz in
  let track_list = List.sort compare (List.rev t.tracks) in
  (* Merge spans and instants into one stream sorted by simulated time
     (span time = its start), then by track, so timestamps in the file are
     monotonically non-decreasing. *)
  let events =
    List.rev_map (fun s -> (s.s_start, s.s_track, `Span s)) t.spans
    @ List.rev_map (fun m -> (m.m_at, m.m_track, `Mark m)) t.marks
    |> List.stable_sort (fun (ta, ka, _) (tb, kb, _) ->
           match compare ta tb with 0 -> compare ka kb | c -> c)
  in
  output_string oc "{\"traceEvents\":[\n";
  let first = ref true in
  let emit line =
    if !first then first := false else output_string oc ",\n";
    output_string oc line
  in
  List.iter
    (fun (id, name) ->
      emit
        (Printf.sprintf
           "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"%s\"}}"
           id (json_escape name)))
    track_list;
  List.iter
    (fun (_, _, ev) ->
      match ev with
      | `Span s ->
          emit
            (Printf.sprintf
               "{\"ph\":\"X\",\"name\":\"%s\",\"cat\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
               (Engine.category_name s.s_cat)
               (Engine.category_name s.s_cat)
               s.s_track (us s.s_start)
               (us (s.s_stop - s.s_start)))
      | `Mark m ->
          emit
            (Printf.sprintf
               "{\"ph\":\"i\",\"name\":\"%s\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"s\":\"t\"}"
               (json_escape m.m_name) m.m_track (us m.m_at)))
    events;
  output_string oc "\n],\"displayTimeUnit\":\"ms\"}\n"

let write_chrome_file t path ~clock_mhz =
  let oc = open_out path in
  Fun.protect
    (fun () -> write_chrome t oc ~clock_mhz)
    ~finally:(fun () -> close_out oc)
