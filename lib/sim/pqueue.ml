type 'a entry = { time : int; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let length q = q.size

let is_empty q = q.size = 0

let less a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

(* Sentinel for vacant slots.  It is never compared and its [value] is
   never read, so the cast is confined to filling unused slots; keeping a
   real entry there instead would retain a dead event (and its closure)
   for as long as the queue lives. *)
let dummy_entry : type a. unit -> a entry =
  let d = { time = min_int; seq = min_int; value = Obj.repr () } in
  fun () -> (Obj.magic d : a entry)

let grow q =
  let cap = Array.length q.heap in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let heap = Array.make new_cap (dummy_entry ()) in
  Array.blit q.heap 0 heap 0 q.size;
  q.heap <- heap

let push q ~time value =
  let entry = { time; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  if q.size = Array.length q.heap then grow q;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  let heap = q.heap in
  heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less entry heap.(parent) then begin
      heap.(!i) <- heap.(parent);
      heap.(parent) <- entry;
      i := parent
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then raise Not_found;
  let heap = q.heap in
  let root = heap.(0) in
  q.size <- q.size - 1;
  let last = heap.(q.size) in
  (* Clear the vacated slot: it would otherwise keep [last] (and its
     event closure) reachable until the slot is next overwritten. *)
  heap.(q.size) <- dummy_entry ();
  if q.size > 0 then begin
    heap.(0) <- last;
    (* Sift down. *)
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.size && less heap.(l) heap.(!smallest) then smallest := l;
      if r < q.size && less heap.(r) heap.(!smallest) then smallest := r;
      if !smallest <> !i then begin
        let tmp = heap.(!i) in
        heap.(!i) <- heap.(!smallest);
        heap.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  (root.time, root.value)

let min_time q = if q.size = 0 then None else Some q.heap.(0).time
