(* Hierarchical timing wheel with a binary-heap outlier tier.

   Events are nodes in a preallocated pool of parallel arrays
   ([times]/[seqs]/[vals]/[nxt]); pushing in steady state reuses a node
   off the free list and links it into a slot chain, allocating nothing.

   Wheel geometry: three levels of 256 slots.  Level [l] covers times
   that agree with [start] (the last popped time) on all bits above
   [8*(l+1)]; the slot index is bits [8*l .. 8*l+7] of the event time.
   Classification is a single [lxor] against [start].  Level-0 slots are
   one tick wide, so a slot chain is a FIFO of same-time events and its
   head carries the smallest sequence number.  Times outside the 2^24
   window (or below [start], which the engine never produces because
   [schedule] clamps to the current time) go to the heap tier, ordered
   by [(time, seq)] like the wheel.

   Popping takes whichever of (wheel head, heap root) is smaller under
   [(time, seq)].  Finding the wheel head scans occupancy bitmaps; when
   level 0 is exhausted, [start] advances to the first occupied
   higher-level slot and that slot's chain cascades down, preserving
   chain order.  Cascading keeps FIFO ties intact: a cascaded chain is in
   sequence order, destination slots are empty when a cascade runs (level
   0 is only refilled once drained; crossing a 2^16 boundary implies
   levels 0-1 are empty), and later direct pushes always carry larger
   sequence numbers. *)

type 'a t = {
  dummy : 'a;
  (* Node pool.  [nxt] doubles as the slot-chain link and the free list. *)
  mutable times : int array;
  mutable seqs : int array;
  mutable vals : 'a array;
  mutable nxt : int array;
  mutable free : int;
  (* Wheel: 3 levels x 256 slots; [head]/[tail] hold node indices, -1 =
     empty.  [occ] is the occupancy bitmap, 8 words of 32 bits per level. *)
  head : int array;
  tail : int array;
  occ : int array;
  mutable start : int;
  mutable wheel_count : int;
  (* Outlier tier: binary heap of node indices ordered by (time, seq). *)
  mutable heap : int array;
  mutable heap_size : int;
  mutable next_seq : int;
  (* Cached minimum time; [min_int] means stale (recompute on demand). *)
  mutable cached_min : int;
  (* Cached minimum node and its level-0 slot (-1 = heap tier), so the
     engine's peek-then-pop costs one bitmap scan per event, not two.
     [cached_node = -2] means only the time is cached, not the node (the
     minimum arrived by a push into a level-1/2 slot, where it is not
     the chain head). *)
  mutable cached_node : int;
  mutable cached_slot : int;
}

let initial_cap = 64

let create ~dummy =
  let nxt = Array.init initial_cap (fun i -> i + 1) in
  nxt.(initial_cap - 1) <- -1;
  {
    dummy;
    times = Array.make initial_cap 0;
    seqs = Array.make initial_cap 0;
    vals = Array.make initial_cap dummy;
    nxt;
    free = 0;
    head = Array.make 768 (-1);
    tail = Array.make 768 (-1);
    occ = Array.make 24 0;
    start = 0;
    wheel_count = 0;
    heap = Array.make 16 (-1);
    heap_size = 0;
    next_seq = 0;
    cached_min = max_int;
    cached_node = -2;
    cached_slot = -1;
  }

let length q = q.wheel_count + q.heap_size

let is_empty q = q.wheel_count = 0 && q.heap_size = 0

(* ------------------------------------------------------------------ *)
(* Node pool                                                           *)

let grow_pool q =
  let cap = Array.length q.times in
  let new_cap = cap * 2 in
  let times = Array.make new_cap 0
  and seqs = Array.make new_cap 0
  and vals = Array.make new_cap q.dummy
  and nxt = Array.make new_cap (-1) in
  Array.blit q.times 0 times 0 cap;
  Array.blit q.seqs 0 seqs 0 cap;
  Array.blit q.vals 0 vals 0 cap;
  Array.blit q.nxt 0 nxt 0 cap;
  for i = cap to new_cap - 2 do
    nxt.(i) <- i + 1
  done;
  nxt.(new_cap - 1) <- -1;
  q.times <- times;
  q.seqs <- seqs;
  q.vals <- vals;
  q.nxt <- nxt;
  q.free <- cap

let alloc q ~time ~seq v =
  if q.free = -1 then grow_pool q;
  let n = q.free in
  q.free <- q.nxt.(n);
  q.times.(n) <- time;
  q.seqs.(n) <- seq;
  q.vals.(n) <- v;
  q.nxt.(n) <- -1;
  n

(* Clear the payload so a dead event's closure isn't retained. *)
let release q n =
  q.vals.(n) <- q.dummy;
  q.nxt.(n) <- q.free;
  q.free <- n

(* ------------------------------------------------------------------ *)
(* Wheel slots                                                         *)

let slot_push q lvl idx n =
  let s = (lvl lsl 8) lor idx in
  (match q.tail.(s) with
  | -1 ->
      q.head.(s) <- n;
      let w = (lvl lsl 3) lor (idx lsr 5) in
      q.occ.(w) <- q.occ.(w) lor (1 lsl (idx land 31))
  | t -> q.nxt.(t) <- n);
  q.tail.(s) <- n

(* First set bit of a nonzero 32-bit chunk. *)
let ctz32 x =
  let n = ref 0 and x = ref x in
  if !x land 0xFFFF = 0 then begin
    n := 16;
    x := !x lsr 16
  end;
  if !x land 0xFF = 0 then begin
    n := !n + 8;
    x := !x lsr 8
  end;
  if !x land 0xF = 0 then begin
    n := !n + 4;
    x := !x lsr 4
  end;
  if !x land 0x3 = 0 then begin
    n := !n + 2;
    x := !x lsr 2
  end;
  if !x land 0x1 = 0 then incr n;
  !n

(* First occupied slot index >= [from] at [lvl], or -1. *)
let scan q lvl from =
  if from > 255 then -1
  else begin
    let base = lvl lsl 3 in
    let wi = ref (from lsr 5) in
    let w = ref (q.occ.(base + !wi) land (-1 lsl (from land 31)) land 0xFFFFFFFF) in
    let res = ref (-1) in
    while !res = -1 && !wi < 8 do
      if !w <> 0 then res := (!wi lsl 5) lor ctz32 !w
      else begin
        incr wi;
        if !wi < 8 then w := q.occ.(base + !wi)
      end
    done;
    !res
  end

(* Detach slot [idx] of level [lvl] and redistribute its chain against
   the current [start].  Chain order (= sequence order) is preserved:
   same-time events go to the same destination slot in order. *)
let cascade q lvl idx =
  let s = (lvl lsl 8) lor idx in
  let n = ref q.head.(s) in
  q.head.(s) <- -1;
  q.tail.(s) <- -1;
  let w = (lvl lsl 3) lor (idx lsr 5) in
  q.occ.(w) <- q.occ.(w) land lnot (1 lsl (idx land 31));
  while !n <> -1 do
    let node = !n in
    n := q.nxt.(node);
    q.nxt.(node) <- -1;
    let t = q.times.(node) in
    let x = t lxor q.start in
    if x < 0x100 then slot_push q 0 (t land 0xff) node
    else slot_push q 1 ((t lsr 8) land 0xff) node
  done

(* Level-0 slot index of the wheel's minimum entry, cascading higher
   levels down as needed (which advances [start]); -1 if the wheel is
   empty.  Precondition maintained throughout: every wheel entry's time
   is >= [start], and the slot containing [start] at levels 1-2 is
   empty. *)
let rec wheel_min_slot q =
  if q.wheel_count = 0 then -1
  else begin
    let i0 = scan q 0 (q.start land 0xff) in
    if i0 >= 0 then i0
    else begin
      let i1 = scan q 1 (((q.start lsr 8) land 0xff) + 1) in
      if i1 >= 0 then begin
        q.start <- (q.start land lnot 0xffff) lor (i1 lsl 8);
        cascade q 1 i1;
        wheel_min_slot q
      end
      else begin
        let i2 = scan q 2 (((q.start lsr 16) land 0xff) + 1) in
        if i2 >= 0 then begin
          q.start <- (q.start land lnot 0xffffff) lor (i2 lsl 16);
          cascade q 2 i2;
          wheel_min_slot q
        end
        else -1
      end
    end
  end

(* ------------------------------------------------------------------ *)
(* Heap tier                                                           *)

let heap_less q a b =
  q.times.(a) < q.times.(b)
  || (q.times.(a) = q.times.(b) && q.seqs.(a) < q.seqs.(b))

let heap_push q n =
  if q.heap_size = Array.length q.heap then begin
    let heap = Array.make (2 * Array.length q.heap) (-1) in
    Array.blit q.heap 0 heap 0 q.heap_size;
    q.heap <- heap
  end;
  let heap = q.heap in
  let i = ref q.heap_size in
  q.heap_size <- q.heap_size + 1;
  heap.(!i) <- n;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if heap_less q n heap.(parent) then begin
      heap.(!i) <- heap.(parent);
      heap.(parent) <- n;
      i := parent
    end
    else continue := false
  done

let heap_pop_root q =
  let heap = q.heap in
  let root = heap.(0) in
  q.heap_size <- q.heap_size - 1;
  let last = heap.(q.heap_size) in
  heap.(q.heap_size) <- -1;
  if q.heap_size > 0 then begin
    heap.(0) <- last;
    let i = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < q.heap_size && heap_less q heap.(l) heap.(!smallest) then
        smallest := l;
      if r < q.heap_size && heap_less q heap.(r) heap.(!smallest) then
        smallest := r;
      if !smallest <> !i then begin
        let tmp = heap.(!i) in
        heap.(!i) <- heap.(!smallest);
        heap.(!smallest) <- tmp;
        i := !smallest
      end
      else continue := false
    done
  end;
  root

(* ------------------------------------------------------------------ *)
(* Queue operations                                                    *)

(* A push that beats the cached minimum becomes the new minimum, and in
   two of the three tiers its node position is known without a scan: a
   strictly-smaller heap entry sifts to the root, and a level-0 slot it
   lands in must have been empty (all level-0 entries share [start]'s
   256-block, so a non-empty slot means an equal time, contradicting
   [time < cached_min]).  Only a minimum entering level 1/2 — appended
   at the tail of a multi-time chain — degrades the cache to time-only. *)
let push q ~time v =
  let seq = q.next_seq in
  q.next_seq <- seq + 1;
  let n = alloc q ~time ~seq v in
  let x = time lxor q.start in
  (* Past times (possible for standalone users; the engine clamps to the
     current time) and far-future times both take the heap tier. *)
  if time < q.start || x < 0 || x >= 0x1000000 then begin
    heap_push q n;
    if time < q.cached_min then begin
      q.cached_min <- time;
      q.cached_node <- n;
      q.cached_slot <- -1
    end
  end
  else begin
    q.wheel_count <- q.wheel_count + 1;
    if x < 0x100 then begin
      let s = time land 0xff in
      slot_push q 0 s n;
      if time < q.cached_min then begin
        q.cached_min <- time;
        q.cached_node <- n;
        q.cached_slot <- s
      end
    end
    else begin
      (if x < 0x10000 then slot_push q 1 ((time lsr 8) land 0xff) n
       else slot_push q 2 ((time lsr 16) land 0xff) n);
      if time < q.cached_min then begin
        q.cached_min <- time;
        q.cached_node <- -2
      end
    end
  end

(* Recompute the cached minimum (time, node, slot) from scratch.  The
   scan may cascade higher levels down, so after it runs the wheel's
   minimum is always the head of a level-0 chain.  The cached node stays
   valid across later pushes: an equal-time push appends at the chain
   tail (or sifts below the heap root), and a smaller-time push
   overwrites the cache in [push]. *)
let refresh_cache q =
  let s0 = wheel_min_slot q in
  if s0 < 0 then
    if q.heap_size > 0 then begin
      q.cached_node <- q.heap.(0);
      q.cached_slot <- -1;
      q.cached_min <- q.times.(q.cached_node)
    end
    else begin
      q.cached_node <- -2;
      q.cached_slot <- -1;
      q.cached_min <- max_int
    end
  else begin
    let wn = q.head.(s0) in
    if q.heap_size > 0 && heap_less q q.heap.(0) wn then begin
      q.cached_node <- q.heap.(0);
      q.cached_slot <- -1
    end
    else begin
      q.cached_node <- wn;
      q.cached_slot <- s0
    end;
    q.cached_min <- q.times.(q.cached_node)
  end

let min_time_exn q =
  if q.cached_min <> min_int then q.cached_min
  else begin
    refresh_cache q;
    q.cached_min
  end

let min_time q =
  let m = min_time_exn q in
  if m = max_int && is_empty q then None else Some m

(* Unlink the minimum node and return its index.
   @raise Not_found if the queue is empty. *)
let take_min q =
  if q.cached_node = -2 then refresh_cache q;
  let n = q.cached_node in
  if n < 0 then raise Not_found;
  let s0 = q.cached_slot in
  if s0 >= 0 then begin
    (* Pop the head of the level-0 chain. *)
    let next = q.nxt.(n) in
    q.head.(s0) <- next;
    q.wheel_count <- q.wheel_count - 1;
    (* Advancing [start] to the popped time stays within the current
       256-block (level-0 slots hold times >= start in that block), so
       no cascade is needed and the push-classification invariants
       hold. *)
    q.start <- q.times.(n);
    if next <> -1 then
      (* The rest of the chain shares the popped time, and the heap tier
         cannot hold that time (it would have had to be pushed with the
         time already below [start]), so the chain head is the next
         minimum: same-timestamp batches drain without a single scan. *)
      q.cached_node <- next
    else begin
      q.tail.(s0) <- -1;
      q.occ.(s0 lsr 5) <- q.occ.(s0 lsr 5) land lnot (1 lsl (s0 land 31));
      q.cached_min <- (if q.wheel_count = 0 && q.heap_size = 0 then max_int
                       else min_int);
      q.cached_node <- -2;
      q.cached_slot <- -1
    end
  end
  else begin
    ignore (heap_pop_root q);
    q.cached_min <- (if q.wheel_count = 0 && q.heap_size = 0 then max_int
                     else min_int);
    q.cached_node <- -2;
    q.cached_slot <- -1
  end;
  n

let pop q =
  let n = take_min q in
  let time = q.times.(n) and v = q.vals.(n) in
  release q n;
  (time, v)

let pop_event q =
  let n = take_min q in
  let v = q.vals.(n) in
  release q n;
  v
