exception
  Deadlock of { time : int; blocked : (string * int) list; note : string }

exception
  Watchdog of {
    time : int;
    limit : int;
    blocked : (string * int) list;
    note : string;
  }

let render_blocked blocked =
  String.concat ", "
    (List.map (fun (name, clock) -> Printf.sprintf "%s@%d" name clock) blocked)

let render_note = function "" -> "" | note -> "; " ^ note

let () =
  Printexc.register_printer (function
    | Deadlock { time; blocked; note } ->
        Some
          (Printf.sprintf "Engine.Deadlock at t=%d (%d blocked): %s%s" time
             (List.length blocked) (render_blocked blocked) (render_note note))
    | Watchdog { time; limit; blocked; note } ->
        Some
          (Printf.sprintf
             "Engine.Watchdog: event at t=%d exceeds max_cycles=%d (%d \
              blocked): %s%s"
             time limit (List.length blocked) (render_blocked blocked)
             (render_note note))
    | _ -> None)

(* Execution-time attribution.  Every simulated cycle a fiber spends is
   charged to exactly one category; [Compute] is the default and protocol
   layers re-scope sections with [with_category].  The set mirrors the
   paper's execution-time breakdowns (computation / protocol overhead /
   idle waiting), refined per platform family. *)
type category =
  | Compute
  | Protocol
  | Net_wait
  | Lock_wait
  | Barrier_wait
  | Diff
  | Twin
  | Mem_stall

let categories =
  [ Compute; Protocol; Net_wait; Lock_wait; Barrier_wait; Diff; Twin; Mem_stall ]

let num_categories = 8

let cat_index = function
  | Compute -> 0
  | Protocol -> 1
  | Net_wait -> 2
  | Lock_wait -> 3
  | Barrier_wait -> 4
  | Diff -> 5
  | Twin -> 6
  | Mem_stall -> 7

let category_name = function
  | Compute -> "compute"
  | Protocol -> "protocol"
  | Net_wait -> "net_wait"
  | Lock_wait -> "lock_wait"
  | Barrier_wait -> "barrier_wait"
  | Diff -> "diff"
  | Twin -> "twin"
  | Mem_stall -> "mem_stall"

let category_of_index = function
  | 0 -> Compute
  | 1 -> Protocol
  | 2 -> Net_wait
  | 3 -> Lock_wait
  | 4 -> Barrier_wait
  | 5 -> Diff
  | 6 -> Twin
  | 7 -> Mem_stall
  | i -> invalid_arg (Printf.sprintf "Engine.category_of_index: %d" i)

type tracer = {
  trace_track : track:int -> name:string -> unit;
  trace_segment : track:int -> cat:category -> start:int -> stop:int -> unit;
  trace_instant : name:string -> track:int -> at:int -> unit;
}

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable time : int;
  mutable live : int;
  mutable next_fiber_id : int;
  mutable fibers : fiber list; (* all spawned, newest first; suspended ones
                                  (cont <> None) feed deadlock reports *)
  einstr : bool;
  tracer : tracer option;
}

and fiber = {
  fid : int;
  fname : string;
  eng : t;
  daemon : bool;
  instr : bool;
  fstart : int;
  acats : int array; (* per-category cycle totals; [||] when not instr *)
  mutable fcat : int; (* index of the current category *)
  mutable seg_start : int; (* clock at which the current trace segment began *)
  mutable fclock : int;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable finished : bool;
}

type _ Effect.t +=
  | Yield : fiber -> unit Effect.t
  | Park : fiber -> unit Effect.t

let create ?(instrument = false) ?tracer () =
  { queue = Pqueue.create ~dummy:ignore; time = 0; live = 0; next_fiber_id = 0;
    fibers = [];
    einstr = instrument || tracer <> None;
    tracer }

let instrumented t = t.einstr

let now t = t.time

let live_fibers t = t.live

let schedule t ~at f =
  let at = max at t.time in
  Pqueue.push t.queue ~time:at f

let clock f = f.fclock
let name f = f.fname
let id f = f.fid
let engine f = f.eng

let[@inline] advance f n =
  if f.instr then f.acats.(f.fcat) <- f.acats.(f.fcat) + n;
  f.fclock <- f.fclock + n

let set_clock f time =
  if time > f.fclock then begin
    if f.instr then f.acats.(f.fcat) <- f.acats.(f.fcat) + (time - f.fclock);
    f.fclock <- time
  end

(* Emit the open trace segment [seg_start, fclock) and start a new one. *)
let flush_segment f =
  (match f.eng.tracer with
  | Some tr when f.fclock > f.seg_start ->
      tr.trace_segment ~track:f.fid
        ~cat:(category_of_index f.fcat)
        ~start:f.seg_start ~stop:f.fclock
  | Some _ | None -> ());
  f.seg_start <- f.fclock

let[@inline] set_category_index f i =
  if i <> f.fcat then begin
    flush_segment f;
    f.fcat <- i
  end

let with_category f cat body =
  if not f.instr then body ()
  else begin
    let saved = f.fcat in
    set_category_index f (cat_index cat);
    match body () with
    | v ->
        set_category_index f saved;
        v
    | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        set_category_index f saved;
        Printexc.raise_with_backtrace e bt
  end

let instant f name =
  match f.eng.tracer with
  | None -> ()
  | Some tr -> tr.trace_instant ~name ~track:f.fid ~at:f.fclock

let breakdown f =
  if not f.instr then []
  else List.map (fun c -> (c, f.acats.(cat_index c))) categories

let attributed_total f = Array.fold_left ( + ) 0 f.acats

let check_attribution f =
  if f.instr then begin
    let total = attributed_total f in
    let elapsed = f.fclock - f.fstart in
    if total <> elapsed then
      failwith
        (Printf.sprintf
           "Engine.check_attribution: fiber %s: categories sum to %d but \
            clock advanced %d cycles"
           f.fname total elapsed)
  end

let effc : type b. fiber -> b Effect.t -> ((b, unit) Effect.Deep.continuation -> unit) option
    =
 fun _fiber eff ->
  match eff with
  | Yield f ->
      Some
        (fun k ->
          schedule f.eng ~at:f.fclock (fun () -> Effect.Deep.continue k ()))
  | Park f -> Some (fun k -> f.cont <- Some k)
  | _ -> None

let spawn t ?(daemon = false) ~name ~at body =
  let fiber =
    { fid = t.next_fiber_id; fname = name; eng = t; daemon; instr = t.einstr;
      fstart = at; acats = (if t.einstr then Array.make num_categories 0 else [||]);
      fcat = 0; seg_start = at; fclock = at;
      cont = None; finished = false }
  in
  t.next_fiber_id <- t.next_fiber_id + 1;
  t.fibers <- fiber :: t.fibers;
  (match t.tracer with
  | Some tr -> tr.trace_track ~track:fiber.fid ~name
  | None -> ());
  if not daemon then t.live <- t.live + 1;
  let start () =
    Effect.Deep.match_with
      (fun () -> body fiber)
      ()
      {
        retc =
          (fun () ->
            if fiber.instr then flush_segment fiber;
            fiber.finished <- true;
            if not daemon then t.live <- t.live - 1);
        exnc =
          (fun e ->
            Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ()));
        effc = (fun eff -> effc fiber eff);
      }
  in
  schedule t ~at start;
  fiber

let blocked_report t =
  List.filter_map
    (fun f ->
      if f.cont = None || f.finished || f.daemon then None
      else Some (f.fname, f.fclock))
    t.fibers
  |> List.sort compare

let run ?max_cycles ?(diag = fun () -> "") t =
  let limit = match max_cycles with Some l -> l | None -> max_int in
  let queue = t.queue in
  (* The inner loop reads the (cached) minimum time and pops just the
     event closure, so draining a same-timestamp batch is a sentinel
     compare, a pop, and a call per event — no option or pair boxing. *)
  let running = ref true in
  while !running do
    let time = Pqueue.min_time_exn queue in
    if time = max_int && Pqueue.is_empty queue then running := false
    else if time > limit then
      raise
        (Watchdog { time; limit; blocked = blocked_report t; note = diag () })
    else begin
      t.time <- time;
      (Pqueue.pop_event queue) ()
    end
  done;
  (* Parked daemons never return, so their last open segment is flushed
     here rather than in [retc]. *)
  if t.tracer <> None then
    List.iter (fun f -> if f.cont <> None then flush_segment f) t.fibers;
  if t.live > 0 then
    raise
      (Deadlock { time = t.time; blocked = blocked_report t; note = diag () })

let sync f =
  (* Fast path: if nothing is scheduled before our clock, yielding would be
     a no-op; skip the effect.  [min_time_exn] is a cached sentinel read
     ([max_int] when empty), so the common case is one compare. *)
  if Pqueue.min_time_exn f.eng.queue <= f.fclock then Effect.perform (Yield f)

let wait_until f time =
  set_clock f time;
  sync f

let suspend f = Effect.perform (Park f)

let is_suspended f = f.cont <> None

let resume t f ~at =
  match f.cont with
  | None -> invalid_arg (Printf.sprintf "Engine.resume: fiber %s not suspended" f.fname)
  | Some k ->
      f.cont <- None;
      set_clock f at;
      schedule t ~at:f.fclock (fun () -> Effect.Deep.continue k ())
