exception
  Deadlock of { time : int; blocked : (string * int) list; note : string }

exception
  Watchdog of {
    time : int;
    limit : int;
    blocked : (string * int) list;
    note : string;
  }

let render_blocked blocked =
  String.concat ", "
    (List.map (fun (name, clock) -> Printf.sprintf "%s@%d" name clock) blocked)

let render_note = function "" -> "" | note -> "; " ^ note

let () =
  Printexc.register_printer (function
    | Deadlock { time; blocked; note } ->
        Some
          (Printf.sprintf "Engine.Deadlock at t=%d (%d blocked): %s%s" time
             (List.length blocked) (render_blocked blocked) (render_note note))
    | Watchdog { time; limit; blocked; note } ->
        Some
          (Printf.sprintf
             "Engine.Watchdog: event at t=%d exceeds max_cycles=%d (%d \
              blocked): %s%s"
             time limit (List.length blocked) (render_blocked blocked)
             (render_note note))
    | _ -> None)

type t = {
  queue : (unit -> unit) Pqueue.t;
  mutable time : int;
  mutable live : int;
  mutable next_fiber_id : int;
  blocked : (int, fiber) Hashtbl.t; (* suspended fibers, for deadlock reports *)
}

and fiber = {
  fid : int;
  fname : string;
  eng : t;
  daemon : bool;
  mutable fclock : int;
  mutable cont : (unit, unit) Effect.Deep.continuation option;
  mutable finished : bool;
}

type _ Effect.t +=
  | Yield : fiber -> unit Effect.t
  | Park : fiber -> unit Effect.t

let create () =
  { queue = Pqueue.create (); time = 0; live = 0; next_fiber_id = 0;
    blocked = Hashtbl.create 64 }

let now t = t.time

let live_fibers t = t.live

let schedule t ~at f =
  let at = max at t.time in
  Pqueue.push t.queue ~time:at f

let clock f = f.fclock
let name f = f.fname
let id f = f.fid
let engine f = f.eng

let[@inline] advance f n = f.fclock <- f.fclock + n

let set_clock f time = if time > f.fclock then f.fclock <- time

let effc : type b. fiber -> b Effect.t -> ((b, unit) Effect.Deep.continuation -> unit) option
    =
 fun _fiber eff ->
  match eff with
  | Yield f ->
      Some
        (fun k ->
          schedule f.eng ~at:f.fclock (fun () -> Effect.Deep.continue k ()))
  | Park f ->
      Some
        (fun k ->
          f.cont <- Some k;
          Hashtbl.replace f.eng.blocked f.fid f)
  | _ -> None

let spawn t ?(daemon = false) ~name ~at body =
  let fiber =
    { fid = t.next_fiber_id; fname = name; eng = t; daemon; fclock = at;
      cont = None; finished = false }
  in
  t.next_fiber_id <- t.next_fiber_id + 1;
  if not daemon then t.live <- t.live + 1;
  let start () =
    Effect.Deep.match_with
      (fun () -> body fiber)
      ()
      {
        retc =
          (fun () ->
            fiber.finished <- true;
            if not daemon then t.live <- t.live - 1);
        exnc =
          (fun e ->
            Printexc.raise_with_backtrace e (Printexc.get_raw_backtrace ()));
        effc = (fun eff -> effc fiber eff);
      }
  in
  schedule t ~at start;
  fiber

let blocked_report t =
  Hashtbl.fold
    (fun _ f acc ->
      if f.finished || f.daemon then acc else (f.fname, f.fclock) :: acc)
    t.blocked []
  |> List.sort compare

let run ?max_cycles ?(diag = fun () -> "") t =
  let limit = match max_cycles with Some l -> l | None -> max_int in
  while not (Pqueue.is_empty t.queue) do
    let time, event = Pqueue.pop t.queue in
    if time > limit then
      raise
        (Watchdog
           { time; limit; blocked = blocked_report t; note = diag () });
    t.time <- time;
    event ()
  done;
  if t.live > 0 then
    raise
      (Deadlock { time = t.time; blocked = blocked_report t; note = diag () })

let sync f =
  (* Fast path: if nothing is scheduled before our clock, yielding would be
     a no-op; skip the effect. *)
  match Pqueue.min_time f.eng.queue with
  | Some earliest when earliest <= f.fclock -> Effect.perform (Yield f)
  | Some _ | None -> ()

let wait_until f time =
  set_clock f time;
  sync f

let suspend f = Effect.perform (Park f)

let is_suspended f = f.cont <> None

let resume t f ~at =
  match f.cont with
  | None -> invalid_arg (Printf.sprintf "Engine.resume: fiber %s not suspended" f.fname)
  | Some k ->
      f.cont <- None;
      Hashtbl.remove t.blocked f.fid;
      set_clock f at;
      schedule t ~at:f.fclock (fun () -> Effect.Deep.continue k ())
