(** Hierarchical timing-wheel priority queue keyed by [(time, seq)].

    The sequence number is assigned internally at insertion, so two entries
    with the same time pop in insertion order.  This is what makes the
    simulation deterministic.

    Near-future events (within 2^24 ticks of the last popped time) live in
    a three-level wheel of 256-slot arrays with per-slot FIFO chains built
    from a preallocated node pool, so the steady-state push/pop cycle
    allocates nothing.  Events outside the wheel window — far-future or
    (for standalone users; the engine never does this) scheduled in the
    past — fall back to an index-sorted binary heap over the same pool.
    Pop compares the wheel head against the heap root under the same
    [(time, seq)] order, so the observable pop sequence is identical to a
    single binary heap's. *)

type 'a t

(** [create ~dummy] makes an empty queue.  [dummy] fills vacant pool
    slots so released events don't retain their payloads; it is never
    returned. *)
val create : dummy:'a -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

(** [push q ~time v] inserts [v] with key [time]. *)
val push : 'a t -> time:int -> 'a -> unit

(** [pop q] removes and returns the minimum entry as [(time, v)].
    @raise Not_found if the queue is empty. *)
val pop : 'a t -> int * 'a

(** [pop_event q] removes the minimum entry and returns just its value,
    without boxing the [(time, value)] pair; the time is available
    beforehand from [min_time_exn].
    @raise Not_found if the queue is empty. *)
val pop_event : 'a t -> 'a

(** [min_time q] is the time of the minimum entry without removing it. *)
val min_time : 'a t -> int option

(** [min_time_exn q] is [min_time] without the [Some] box: the minimum
    entry's time, or [max_int] when the queue is empty.  O(1) when the
    minimum is unchanged since the last call (the common case on the
    engine's yield fast path). *)
val min_time_exn : 'a t -> int
