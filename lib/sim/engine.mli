(** Discrete-event simulation kernel with cooperative fibers.

    Each simulated processor is a {e fiber}: an OCaml function running under
    an effect handler, carrying a private cycle clock.  Purely local work
    ([advance]) just bumps the clock without touching the event queue; any
    interaction with shared simulation state must be preceded by a yield
    point ([sync], [wait_until], [suspend], or a blocking primitive built on
    them) so that the engine dispatches interactions in global time order.

    Determinism: events with equal times fire in insertion order. *)

type t
(** A simulation instance. *)

type fiber
(** A simulated thread of control (one per simulated processor or
    protocol agent). *)

exception
  Deadlock of { time : int; blocked : (string * int) list; note : string }
(** Raised by [run] when the event queue drains while fibers are still
    blocked.  Carries the engine time at which the queue drained, each
    blocked fiber's [(name, clock)] sorted by name, and the [diag]
    snapshot (empty when no [diag] was supplied), so a stall is
    debuggable from the exception message alone (a registered
    [Printexc] printer renders it as ["Engine.Deadlock at t=...:
    name@clock, ...; note"]). *)

exception
  Watchdog of {
    time : int;
    limit : int;
    blocked : (string * int) list;
    note : string;
  }
(** Raised by [run ~max_cycles] when the next event's time exceeds the
    cycle budget — the livelock analogue of [Deadlock] (e.g. unbounded
    retransmission under a pathological fault schedule).  Carries the
    offending event time, the limit, the blocked fibers and the [diag]
    snapshot. *)

(** {2 Execution-time attribution}

    Every simulated cycle a fiber spends is charged to exactly one category.
    [Compute] is the default; protocol layers re-scope sections with
    [with_category].  Attribution happens inside [advance] and [set_clock]
    (all clock movement flows through them — blocking primitives included),
    so per-fiber category totals sum {e exactly} to the fiber's elapsed
    clock — a checked invariant ([check_attribution]).  When the engine is
    created without [~instrument] and without a [tracer], every hook below
    is a no-op and simulated timing is byte-identical. *)

type category =
  | Compute  (** application work, cache hits, local stalls *)
  | Protocol  (** DSM / coherence protocol handler CPU time *)
  | Net_wait  (** blocked waiting for a network reply *)
  | Lock_wait  (** blocked acquiring a lock *)
  | Barrier_wait  (** blocked at a barrier *)
  | Diff  (** SDSM diff creation and application *)
  | Twin  (** SDSM twin creation *)
  | Mem_stall  (** hardware platforms: bus / directory miss service *)

val categories : category list
(** All categories, in a fixed rendering order starting with [Compute]. *)

val category_name : category -> string
(** Stable lowercase name, e.g. ["net_wait"]; used for ["time.*"] counter
    names and trace span labels. *)

(** Sink for trace events; see {!Trace} for the Chrome-trace implementation.
    [trace_track] is called once per spawned fiber with its display name;
    [trace_segment] receives one maximal run of same-category cycles per
    fiber; [trace_instant] receives point events (faults, retransmissions,
    invalidations, ...). *)
type tracer = {
  trace_track : track:int -> name:string -> unit;
  trace_segment : track:int -> cat:category -> start:int -> stop:int -> unit;
  trace_instant : name:string -> track:int -> at:int -> unit;
}

val create : ?instrument:bool -> ?tracer:tracer -> unit -> t
(** [create ()] is the zero-cost uninstrumented engine.  [~instrument:true]
    turns on per-fiber category accounting; supplying a [tracer] implies
    instrumentation and additionally streams segments / instants to it. *)

val instrumented : t -> bool

(** [now t] is the time of the most recently dispatched event. *)
val now : t -> int

(** [live_fibers t] is the number of spawned fibers that have not finished. *)
val live_fibers : t -> int

(** [spawn t ~name ~at body] creates a fiber whose [body] starts executing
    at time [at].  A [daemon] fiber (e.g. a protocol message handler that
    loops forever) does not count as live: the simulation ends normally
    when only daemons remain blocked. *)
val spawn : t -> ?daemon:bool -> name:string -> at:int -> (fiber -> unit) -> fiber

(** [schedule t ~at f] runs plain callback [f] at time [at] (not a fiber;
    [f] must not perform fiber effects). *)
val schedule : t -> at:int -> (unit -> unit) -> unit

(** [run ?max_cycles ?diag t] dispatches events until none remain.
    Exceptions raised inside fibers propagate.  [diag] is called only when
    an exception is about to be raised; its result is embedded as the
    exception's [note] (protocol layers use it to report in-flight
    retransmission state).
    @raise Deadlock if blocked fibers remain.
    @raise Watchdog if an event's time exceeds [max_cycles]. *)
val run : ?max_cycles:int -> ?diag:(unit -> string) -> t -> unit

(** {2 Operations within a fiber} *)

val clock : fiber -> int
val name : fiber -> string
val id : fiber -> int
val engine : fiber -> t

(** [advance f n] adds [n >= 0] cycles of local work to [f]'s clock.
    No yield: cheap fast path for cache hits and computation. *)
val advance : fiber -> int -> unit

(** [set_clock f time] moves [f]'s clock forward to [time] (no-op if the
    clock is already past it).  No yield. *)
val set_clock : fiber -> int -> unit

(** [with_category f cat body] charges every cycle [f] spends inside [body]
    to [cat], restoring the previous category afterwards (innermost scope
    wins on nesting).  Never touches the clock or the event queue; when the
    engine is uninstrumented it is exactly [body ()]. *)
val with_category : fiber -> category -> (unit -> 'a) -> 'a

(** [instant f name] records a point event at [f]'s current clock on [f]'s
    track.  No-op unless the engine has a tracer. *)
val instant : fiber -> string -> unit

(** [breakdown f] is [f]'s per-category cycle totals in [categories] order,
    or [[]] when the engine is uninstrumented. *)
val breakdown : fiber -> (category * int) list

(** [check_attribution f] verifies that [f]'s category totals sum exactly
    to its elapsed clock.  No-op when uninstrumented.
    @raise Failure on a mismatch, naming the fiber. *)
val check_attribution : fiber -> unit

(** [sync f] re-enters the event queue at [f]'s current clock, letting every
    event with an earlier time run first.  Call before touching shared
    simulation state. *)
val sync : fiber -> unit

(** [wait_until f time] advances the clock to at least [time] and yields. *)
val wait_until : fiber -> int -> unit

(** [suspend f] parks the fiber until another party calls [resume]. *)
val suspend : fiber -> unit

(** [resume t f ~at] unparks [f], moving its clock forward to at least [at].
    It is an error to resume a fiber that is not suspended. *)
val resume : t -> fiber -> at:int -> unit

val is_suspended : fiber -> bool
