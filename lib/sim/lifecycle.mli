(** Whole-node crash/restart injection (DESIGN.md §13).

    A lifecycle instance tracks per-node liveness for one simulation:
    crashes come from an explicit [(node, cycle)] schedule and/or a
    seeded per-window random draw.  Each crash marks the node down for
    [outage_cycles], fires the [on_crash] hooks, schedules a detection
    event after [detect_cycles] (where survivors re-home manager state)
    and a restart event (where the node's rejoin hooks run and parked
    fibers wake).  The module holds no protocol state — DSM engines
    register hooks at mount time.  Crash-free runs never construct a
    [t], preserving byte identity with the fault-free baseline. *)

type policy = {
  crashes : (int * int) list;  (** scheduled [(node, cycle)] crashes *)
  crash_rate : float;
      (** per-node crash probability per 1M-cycle window (seeded draw) *)
  crash_seed : int;
  outage_cycles : int;  (** cycles from crash to restart *)
  detect_cycles : int;  (** cycles from crash to survivor detection *)
  ckpt_interval : int;  (** periodic checkpoint period; 0 = off *)
  max_crashes : int;  (** cap on randomly drawn crashes *)
}

(** No crashes; outage 1M, detection 200k, no checkpoints. *)
val none : policy

(** [active p] is true when [p] can ever crash a node. *)
val active : policy -> bool

type t

val create : Engine.t -> Shm_stats.Counters.t -> policy -> nodes:int -> t

val nodes : t -> int

val alive : t -> int -> bool

(** [down_until t node] is the node's restart cycle, or [0] if alive. *)
val down_until : t -> int -> int

(** [gate t fiber ~node] parks the fiber until the node restarts; a no-op
    when the node is alive.  Platforms call it before every shared-memory
    or synchronization operation of the node's processors. *)
val gate : t -> Engine.fiber -> node:int -> unit

(** Hook registration (mount time, before [start]).  [on_crash] fires at
    the crash cycle, [on_detect] at crash + [detect_cycles] if the node
    is still down (manager re-homing), [on_restart] at the restart cycle
    before parked fibers wake (rejoin/replay), [on_ckpt] every
    [ckpt_interval] cycles. *)

val on_crash : t -> (node:int -> at:int -> unit) -> unit

val on_detect : t -> (node:int -> at:int -> unit) -> unit

val on_restart : t -> (node:int -> at:int -> unit) -> unit

val on_ckpt : t -> (at:int -> unit) -> unit

(** [crash t node ~at] crashes a node immediately (test hook); no-op if
    the node is already down or the simulation has drained. *)
val crash : t -> int -> at:int -> unit

(** [start t] schedules the policy's crash and checkpoint events. *)
val start : t -> unit

(** [note t] renders liveness for deadlock/watchdog diagnostics, e.g.
    ["node 2 crashed (down until cycle 5200000)"]. *)
val note : t -> string
