(* The Tardis timestamp-coherence DSM as a mountable engine (registry
   name "tardis"). *)

module Fabric = Shm_net.Fabric

let name = "tardis"
let kind = Shm_proto.Sdsm

let describe =
  "Tardis timestamp-counter coherence (arXiv 1501.04504): leased read \
   copies and logical timestamps; renewals instead of invalidation \
   broadcasts"

let mount (ctx : Shm_proto.ctx) =
  (* Tardis keeps leased read copies whose expiry is entangled with the
     global timestamp order; a crash/restart model for it needs lease
     recovery that is not implemented.  Refuse loudly rather than run an
     unrecoverable protocol under crash injection. *)
  if ctx.lifecycle <> None then
    invalid_arg
      "tardis: whole-node crash injection is not supported (no lease \
       recovery); use lrc, eager-lrc, erc or ivy";
  let fabric = Fabric.create ctx.eng ctx.counters ctx.fabric ~nodes:ctx.nodes in
  let sys =
    System.create ctx.eng ctx.counters fabric ~page_words:ctx.page_words
      ~shared_words:ctx.shared_words ~memories:ctx.memories
  in
  {
    Shm_proto.i_name = name;
    page_shift = System.page_shift sys;
    wordwise_ranges = false;
    access_rights = Some (fun ~node -> System.access_rights sys ~node);
    set_page_hook = (fun h -> System.set_page_hook sys h);
    start = (fun () -> System.start sys);
    retx_note = (fun () -> System.retx_note sys);
    read_guard = (fun f ~node addr -> System.read_guard sys f ~node addr);
    write_guard = (fun f ~node addr -> System.write_guard sys f ~node addr);
    read_range_guard =
      (fun f ~node addr words ~f:move ->
        System.read_range_guard sys f ~node addr words ~f:move);
    write_range_guard =
      (fun f ~node addr words ~f:move ->
        System.write_range_guard sys f ~node addr words ~f:move);
    acquire = (fun f ~node ~lock -> System.acquire sys f ~node ~lock);
    release = (fun f ~node ~lock -> System.release sys f ~node ~lock);
    barrier_arrive = (fun f ~node ~id -> System.barrier_arrive sys f ~node ~id);
    rmw = None;
    invalidate_range = None;
    dump_lock = None;
    check_invariants = (fun () -> System.check_invariants sys);
  }
