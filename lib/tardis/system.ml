module Engine = Shm_sim.Engine
module Mailbox = Shm_sim.Mailbox
module Waitq = Shm_sim.Waitq
module Fabric = Shm_net.Fabric
module Reliable = Shm_net.Reliable
module Msg = Shm_net.Msg
module Memory = Shm_memsys.Memory
module Counters = Shm_stats.Counters

(* Tardis (Yu & Devadas, arXiv 1501.04504) over a page DSM: coherence by
   logical timestamps instead of invalidation.

   Every page version carries a write timestamp [wts]; read copies carry
   a lease — a logical time up to which the copy may be read.  Each node
   keeps a program timestamp [pts] that only moves forward: loads bump it
   to the version's [wts], exclusive grants to the new version's
   timestamp, and synchronization (lock grants, barrier departures)
   jumps it to the partner's timestamp.  A copy is readable exactly while
   [pts <= lease]; when the lease has expired the node asks the page's
   home manager to renew it — a two-word message, no data unless the
   version moved on.  Writes take exclusive ownership at a fresh
   timestamp [max (rts + 1) pts], above every outstanding lease, so
   nothing is ever broadcast or invalidated: stale sharers simply run out
   of lease before their timestamps reach the new version.

   The home manager (static, [page mod n_nodes]) tracks the version
   timestamp [wts], the highest lease handed out [rts] and the exclusive
   owner, and serializes transactions per page exactly like the IVY
   manager (busy flag + queue).  All messaging goes through
   {!Shm_net.Reliable}, so the engine runs under fault injection; every
   protocol decision depends only on logical timestamps carried in
   messages, never on arrival times. *)

type page_access = Tinvalid | Tshared | Texclusive

let access_name = function
  | Tinvalid -> "Invalid"
  | Tshared -> "Shared"
  | Texclusive -> "Exclusive"

(* A renewed lease runs this far past the reader's [pts].  Longer leases
   mean fewer renewals but later timestamps for writers (writes start at
   [rts + 1]); the value is a protocol constant, not machine timing. *)
let lease_span = 10

type pending_txn = {
  write : bool;
  requester : int;
  req : int;
  pts : int;
  have_wts : int;
}

exception
  Proto_error of {
    page : int;
    requester : int;
    manager : int;
    state : string;
  }

let () =
  Printexc.register_printer (function
    | Proto_error { page; requester; manager; state } ->
        Some
          (Printf.sprintf
             "Tardis.Proto_error: page %d, requester %d, manager %d: %s" page
             requester manager state)
    | _ -> None)

(* Manager-side record for a page it is home for. *)
type mpage = {
  mutable owner : int option;
  mutable m_wts : int;  (** timestamp of the current version *)
  mutable m_rts : int;  (** highest lease handed out; >= m_wts *)
  mutable busy : bool;
  mutable current : pending_txn option;
  waiting : pending_txn Queue.t;
}

type mlock = {
  mutable held : bool;
  mutable lts : int;  (** timestamp of the last release *)
  lock_waiters : (int * int) Queue.t;
}

type node = {
  id : int;
  mem : Memory.t;
  access : page_access array;
  rights : Bytes.t;
      (** software TLB: ['\002'] for Exclusive (guards skippable),
          ['\000'] otherwise — a Shared copy's readability depends on
          [pts <= lease], which changes at synchronization, so Shared
          reads must always reach the guard (a hit is free there). *)
  wts : int array;  (** version timestamp of the local copy, per page *)
  lease : int array;  (** local copy readable while [pts <= lease] *)
  mutable pts : int;  (** the node's program timestamp *)
  mpages : (int, mpage) Hashtbl.t;  (** pages this node is home for *)
  mlocks : (int, mlock) Hashtbl.t;  (** locks this node manages *)
  pending_reqs : (int, Proto.t Mailbox.t) Hashtbl.t;
  mutable next_req : int;
  inflight : (int, Waitq.t) Hashtbl.t;
  steal : int ref;
}

type barrier_state = {
  mutable arrivals : (int * int) list;
  mutable high : int;  (** max pts over arrivals so far *)
}

type t = {
  eng : Engine.t;
  counters : Counters.t;
  net : Proto.t Reliable.t;
  page_words : int;
  n_pages : int;
  n_nodes : int;
  nodes : node array;
  barriers : barrier_state array;
  page_shift : int;  (** log2 page_words, or -1 if not a power of two *)
  mutable page_hook : node:int -> page:int -> unit;
}

let page_of t addr =
  if t.page_shift >= 0 then addr lsr t.page_shift else addr / t.page_words

let page_shift t = t.page_shift

let access_rights t ~node = t.nodes.(node).rights

(* Every [access] transition goes through here so the TLB mirror never
   drifts. *)
let set_access nd page (a : page_access) =
  nd.access.(page) <- a;
  Bytes.unsafe_set nd.rights page
    (match a with Texclusive -> '\002' | Tshared | Tinvalid -> '\000')

let memory t ~node = t.nodes.(node).mem

let set_page_hook t f = t.page_hook <- f

let manager_of t page = page mod t.n_nodes

let lock_manager_of t lock = lock mod t.n_nodes

let overhead t = (Fabric.config (Reliable.fabric t.net)).Fabric.overhead

let create eng counters fabric ~page_words ~shared_words ~memories =
  let n_nodes = Array.length memories in
  let n_pages = (shared_words + page_words - 1) / page_words in
  let mk_node id =
    let mpages = Hashtbl.create 64 in
    for p = 0 to n_pages - 1 do
      if p mod n_nodes = id then
        Hashtbl.add mpages p
          {
            owner = None;
            m_wts = 0;
            m_rts = 0;
            busy = false;
            current = None;
            waiting = Queue.create ();
          }
    done;
    {
      id;
      mem = memories.(id);
      access = Array.make n_pages Tshared;
      (* pts starts at 0 and every initial copy is version 0 with a
         lease of 0, so the warm start costs nothing: first reads hit,
         the first write of a page mints version >= 1. *)
      rights = Bytes.make n_pages (if n_nodes = 1 then '\002' else '\000');
      wts = Array.make n_pages 0;
      lease = Array.make n_pages 0;
      pts = 0;
      mpages;
      mlocks = Hashtbl.create 16;
      pending_reqs = Hashtbl.create 16;
      next_req = 0;
      inflight = Hashtbl.create 8;
      steal = ref 0;
    }
  in
  {
    eng;
    counters;
    net = Reliable.create eng counters fabric;
    page_words;
    n_pages;
    n_nodes;
    nodes = Array.init n_nodes mk_node;
    barriers = Array.init 16 (fun _ -> { arrivals = []; high = 0 });
    page_shift =
      (if page_words > 0 && page_words land (page_words - 1) = 0 then
         let rec go s n = if n = 1 then s else go (s + 1) (n lsr 1) in
         go 0 page_words
       else -1);
    page_hook = (fun ~node:_ ~page:_ -> ());
  }

let fresh_req nd =
  let r = nd.next_req in
  nd.next_req <- r + 1;
  r

let register_req t nd req =
  let mb = Mailbox.create t.eng in
  Hashtbl.replace nd.pending_reqs req mb;
  mb

let drain_steal fiber nd =
  let s = !(nd.steal) in
  if s > 0 then begin
    nd.steal := 0;
    (* Handler CPU time charged to the application is protocol overhead. *)
    Engine.with_category fiber Engine.Protocol (fun () ->
        Engine.advance fiber s)
  end

let page_data t nd page =
  Array.init t.page_words (fun k ->
      Memory.get nd.mem ((page * t.page_words) + k))

(* Replace a page's contents with version [wts].  The local access kind
   is the caller's business; the version stamp is not, so it updates
   here and the platform's cache hook always fires. *)
let install_page t fiber nd page ~wts data =
  Array.iteri
    (fun k v -> Memory.set nd.mem ((page * t.page_words) + k) v)
    data;
  nd.wts.(page) <- wts;
  Engine.advance fiber t.page_words;
  t.page_hook ~node:nd.id ~page

(* Deliver [body] to [dst]: over the fabric, or by running the dispatch
   inline when [dst] is the local node (no message, no cost). *)
let rec deliver t fiber ~src ~dst body =
  if src = dst then dispatch t fiber t.nodes.(dst) ~src body
  else
    Reliable.send t.net fiber ~src ~dst ~class_:(Proto.class_ body)
      ~size:(Proto.sizes body) body

(* ---------------- manager-side page state machine ------------------ *)

and mgr_start_txn t fiber mgr page (txn : pending_txn) =
  let mp = Hashtbl.find mgr.mpages page in
  mp.busy <- true;
  mp.current <- Some txn;
  match mp.owner with
  | Some o when o <> txn.requester ->
      deliver t fiber ~src:mgr.id ~dst:o
        (Proto.Flush_req { page; req = txn.req; drop = txn.write })
  | Some _ ->
      (* The exclusive holder neither read- nor write-faults on its own
         page, so a transaction from the owner is a protocol bug (or a
         corrupted request under a chaos schedule): diagnosable error. *)
      raise
        (Proto_error
           {
             page;
             requester = txn.requester;
             manager = mgr.id;
             state =
               Printf.sprintf
                 "%s transaction (req %d) from the exclusive owner; manager \
                  state: wts=%d rts=%d busy=%b queued=%d"
                 (if txn.write then "write" else "read")
                 txn.req mp.m_wts mp.m_rts mp.busy
                 (Queue.length mp.waiting);
           })
  | None -> mgr_grant t fiber mgr page

and mgr_grant t fiber mgr page =
  let mp = Hashtbl.find mgr.mpages page in
  match mp.current with
  | Some { write; requester; req; pts; have_wts } ->
      (* With no owner, the home copy is the current version, so grants
         are served from the manager's own memory — unless the requester
         already holds it, which makes renewals and upgrades two-word
         messages. *)
      let current = mp.m_wts in
      let fresh () =
        if have_wts = current then None
        else begin
          Engine.advance fiber t.page_words;
          Some (page_data t mgr page)
        end
      in
      if write then begin
        let ts = max (mp.m_rts + 1) pts in
        let data = fresh () in
        mp.m_wts <- ts;
        mp.m_rts <- ts;
        mp.owner <- Some requester;
        deliver t fiber ~src:mgr.id ~dst:requester
          (Proto.Write_grant { page; req; ts; data })
      end
      else begin
        let lease = max mp.m_rts (pts + lease_span) in
        let data = fresh () in
        mp.m_rts <- lease;
        deliver t fiber ~src:mgr.id ~dst:requester
          (Proto.Read_grant { page; req; wts = current; lease; data })
      end
  | None -> failwith "tardis: grant without transaction"

and mgr_request t fiber mgr page txn =
  let mp = Hashtbl.find mgr.mpages page in
  if mp.busy then Queue.push txn mp.waiting
  else mgr_start_txn t fiber mgr page txn

and mgr_txn_done t fiber mgr page =
  let mp = Hashtbl.find mgr.mpages page in
  mp.busy <- false;
  mp.current <- None;
  match Queue.take_opt mp.waiting with
  | Some txn -> mgr_start_txn t fiber mgr page txn
  | None -> ()

(* ---------------- lock manager ------------------------------------- *)

and mgr_lock_req t fiber mgr ~lock ~requester ~req =
  let ml =
    match Hashtbl.find_opt mgr.mlocks lock with
    | Some ml -> ml
    | None ->
        let ml = { held = false; lts = 0; lock_waiters = Queue.create () } in
        Hashtbl.add mgr.mlocks lock ml;
        ml
  in
  if ml.held then Queue.push (requester, req) ml.lock_waiters
  else begin
    ml.held <- true;
    deliver t fiber ~src:mgr.id ~dst:requester
      (Proto.Lock_grant { lock; req; ts = ml.lts })
  end

and mgr_unlock t fiber mgr ~lock ~pts =
  let ml = Hashtbl.find mgr.mlocks lock in
  if pts > ml.lts then ml.lts <- pts;
  match Queue.take_opt ml.lock_waiters with
  | Some (requester, req) ->
      deliver t fiber ~src:mgr.id ~dst:requester
        (Proto.Lock_grant { lock; req; ts = ml.lts })
  | None -> ml.held <- false

(* ---------------- barrier manager ---------------------------------- *)

and mgr_barrier_arrive t fiber mgr ~id ~node ~req ~pts =
  let b = t.barriers.(id) in
  b.arrivals <- (node, req) :: b.arrivals;
  if pts > b.high then b.high <- pts;
  if List.length b.arrivals = t.n_nodes then begin
    let arrivals = b.arrivals in
    let ts = b.high in
    b.arrivals <- [];
    (* Departures jump every node to the epoch's maximum timestamp, so
       leases on anything written before the barrier are already spent
       on the far side. *)
    List.iter
      (fun (dst, dreq) ->
        deliver t fiber ~src:mgr.id ~dst
          (Proto.Barrier_depart { barrier = id; req = dreq; ts }))
      arrivals;
    Counters.incr t.counters "tardis.barriers"
  end

(* ---------------- message dispatch --------------------------------- *)

and route_response nd ~req body ~at =
  match Hashtbl.find_opt nd.pending_reqs req with
  | Some mb -> Mailbox.post mb ~at body
  | None -> failwith "tardis: response without pending request"

and dispatch t fiber nd ~src body =
  ignore src;
  match body with
  | Proto.Read_req { page; requester; req; pts; have_wts } ->
      mgr_request t fiber nd page
        { write = false; requester; req; pts; have_wts }
  | Proto.Write_req { page; requester; req; pts; have_wts } ->
      mgr_request t fiber nd page
        { write = true; requester; req; pts; have_wts }
  | Proto.Flush_req { page; req; drop } ->
      (* We are the owner: ship the latest contents back to the home
         manager and give up exclusivity.  The copy we keep (unless
         dropped) is the current version, already stamped [wts]. *)
      if nd.access.(page) <> Texclusive then
        raise
          (Proto_error
             {
               page;
               requester = nd.id;
               manager = manager_of t page;
               state =
                 Printf.sprintf "flush of a %s copy (req %d)"
                   (access_name nd.access.(page))
                   req;
             });
      set_access nd page (if drop then Tinvalid else Tshared);
      Engine.advance fiber t.page_words;
      deliver t fiber ~src:nd.id ~dst:(manager_of t page)
        (Proto.Flush_resp { page; req; data = page_data t nd page });
      Counters.incr t.counters "tardis.flushes"
  | Proto.Flush_resp { page; data; _ } ->
      (* We are the manager: refresh the home copy and serve the waiting
         transaction from it. *)
      let mp = Hashtbl.find nd.mpages page in
      install_page t fiber nd page ~wts:mp.m_wts data;
      mp.owner <- None;
      mgr_grant t fiber nd page
  | Proto.Txn_done { page; _ } -> mgr_txn_done t fiber nd page
  | Proto.Lock_req { lock; requester; req } ->
      mgr_lock_req t fiber nd ~lock ~requester ~req
  | Proto.Unlock { lock; requester; pts } ->
      ignore requester;
      mgr_unlock t fiber nd ~lock ~pts
  | Proto.Barrier_arrive { barrier; node; req; pts } ->
      mgr_barrier_arrive t fiber nd ~id:barrier ~node ~req ~pts
  | Proto.Read_grant { req; _ } | Proto.Write_grant { req; _ }
  | Proto.Lock_grant { req; _ } | Proto.Barrier_depart { req; _ } ->
      route_response nd ~req body ~at:(Engine.clock fiber)

let handler_loop t nd fiber =
  let ov = overhead t in
  let rec loop () =
    let env =
      Engine.with_category fiber Engine.Net_wait (fun () ->
          Reliable.recv t.net fiber ~node:nd.id)
    in
    Engine.with_category fiber Engine.Protocol (fun () ->
        Engine.advance fiber ov.handler;
        (* CPU time spent serving: charged back to the application unless
           the message completes one of its own waits. *)
        (match env.Msg.body with
        | Proto.Read_grant _ | Proto.Write_grant _ | Proto.Lock_grant _
        | Proto.Barrier_depart _ ->
            ()
        | _ -> nd.steal := !(nd.steal) + ov.handler + ov.fixed_recv);
        dispatch t fiber nd ~src:env.Msg.src env.Msg.body);
    loop ()
  in
  loop ()

let start t =
  Reliable.start t.net;
  Array.iter
    (fun nd ->
      ignore
        (Engine.spawn t.eng ~daemon:true
           ~name:(Printf.sprintf "tardis-handler-%d" nd.id)
           ~at:0
           (fun fiber -> handler_loop t nd fiber)))
    t.nodes

let retx_note t = Reliable.pending_note t.net

(* ---------------- application-facing operations -------------------- *)

let fault t fiber nd page ~write =
  Engine.sync fiber;
  drain_steal fiber nd;
  let satisfied () =
    match nd.access.(page) with
    | Texclusive -> true
    | Tshared -> (not write) && nd.pts <= nd.lease.(page)
    | Tinvalid -> false
  in
  let rec wait_turn () =
    match Hashtbl.find_opt nd.inflight page with
    | Some wq when not (satisfied ()) ->
        (* Another co-located processor is fetching this page. *)
        Engine.with_category fiber Engine.Net_wait (fun () ->
            Waitq.wait fiber wq);
        wait_turn ()
    | Some _ | None -> ()
  in
  wait_turn ();
  if not (satisfied ()) then
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  begin
    let wq = Waitq.create t.eng in
    Hashtbl.replace nd.inflight page wq;
    Counters.incr t.counters
      (if write then "tardis.write_faults" else "tardis.read_faults");
    Engine.instant fiber "tardis.fault";
    Engine.advance fiber (overhead t).handler;
    let req = fresh_req nd in
    let mb = register_req t nd req in
    let mgr = manager_of t page in
    let have_wts = if nd.access.(page) = Tinvalid then -1 else nd.wts.(page) in
    let body =
      if write then
        Proto.Write_req { page; requester = nd.id; req; pts = nd.pts; have_wts }
      else
        Proto.Read_req { page; requester = nd.id; req; pts = nd.pts; have_wts }
    in
    deliver t fiber ~src:nd.id ~dst:mgr body;
    (match
       Engine.with_category fiber Engine.Net_wait (fun () ->
           Mailbox.recv fiber mb)
     with
    | Proto.Read_grant { wts; lease; data; _ } ->
        (match data with
        | Some d ->
            install_page t fiber nd page ~wts d;
            Counters.incr t.counters "tardis.page_fetches"
        | None ->
            nd.wts.(page) <- wts;
            Counters.incr t.counters "tardis.renewals");
        set_access nd page Tshared;
        nd.lease.(page) <- lease;
        (* Load rule: reading version [wts] moves logical time to it. *)
        if wts > nd.pts then nd.pts <- wts
    | Proto.Write_grant { ts; data; _ } ->
        (match data with
        | Some d ->
            install_page t fiber nd page ~wts:ts d;
            Counters.incr t.counters "tardis.page_fetches"
        | None ->
            nd.wts.(page) <- ts;
            Counters.incr t.counters "tardis.upgrades");
        set_access nd page Texclusive;
        nd.lease.(page) <- ts;
        if ts > nd.pts then nd.pts <- ts
    | _ -> failwith "tardis: unexpected fault response");
    deliver t fiber ~src:nd.id ~dst:mgr
      (Proto.Txn_done { page; requester = nd.id });
    Hashtbl.remove nd.pending_reqs req;
    Hashtbl.remove nd.inflight page;
    ignore (Waitq.wake_all wq ~at:(Engine.clock fiber))
  end

(* A Shared hit still executes the load rule: the version's [wts] drags
   [pts] forward (a free register update — the guard was reached anyway
   because Shared pages keep rights '\000'). *)
let[@inline] note_read nd page =
  if nd.wts.(page) > nd.pts then nd.pts <- nd.wts.(page)

let readable nd page =
  match nd.access.(page) with
  | Texclusive -> true
  | Tshared -> nd.pts <= nd.lease.(page)
  | Tinvalid -> false

let read_guard t fiber ~node addr =
  if t.n_nodes > 1 then begin
    let nd = t.nodes.(node) in
    let page = page_of t addr in
    while not (readable nd page) do
      fault t fiber nd page ~write:false
    done;
    note_read nd page
  end

let write_guard t fiber ~node addr =
  if t.n_nodes > 1 then begin
    let nd = t.nodes.(node) in
    let page = page_of t addr in
    while nd.access.(page) <> Texclusive do
      fault t fiber nd page ~write:true
    done
  end

(* Range guards: one guard per overlapped page, in address order, handing
   each in-page run to [f run_addr run_words] right after its guard —
   observably identical to the per-word loop.  [f] must not yield. *)

let read_range_guard t fiber ~node addr words ~f =
  if t.n_nodes = 1 then f addr words
  else begin
    let nd = t.nodes.(node) in
    let pw = t.page_words in
    let stop = addr + words in
    let a = ref addr in
    while !a < stop do
      let page = page_of t !a in
      let run = min ((page + 1) * pw) stop - !a in
      while not (readable nd page) do
        fault t fiber nd page ~write:false
      done;
      note_read nd page;
      f !a run;
      a := !a + run
    done
  end

let write_range_guard t fiber ~node addr words ~f =
  if t.n_nodes = 1 then f addr words
  else begin
    let nd = t.nodes.(node) in
    let pw = t.page_words in
    let stop = addr + words in
    let a = ref addr in
    while !a < stop do
      let page = page_of t !a in
      let run = min ((page + 1) * pw) stop - !a in
      while nd.access.(page) <> Texclusive do
        fault t fiber nd page ~write:true
      done;
      f !a run;
      a := !a + run
    done
  end

let acquire t fiber ~node ~lock =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  let req = fresh_req nd in
  let mb = register_req t nd req in
  deliver t fiber ~src:nd.id
    ~dst:(lock_manager_of t lock)
    (Proto.Lock_req { lock; requester = nd.id; req });
  (match
     Engine.with_category fiber Engine.Lock_wait (fun () ->
         Mailbox.recv fiber mb)
   with
  | Proto.Lock_grant { ts; _ } ->
      (* Synchronize logical time with the previous holder, so leases on
         everything it wrote are expired from here on. *)
      if ts > nd.pts then nd.pts <- ts
  | _ -> failwith "tardis: unexpected lock response");
  Hashtbl.remove nd.pending_reqs req;
  Counters.incr t.counters "tardis.lock_acquires"

let release t fiber ~node ~lock =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  Engine.with_category fiber Engine.Protocol (fun () ->
      deliver t fiber ~src:nd.id
        ~dst:(lock_manager_of t lock)
        (Proto.Unlock { lock; requester = nd.id; pts = nd.pts }))

let barrier_arrive t fiber ~node ~id =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  let req = fresh_req nd in
  let mb = register_req t nd req in
  deliver t fiber ~src:nd.id ~dst:0
    (Proto.Barrier_arrive { barrier = id; node = nd.id; req; pts = nd.pts });
  (match
     Engine.with_category fiber Engine.Barrier_wait (fun () ->
         Mailbox.recv fiber mb)
   with
  | Proto.Barrier_depart { ts; _ } -> if ts > nd.pts then nd.pts <- ts
  | _ -> failwith "tardis: unexpected barrier response");
  Hashtbl.remove nd.pending_reqs req

let check_invariants t =
  for page = 0 to t.n_pages - 1 do
    let mgr = t.nodes.(manager_of t page) in
    let mp = Hashtbl.find mgr.mpages page in
    if mp.busy then
      failwith (Printf.sprintf "tardis: page %d transaction never drained" page);
    if mp.m_rts < mp.m_wts then
      failwith
        (Printf.sprintf "tardis: page %d rts %d below wts %d" page mp.m_rts
           mp.m_wts);
    Array.iter
      (fun nd ->
        (match nd.access.(page) with
        | Texclusive ->
            if mp.owner <> Some nd.id then
              failwith
                (Printf.sprintf "tardis: page %d exclusive at %d, owner %s"
                   page nd.id
                   (match mp.owner with
                   | Some o -> string_of_int o
                   | None -> "none"))
        | Tshared | Tinvalid ->
            if mp.owner = Some nd.id then
              failwith
                (Printf.sprintf "tardis: page %d owner %d holds a %s copy"
                   page nd.id
                   (access_name nd.access.(page))));
        if nd.wts.(page) > mp.m_wts then
          failwith
            (Printf.sprintf "tardis: page %d copy at %d newer than home" page
               nd.id);
        if nd.lease.(page) > mp.m_rts then
          failwith
            (Printf.sprintf "tardis: page %d lease at %d beyond home rts" page
               nd.id))
      t.nodes
  done
