module Msg = Shm_net.Msg

type page_data = int64 array

type t =
  | Read_req of {
      page : int;
      requester : int;
      req : int;
      pts : int;
      have_wts : int;  (** version of the requester's copy, -1 for none *)
    }
  | Read_grant of {
      page : int;
      req : int;
      wts : int;
      lease : int;
      data : page_data option;  (** [None]: a pure lease renewal *)
    }
  | Write_req of {
      page : int;
      requester : int;
      req : int;
      pts : int;
      have_wts : int;
    }
  | Write_grant of { page : int; req : int; ts : int; data : page_data option }
  | Flush_req of { page : int; req : int; drop : bool }
      (** manager -> owner: surrender the page ([drop]: to Invalid for a
          writer, else downgrade to Shared) *)
  | Flush_resp of { page : int; req : int; data : page_data }
      (** owner -> manager: latest contents back to the home copy *)
  | Txn_done of { page : int; requester : int }
  | Lock_req of { lock : int; requester : int; req : int }
  | Lock_grant of { lock : int; req : int; ts : int }
      (** [ts]: the last releaser's timestamp — the acquirer jumps
          forward to it *)
  | Unlock of { lock : int; requester : int; pts : int }
  | Barrier_arrive of { barrier : int; node : int; req : int; pts : int }
  | Barrier_depart of { barrier : int; req : int; ts : int }

(* Timestamps ride in the consistency section: two 8-byte words cover a
   version and a lease (or a pts and a have_wts). *)
let sizes = function
  | Read_grant { data = Some d; _ } | Write_grant { data = Some d; _ } ->
      Msg.sizes ~consistency:16 ~payload:(8 * Array.length d) ()
  | Flush_resp { data; _ } ->
      Msg.sizes ~consistency:8 ~payload:(8 * Array.length data) ()
  | Read_req _ | Write_req _
  | Read_grant { data = None; _ }
  | Write_grant { data = None; _ } ->
      Msg.sizes ~consistency:16 ()
  | Flush_req _ | Txn_done _ -> Msg.sizes ~consistency:8 ()
  | Lock_req _ | Lock_grant _ | Unlock _ | Barrier_arrive _ | Barrier_depart _
    ->
      Msg.sizes ~consistency:16 ()

let class_ = function
  | Lock_req _ | Lock_grant _ | Unlock _ | Barrier_arrive _ | Barrier_depart _
    ->
      Msg.Sync
  | Read_req _ | Read_grant _ | Write_req _ | Write_grant _ | Flush_req _
  | Flush_resp _ | Txn_done _ ->
      Msg.Miss
