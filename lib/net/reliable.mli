(** User-level reliable request/reply channel over {!Fabric}.

    Mirrors the paper's TreadMarks transport: UDP-style unreliable
    delivery underneath, with "operation-specific, user-level" reliability
    — sequence numbers, duplicate suppression, piggybacked acknowledgements
    and timeout/retransmission — implemented in the DSM library rather
    than the kernel.  Hardware platforms ([Snoop]/[Directory]) never see
    this layer: their interconnects are reliable by construction.

    Per ordered (node, peer) pair the layer keeps an outbound sequence
    stream with a table of unacknowledged packets, and an inbound stream
    delivered strictly in sequence (early packets are buffered), which
    both suppresses duplicates and preserves the per-link FIFO order the
    protocol layers rely on.  Every data packet piggybacks a cumulative
    ack for the reverse direction; a delayed standalone ack covers one-way
    traffic, and a duplicate triggers an immediate re-ack.  A per-node
    retransmit daemon fiber resends unacked packets on a timeout derived
    from the fabric's latency/bandwidth model, doubling it per attempt,
    and raises {!Peer_unreachable} after {!max_retries} resends.

    When the fabric's fault policy is inactive the layer is a pure
    pass-through: no sequence numbers, timers or daemon fibers exist and
    bodies travel wrapped in a zero-cost [Raw] constructor, so fault-free
    runs are byte-identical to direct {!Fabric} use.

    Counters: [net.reliable.data], [net.reliable.acks],
    [net.reliable.dups] (duplicates suppressed), [net.reliable.ooo]
    (early packets buffered), [net.retrans.total],
    [net.reliable.peer_down] (suspected-crash reports under a crash-aware
    {!policy}).

    With a {!Shm_sim.Lifecycle} attached to the fabric, a crashed node's
    own retransmit and ack timers freeze (a dead host sends nothing) and
    resume at its restart cycle; under a crash-aware policy, timers for
    packets addressed to a down peer park at the peer's restart cycle
    instead of burning retry attempts. *)

type 'a packet
(** Wire representation carried by the underlying fabric. *)

type 'a t

exception
  Peer_unreachable of { src : int; dst : int; seq : int; attempts : int }
(** Raised (inside the simulation) when a packet stays unacknowledged
    after {!max_retries} retransmissions. *)

(** Default retransmission budget per packet before {!Peer_unreachable}. *)
val max_retries : int

type policy = {
  p_max_retries : int;
      (** retransmissions before the packet's loss budget is exhausted *)
  backoff_cap : int;
      (** cap on the backoff exponent ([timeout = base * 2^min(attempt,
          cap)]); [0] = uncapped doubling *)
  on_peer_down : (src:int -> dst:int -> attempts:int -> unit) option;
      (** Crash-detection callback.  [None] (the default) keeps the
          historical abort: {!Peer_unreachable} raised once a packet
          exceeds [p_max_retries].  [Some cb] never raises: the layer
          reports the suspected death once per packet — immediately when
          the fabric's lifecycle says the peer is down, else when the
          retry budget runs out — and keeps retransmitting (capped
          backoff), so transient loss and whole-node crashes share one
          code path and delivery resumes when the peer restarts. *)
}

(** [{p_max_retries = max_retries; backoff_cap = 0; on_peer_down = None}]
    — exactly the historical 10-retry abort. *)
val default_policy : policy

val set_policy : 'a t -> policy -> unit

val policy : 'a t -> policy

(** [create eng counters fabric] builds the channel.  The fault policy is
    read from the fabric's config: reliability machinery is armed iff
    {!Fabric.faults_armed}. *)
val create :
  Shm_sim.Engine.t -> Shm_stats.Counters.t -> 'a packet Fabric.t -> 'a t

(** [start t] spawns the per-node retransmit daemon fibers.  Call once
    before [Engine.run]; a no-op when the channel is not armed. *)
val start : 'a t -> unit

val fabric : 'a t -> 'a packet Fabric.t
val armed : 'a t -> bool

(** [base_timeout t ~size] is the initial retransmission timeout for a
    packet of [size]: 4x the one-way latency + wire time + fixed software
    path.  Attempt [k] waits [base_timeout * 2^k].  Exposed for tests. *)
val base_timeout : 'a t -> size:Msg.sizes -> int

(** Same contract as {!Fabric.send}, plus reliability when armed. *)
val send :
  'a t ->
  Shm_sim.Engine.fiber ->
  src:int ->
  dst:int ->
  class_:Msg.class_ ->
  size:Msg.sizes ->
  'a ->
  unit

(** Same contract as {!Fabric.loopback}: local, free, and exempt from
    reliability (nothing to lose on a loopback path). *)
val loopback :
  'a t ->
  Shm_sim.Engine.fiber ->
  node:int ->
  class_:Msg.class_ ->
  size:Msg.sizes ->
  'a ->
  unit

(** [recv t fiber ~node] blocks until the next in-order application
    message for [node]; acks and duplicates are consumed internally. *)
val recv : 'a t -> Shm_sim.Engine.fiber -> node:int -> 'a Msg.envelope

(** [pending_retx t ~node] is the number of outbound packets from [node]
    still awaiting acknowledgement. *)
val pending_retx : 'a t -> node:int -> int

(** [pending_note t] summarizes pending retransmissions per node — the
    [diag] string for {!Shm_sim.Engine.run}, making a stall under faults
    debuggable from the exception alone.  Empty when not armed. *)
val pending_note : 'a t -> string
