(** Point-to-point interconnect with per-node link occupancy.

    Models both the ATM LAN (each node has a dedicated full-duplex link to a
    non-blocking switch, so disjoint pairs communicate in parallel but a
    node's own links serialize) and, with different constants and zero
    software overhead, the AH crossbar.

    Sending charges the sender's fiber the software send cost, reserves the
    sender's transmit link and the receiver's receive link for the wire
    time, and posts the message to the receiver's mailbox.  Receiving
    charges the consuming fiber the software receive cost. *)

type 'a t

type blackout = {
  bo_src : int option;  (** restrict to this sender ([None] = any) *)
  bo_dst : int option;  (** restrict to this receiver ([None] = any) *)
  bo_from : int;  (** first cycle of the outage (inclusive) *)
  bo_until : int;  (** end of the outage (exclusive) *)
}
(** A deterministic link outage: every message offered on a matching
    (src, dst) pair while the sender's clock is inside [bo_from, bo_until)
    is dropped. *)

type faults = {
  drop_miss : float;  (** drop probability for {!Msg.Miss}-class messages *)
  drop_sync : float;  (** drop probability for {!Msg.Sync}-class messages *)
  dup_rate : float;  (** probability a delivered message is duplicated *)
  jitter_cycles : int;  (** extra delivery delay, uniform in [0, jitter] *)
  fault_seed : int;  (** seed of the dedicated fault {!Shm_sim.Prng} stream *)
  blackouts : blackout list;
}
(** Unreliable-network policy.  All rates are probabilities in [0, 1].
    Decisions are drawn from a dedicated PRNG stream seeded from
    [fault_seed], in global event order, so a fault schedule is
    reproducible from (run, seed). *)

(** The default policy: deliver everything exactly once.  With this policy
    the fabric makes no PRNG draws at all, so fault-free runs are
    byte-identical to a build without fault injection. *)
val no_faults : faults

(** [faults_active f] is true iff [f] can alter delivery. *)
val faults_active : faults -> bool

type config = {
  name : string;
  latency_cycles : int;  (** switch/propagation latency *)
  bytes_per_cycle : float;  (** per-link bandwidth *)
  overhead : Overhead.t;
  faults : faults;
}

(** DECstation cluster: 40 MHz CPUs on 155 Mbit/s ATM (~10 MB/s user-level). *)
val atm_dec : overhead:Overhead.t -> config

(** Section-3 simulated ATM: 100 MHz CPUs, 155 Mbit/s links, 1 us latency. *)
val atm_sim : overhead:Overhead.t -> config

(** Section-3 crossbar: 200 Mbyte/s per link, 100 ns latency, no software. *)
val crossbar_sim : config

val create :
  Shm_sim.Engine.t -> Shm_stats.Counters.t -> config -> nodes:int -> 'a t

val nodes : 'a t -> int

val config : 'a t -> config

(** [faults_armed t] is true iff the fabric was created with an active
    fault policy or has a node-lifecycle attached — i.e. iff delivery can
    fail, so reliability layers must arm sequencing and retransmission. *)
val faults_armed : 'a t -> bool

(** [attach_lifecycle t lc] arms whole-node crash semantics: every
    delivery decision moves to the arrival cycle, and a message arriving
    at a node that is down is dropped (counted as
    [net.faults.node_down]).  Attach before creating reliability layers
    over the fabric so they observe {!faults_armed}.  Message-fault PRNG
    draws are unaffected: a lifecycle without drop/dup/jitter rates makes
    no draws. *)
val attach_lifecycle : 'a t -> Shm_sim.Lifecycle.t -> unit

(** [lifecycle t] is the attached crash policy instance, if any. *)
val lifecycle : 'a t -> Shm_sim.Lifecycle.t option

(** [wire_cycles t bytes] is the link occupancy, in cycles, of a
    [bytes]-byte message (reliability layers use it to derive
    retransmission timeouts from the latency/bandwidth model). *)
val wire_cycles : 'a t -> int -> int

(** [send t fiber ~src ~dst ~class_ ~size body] transmits; the fiber's clock
    ends when the message has left the sender (send overhead + local link
    occupancy), not at delivery.

    Counters: every call bumps [net.msgs.offered].  The per-class,
    byte, and [net.msgs.delivered] counters are updated at delivery
    decision time, so with faults armed a dropped message contributes to
    offered (and [net.faults.dropped] / [net.faults.blackout]) but not to
    traffic, while a duplicated one delivers — and counts — twice
    ([net.faults.duplicated]); jittered copies bump [net.faults.delayed]. *)
val send :
  'a t ->
  Shm_sim.Engine.fiber ->
  src:int ->
  dst:int ->
  class_:Msg.class_ ->
  size:Msg.sizes ->
  'a ->
  unit

(** [loopback t fiber ~node ~class_ ~size body] posts a message to the
    node's own inbox at the fiber's current clock, free of wire time,
    software overheads and traffic counters.  Protocol layers use it to
    funnel a node's {e local} requests through its handler fiber so that
    protocol state mutations serialize in one logical order. *)
val loopback :
  'a t ->
  Shm_sim.Engine.fiber ->
  node:int ->
  class_:Msg.class_ ->
  size:Msg.sizes ->
  'a ->
  unit

(** [recv t fiber ~node] blocks until a message for [node] arrives and
    charges the receive overhead. *)
val recv : 'a t -> Shm_sim.Engine.fiber -> node:int -> 'a Msg.envelope

(** [poll t fiber ~node] consumes a pending message without blocking. *)
val poll : 'a t -> Shm_sim.Engine.fiber -> node:int -> 'a Msg.envelope option
