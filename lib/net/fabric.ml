module Engine = Shm_sim.Engine
module Resource = Shm_sim.Resource
module Mailbox = Shm_sim.Mailbox
module Prng = Shm_sim.Prng
module Counters = Shm_stats.Counters

type blackout = {
  bo_src : int option;
  bo_dst : int option;
  bo_from : int;
  bo_until : int;
}

type faults = {
  drop_miss : float;
  drop_sync : float;
  dup_rate : float;
  jitter_cycles : int;
  fault_seed : int;
  blackouts : blackout list;
}

let no_faults =
  {
    drop_miss = 0.0;
    drop_sync = 0.0;
    dup_rate = 0.0;
    jitter_cycles = 0;
    fault_seed = 0;
    blackouts = [];
  }

let faults_active f =
  f.drop_miss > 0.0 || f.drop_sync > 0.0 || f.dup_rate > 0.0
  || f.jitter_cycles > 0
  || f.blackouts <> []

type config = {
  name : string;
  latency_cycles : int;
  bytes_per_cycle : float;
  overhead : Overhead.t;
  faults : faults;
}

(* 155 Mbit/s user-limited to ~10 MB/s at 40 MHz: 0.25 bytes/cycle.
   1 us switch latency = 40 cycles at 40 MHz. *)
let atm_dec ~overhead =
  { name = "atm-dec"; latency_cycles = 40; bytes_per_cycle = 0.25; overhead;
    faults = no_faults }

(* 155 Mbit/s = ~19.4 MB/s at 100 MHz: 0.194 bytes/cycle; 1 us = 100 cycles. *)
let atm_sim ~overhead =
  { name = "atm-sim"; latency_cycles = 100; bytes_per_cycle = 0.194; overhead;
    faults = no_faults }

(* 200 MB/s at 100 MHz = 2 bytes/cycle; 100 ns = 10 cycles. *)
let crossbar_sim =
  { name = "crossbar"; latency_cycles = 10; bytes_per_cycle = 2.0;
    overhead = Overhead.hardware; faults = no_faults }

(* Per-message counter cells, resolved once at fabric creation: the send
   path bumps plain refs instead of hashing a (formatted) name per
   message. *)
type cells = {
  c_miss : int ref;
  c_sync : int ref;
  c_total : int ref;
  c_hdr : int ref;
  c_cons : int ref;
  c_payload : int ref;
  c_bytes : int ref;
  c_offered : int ref;
  c_delivered : int ref;
}

type 'a t = {
  eng : Engine.t;
  counters : Counters.t;
  cells : cells;
  cfg : config;
  n : int;
  tx : Resource.t array;
  rx : Resource.t array;
  inbox : 'a Msg.envelope Mailbox.t array;
  (* Dedicated fault stream: draws happen only when [active], in global
     event order, so a run's fault schedule is a pure function of
     (deterministic run, fault_seed). *)
  prng : Prng.t;
  active : bool;
  (* Node liveness, attached by the platform when a crash/restart policy
     is armed.  [None] keeps the exact pre-lifecycle delivery path (post
     at send time); [Some] defers the final delivery decision to the
     arrival cycle, where a message landing on a down node is dropped. *)
  mutable lifecycle : Shm_sim.Lifecycle.t option;
}

let create eng counters cfg ~nodes =
  {
    eng;
    counters;
    cells =
      {
        c_miss = Counters.cell counters "net.msgs.miss";
        c_sync = Counters.cell counters "net.msgs.sync";
        c_total = Counters.cell counters "net.msgs.total";
        c_hdr = Counters.cell counters "net.bytes.header";
        c_cons = Counters.cell counters "net.bytes.consistency";
        c_payload = Counters.cell counters "net.bytes.payload";
        c_bytes = Counters.cell counters "net.bytes.total";
        c_offered = Counters.cell counters "net.msgs.offered";
        c_delivered = Counters.cell counters "net.msgs.delivered";
      };
    cfg;
    n = nodes;
    tx = Array.init nodes (fun i -> Resource.create ~name:(Printf.sprintf "tx%d" i) ());
    rx = Array.init nodes (fun i -> Resource.create ~name:(Printf.sprintf "rx%d" i) ());
    inbox = Array.init nodes (fun _ -> Mailbox.create eng);
    prng = Prng.create ~seed:(0x5EED_F417 lxor cfg.faults.fault_seed);
    active = faults_active cfg.faults;
    lifecycle = None;
  }

let attach_lifecycle t lc = t.lifecycle <- Some lc

let lifecycle t = t.lifecycle

let nodes t = t.n

let config t = t.cfg

let wire_cycles t bytes =
  int_of_float (ceil (float_of_int bytes /. t.cfg.bytes_per_cycle))

let data_words (size : Msg.sizes) =
  (size.consistency_bytes + size.payload_bytes + 7) / 8

let[@inline] bump r n = r := !r + n

let count t ~class_ ~(size : Msg.sizes) =
  let k = t.cells in
  bump (match class_ with Msg.Miss -> k.c_miss | Msg.Sync -> k.c_sync) 1;
  bump k.c_total 1;
  bump k.c_hdr size.header_bytes;
  bump k.c_cons size.consistency_bytes;
  bump k.c_payload size.payload_bytes;
  bump k.c_bytes (Msg.total_bytes size)

let faults_armed t = t.active || t.lifecycle <> None

let in_blackout t ~src ~dst ~at =
  List.exists
    (fun b ->
      (match b.bo_src with None -> true | Some s -> s = src)
      && (match b.bo_dst with None -> true | Some d -> d = dst)
      && at >= b.bo_from && at < b.bo_until)
    t.cfg.faults.blackouts

let send t fiber ~src ~dst ~class_ ~size body =
  if src = dst then invalid_arg "Fabric.send: src = dst";
  bump t.cells.c_offered 1;
  let ov = t.cfg.overhead in
  Engine.advance fiber (ov.fixed_send + (ov.per_word * data_words size));
  Engine.sync fiber;
  let bytes = Msg.total_bytes size in
  let cycles = wire_cycles t bytes in
  let fl = t.cfg.faults in
  let launch = Engine.clock fiber in
  (* Fault decisions happen per offered message, in a fixed draw order
     (blackout check, drop draw, dup draw, one jitter draw per delivered
     copy); draws are skipped entirely when no fault policy is armed so
     fault-free runs stay byte-identical. *)
  let blackout = t.active && in_blackout t ~src ~dst ~at:launch in
  let dropped =
    blackout
    || (t.active
       &&
       let rate =
         match class_ with
         | Msg.Miss -> fl.drop_miss
         | Msg.Sync -> fl.drop_sync
       in
       rate > 0.0 && Prng.float t.prng 1.0 < rate)
  in
  if dropped then begin
    (* The sender still paid the send overhead and occupies its transmit
       link — the packet left the host before the network lost it. *)
    Counters.incr t.counters "net.faults.dropped";
    Engine.instant fiber (if blackout then "net.blackout" else "net.drop");
    if blackout then Counters.incr t.counters "net.faults.blackout";
    let tx_done = Resource.reserve t.tx.(src) ~ready:launch ~cycles in
    Engine.set_clock fiber tx_done
  end
  else begin
    let dup =
      t.active && fl.dup_rate > 0.0 && Prng.float t.prng 1.0 < fl.dup_rate
    in
    let jitter () =
      if t.active && fl.jitter_cycles > 0 then
        Prng.int t.prng (fl.jitter_cycles + 1)
      else 0
    in
    let first_jitter = jitter () in
    let tx_done = Resource.reserve t.tx.(src) ~ready:launch ~cycles in
    let deliver_one extra =
      if extra > 0 then Counters.incr t.counters "net.faults.delayed";
      count t ~class_ ~size;
      let arrival = tx_done + t.cfg.latency_cycles + extra in
      let delivered = Resource.reserve t.rx.(dst) ~ready:arrival ~cycles in
      match t.lifecycle with
      | None ->
          bump t.cells.c_delivered 1;
          Mailbox.post t.inbox.(dst) ~at:delivered
            { Msg.src; dst; class_; size; body }
      | Some lc ->
          (* Crash state at the arrival cycle is unknowable at send time,
             so the post happens from a scheduled callback: a message
             arriving during the receiver's outage is lost on the floor
             (the sender's reliable layer will retransmit it). *)
          let env = { Msg.src; dst; class_; size; body } in
          Engine.schedule t.eng ~at:delivered (fun () ->
              if Shm_sim.Lifecycle.alive lc dst then begin
                bump t.cells.c_delivered 1;
                Mailbox.post t.inbox.(dst) ~at:delivered env
              end
              else Counters.incr t.counters "net.faults.node_down")
    in
    (* The sender is released once the message leaves its link. *)
    Engine.set_clock fiber tx_done;
    deliver_one first_jitter;
    if dup then begin
      Counters.incr t.counters "net.faults.duplicated";
      Engine.instant fiber "net.dup";
      deliver_one (jitter ())
    end
  end

let charge_recv t fiber (env : 'a Msg.envelope) =
  let ov = t.cfg.overhead in
  Engine.advance fiber (ov.fixed_recv + (ov.per_word * data_words env.size));
  env

let loopback t fiber ~node ~class_ ~size body =
  Mailbox.post t.inbox.(node) ~at:(Engine.clock fiber)
    { Msg.src = node; dst = node; class_; size; body }

let recv t fiber ~node = charge_recv t fiber (Mailbox.recv fiber t.inbox.(node))

let poll t fiber ~node =
  Option.map (charge_recv t fiber) (Mailbox.poll fiber t.inbox.(node))
