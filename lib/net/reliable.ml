module Engine = Shm_sim.Engine
module Mailbox = Shm_sim.Mailbox
module Counters = Shm_stats.Counters

type 'a packet =
  | Raw of 'a
  | Data of { seq : int; ack : int; body : 'a }
  | Ack of { ack : int }

exception
  Peer_unreachable of { src : int; dst : int; seq : int; attempts : int }

let () =
  Printexc.register_printer (function
    | Peer_unreachable { src; dst; seq; attempts } ->
        Some
          (Printf.sprintf
             "Reliable.Peer_unreachable: node %d gave up on seq %d to node \
              %d after %d attempts"
             src seq dst attempts)
    | _ -> None)

let max_retries = 10

(* Retry/abort policy (configurable; see mli).  [on_peer_down = None]
   reproduces the historical behavior exactly: raise [Peer_unreachable]
   after [max_retries] failed retransmissions, uncapped backoff. *)
type policy = {
  p_max_retries : int;
  backoff_cap : int;
  on_peer_down : (src:int -> dst:int -> attempts:int -> unit) option;
}

let default_policy =
  { p_max_retries = max_retries; backoff_cap = 0; on_peer_down = None }

(* Outbound packet awaiting acknowledgement. *)
type 'a pending = {
  p_class : Msg.class_;
  p_size : Msg.sizes;
  p_body : 'a;
  mutable attempts : int;
  mutable noted_down : bool; (* [on_peer_down] fired for this packet *)
}

(* One direction of one (node, peer) pair.  [next_seq]/[unacked] describe
   the outbound stream to [peer]; [next_expected]/[ooo] the inbound stream
   from it; [ack_owed]/[ack_timer_armed] the delayed standalone ack. *)
type 'a link = {
  mutable next_seq : int;
  unacked : (int, 'a pending) Hashtbl.t;
  mutable next_expected : int;
  ooo : (int, Msg.class_ * Msg.sizes * 'a) Hashtbl.t;
  mutable ack_owed : bool;
  mutable ack_timer_armed : bool;
}

type cmd = Retx of { peer : int; seq : int } | Ack_due of { peer : int }

type 'a t = {
  eng : Engine.t;
  counters : Counters.t;
  fabric : 'a packet Fabric.t;
  armed : bool;
  links : 'a link array array; (* links.(node).(peer) *)
  cmds : cmd Mailbox.t array; (* per-node retransmit-daemon timer queue *)
  ready : 'a Msg.envelope Queue.t array; (* in-order backlog from ooo drain *)
  mutable policy : policy;
}

let fabric t = t.fabric
let armed t = t.armed
let set_policy t p = t.policy <- p
let policy t = t.policy

let create eng counters fabric =
  let n = Fabric.nodes fabric in
  let link () =
    {
      next_seq = 0;
      unacked = Hashtbl.create 8;
      next_expected = 0;
      ooo = Hashtbl.create 8;
      ack_owed = false;
      ack_timer_armed = false;
    }
  in
  {
    eng;
    counters;
    fabric;
    armed = Fabric.faults_armed fabric;
    links = Array.init n (fun _ -> Array.init n (fun _ -> link ()));
    cmds = Array.init n (fun _ -> Mailbox.create eng);
    ready = Array.init n (fun _ -> Queue.create ());
    policy = default_policy;
  }

(* Timeouts derive from the fabric's latency/bandwidth model: one-way wire
   time for this packet plus the fixed software path at both ends, with a
   4x safety factor to ride out moderate link contention without spurious
   retransmission.  Spurious retransmits are harmless (dup-suppressed) but
   waste simulated bandwidth. *)
let software_slack (cfg : Fabric.config) =
  let ov = cfg.overhead in
  ov.Overhead.fixed_send + ov.Overhead.fixed_recv + (2 * ov.Overhead.handler)

let base_timeout t ~size =
  let cfg = Fabric.config t.fabric in
  let one_way =
    cfg.Fabric.latency_cycles
    + Fabric.wire_cycles t.fabric (Msg.total_bytes size)
  in
  4 * (one_way + software_slack cfg)

(* Standalone acks wait roughly one one-way hop before firing, giving a
   reply (with its piggybacked ack) time to make the standalone one moot. *)
let ack_delay t =
  let cfg = Fabric.config t.fabric in
  cfg.Fabric.latency_cycles + software_slack cfg

let ack_size = Msg.sizes ()

(* Cumulative ack for the inbound stream of [l]: highest seq below which
   everything has been delivered in order. *)
let cumulative_ack l = l.next_expected - 1

let send t fiber ~src ~dst ~class_ ~size body =
  if not t.armed then
    Fabric.send t.fabric fiber ~src ~dst ~class_ ~size (Raw body)
  else begin
    let l = t.links.(src).(dst) in
    let seq = l.next_seq in
    l.next_seq <- seq + 1;
    Hashtbl.replace l.unacked seq
      {
        p_class = class_;
        p_size = size;
        p_body = body;
        attempts = 0;
        noted_down = false;
      };
    l.ack_owed <- false (* this packet piggybacks the ack *);
    Counters.incr t.counters "net.reliable.data";
    Fabric.send t.fabric fiber ~src ~dst ~class_ ~size
      (Data { seq; ack = cumulative_ack l; body });
    Mailbox.post t.cmds.(src)
      ~at:(Engine.clock fiber + base_timeout t ~size)
      (Retx { peer = dst; seq })
  end

let loopback t fiber ~node ~class_ ~size body =
  Fabric.loopback t.fabric fiber ~node ~class_ ~size (Raw body)

let process_ack t ~node ~peer ack =
  let l = t.links.(node).(peer) in
  let acked =
    Hashtbl.fold (fun s _ acc -> if s <= ack then s :: acc else acc) l.unacked []
  in
  List.iter (Hashtbl.remove l.unacked) acked

let send_ack t fiber ~src ~dst =
  let l = t.links.(src).(dst) in
  l.ack_owed <- false;
  Counters.incr t.counters "net.reliable.acks";
  Fabric.send t.fabric fiber ~src ~dst ~class_:Msg.Sync ~size:ack_size
    (Ack { ack = cumulative_ack l })

let note_inbound t fiber ~node ~peer =
  let l = t.links.(node).(peer) in
  l.ack_owed <- true;
  if not l.ack_timer_armed then begin
    l.ack_timer_armed <- true;
    Mailbox.post t.cmds.(node)
      ~at:(Engine.clock fiber + ack_delay t)
      (Ack_due { peer })
  end

let envelope ~src ~dst ~class_ ~size body =
  { Msg.src; dst; class_; size; body }

let drain_ooo t ~node ~peer l =
  let rec go () =
    match Hashtbl.find_opt l.ooo l.next_expected with
    | Some (class_, size, body) ->
        Hashtbl.remove l.ooo l.next_expected;
        l.next_expected <- l.next_expected + 1;
        Queue.push
          (envelope ~src:peer ~dst:node ~class_ ~size body)
          t.ready.(node);
        go ()
    | None -> ()
  in
  go ()

let rec recv t fiber ~node =
  match Queue.take_opt t.ready.(node) with
  | Some env -> env
  | None -> (
      let env = Fabric.recv t.fabric fiber ~node in
      match env.Msg.body with
      | Raw body ->
          envelope ~src:env.src ~dst:env.dst ~class_:env.class_
            ~size:env.size body
      | Ack { ack } ->
          process_ack t ~node ~peer:env.src ack;
          recv t fiber ~node
      | Data { seq; ack; body } ->
          process_ack t ~node ~peer:env.src ack;
          let l = t.links.(node).(env.src) in
          if seq < l.next_expected || Hashtbl.mem l.ooo seq then begin
            (* Duplicate (retransmission of something we already have):
               the peer evidently missed our ack, so re-ack immediately. *)
            Counters.incr t.counters "net.reliable.dups";
            send_ack t fiber ~src:node ~dst:env.src;
            recv t fiber ~node
          end
          else if seq = l.next_expected then begin
            l.next_expected <- seq + 1;
            drain_ooo t ~node ~peer:env.src l;
            note_inbound t fiber ~node ~peer:env.src;
            envelope ~src:env.src ~dst:env.dst ~class_:env.class_
              ~size:env.size body
          end
          else begin
            (* Early: buffer until the gap fills so the protocol layers
               keep their per-link FIFO guarantee under jitter. *)
            Counters.incr t.counters "net.reliable.ooo";
            Hashtbl.replace l.ooo seq (env.class_, env.size, body);
            note_inbound t fiber ~node ~peer:env.src;
            recv t fiber ~node
          end)

(* [down_until] of a node under the fabric's lifecycle; 0 = alive (or no
   lifecycle attached, where every node is permanently alive). *)
let node_down_until t n =
  match Fabric.lifecycle t.fabric with
  | None -> 0
  | Some lc -> Shm_sim.Lifecycle.down_until lc n

let note_peer_down t ~src ~dst p =
  if not p.noted_down then begin
    p.noted_down <- true;
    Counters.incr t.counters "net.reliable.peer_down";
    match t.policy.on_peer_down with
    | Some cb -> cb ~src ~dst ~attempts:p.attempts
    | None -> ()
  end

let retx_daemon t node fiber =
  let rec loop () =
    (match
       Engine.with_category fiber Engine.Net_wait (fun () ->
           Mailbox.recv fiber t.cmds.(node))
     with
    | Retx { peer; seq } -> (
        let l = t.links.(node).(peer) in
        match Hashtbl.find_opt l.unacked seq with
        | None -> () (* acked in the meantime; stale timer *)
        | Some p ->
            let now = Engine.clock fiber in
            let self_down = node_down_until t node in
            let peer_down = node_down_until t peer in
            if self_down > now then
              (* This node crashed: a dead host retransmits nothing.  The
                 timer freezes (no attempt consumed) until restart. *)
              Mailbox.post t.cmds.(node) ~at:self_down (Retx { peer; seq })
            else if peer_down > now && t.policy.on_peer_down <> None then begin
              (* The peer is down and a crash-aware policy is installed:
                 report the death once per packet and park the timer at
                 the peer's restart cycle — crash detection and transient
                 loss share this one retransmission path. *)
              note_peer_down t ~src:node ~dst:peer p;
              Mailbox.post t.cmds.(node) ~at:peer_down (Retx { peer; seq })
            end
            else begin
              p.attempts <- p.attempts + 1;
              if p.attempts > t.policy.p_max_retries then begin
                match t.policy.on_peer_down with
                | None ->
                    raise
                      (Peer_unreachable
                         { src = node; dst = peer; seq; attempts = p.attempts })
                | Some _ ->
                    (* Keep probing: the policy owns giving up.  Without
                       the peer-down report above this packet has now also
                       exhausted the transient-loss budget, so report. *)
                    note_peer_down t ~src:node ~dst:peer p
              end;
              Counters.incr t.counters "net.retrans.total";
              Engine.instant fiber "net.retransmit";
              l.ack_owed <- false;
              Engine.with_category fiber Engine.Protocol (fun () ->
                  Fabric.send t.fabric fiber ~src:node ~dst:peer
                    ~class_:p.p_class ~size:p.p_size
                    (Data { seq; ack = cumulative_ack l; body = p.p_body }));
              let exp =
                if t.policy.backoff_cap > 0 then
                  min p.attempts t.policy.backoff_cap
                else p.attempts
              in
              let backoff = base_timeout t ~size:p.p_size lsl exp in
              Mailbox.post t.cmds.(node)
                ~at:(Engine.clock fiber + backoff)
                (Retx { peer; seq })
            end)
    | Ack_due { peer } ->
        let now = Engine.clock fiber in
        let self_down = node_down_until t node in
        if self_down > now then
          (* Dead hosts do not ack; re-arm for after the restart. *)
          Mailbox.post t.cmds.(node) ~at:self_down (Ack_due { peer })
        else begin
          let l = t.links.(node).(peer) in
          l.ack_timer_armed <- false;
          if l.ack_owed then
            Engine.with_category fiber Engine.Protocol (fun () ->
                send_ack t fiber ~src:node ~dst:peer)
        end);
    loop ()
  in
  loop ()

let start t =
  if t.armed then
    for node = 0 to Fabric.nodes t.fabric - 1 do
      ignore
        (Engine.spawn t.eng ~daemon:true
           ~name:(Printf.sprintf "retx-%d" node)
           ~at:0
           (fun fiber -> retx_daemon t node fiber))
    done

let pending_retx t ~node =
  Array.fold_left
    (fun acc l -> acc + Hashtbl.length l.unacked)
    0 t.links.(node)

let pending_note t =
  if not t.armed then ""
  else
    let n = Fabric.nodes t.fabric in
    let parts = ref [] in
    for node = n - 1 downto 0 do
      let pending = pending_retx t ~node in
      if pending > 0 then
        parts := Printf.sprintf "node%d:%d" node pending :: !parts
    done;
    match !parts with
    | [] -> "no pending retransmissions"
    | parts -> "pending retransmissions: " ^ String.concat " " parts
