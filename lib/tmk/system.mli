(** The TreadMarks lazy-release-consistency protocol engine.

    One [t] drives a whole cluster: per-node page tables, twins, interval
    logs, diff stores, the distributed lock queues, and the centralized
    barrier manager, exchanging {!Proto} messages over a
    {!Shm_net.Reliable} channel (which is a pure pass-through to the
    underlying {!Shm_net.Fabric} unless the fabric injects faults).

    {b Node vs processor.}  The protocol works on {e nodes}.  On AS and the
    DEC cluster a node has one processor; on HS a node is a bus-based
    multiprocessor whose processors all call into the same node state
    ("all of the processors within a node are treated as one by the DSM
    system"): page faults for the same page merge, diffs from co-located
    processors coalesce into a single per-node diff, and a lock whose token
    is on-node is acquired without messages.

    {b Usage discipline.}  A processor fiber calls [read_guard] (resp.
    [write_guard]) immediately before reading (writing) a shared word, and
    performs the actual {!Shm_memsys.Memory} access before its next yield
    point, so guard and access are atomic.  Pages start valid and identical
    on every node (initial distribution is excluded, as in the paper). *)

type t

(** [create ?lifecycle eng counters fabric cfg ~memories] builds the
    cluster's protocol state.  With [?lifecycle] the system arms crash
    recovery (DESIGN.md §13): per-node failure-atomic checkpoint images
    updated on the lifecycle's [on_ckpt] tick (sub-page run-length
    deltas, counters [ckpt.count]/[ckpt.bytes]), manager re-homing of
    lock queue tails and the barrier role to a surviving node on crash
    detection ([recovery.rehomes], stale requests forwarded as
    [recovery.forwards]), and an online rejoin at restart that replays
    the node's own diff log since the last checkpoint and re-validates
    pages touched by foreign intervals ([recovery.count],
    [recovery.cycles], [recovery.replay_bytes],
    [recovery.invalidated]).  The caller must attach the same lifecycle
    to the fabric (before [create]) so in-flight messages to a down node
    drop and its retransmit timers freeze.  Without [?lifecycle] every
    code path is byte-identical to the pre-crash-layer system. *)
val create :
  ?lifecycle:Shm_sim.Lifecycle.t ->
  Shm_sim.Engine.t ->
  Shm_stats.Counters.t ->
  Proto.t Shm_net.Reliable.packet Shm_net.Fabric.t ->
  Config.t ->
  memories:Shm_memsys.Memory.t array ->
  t

val config : t -> Config.t

(** [memory t ~node] is the node's private copy of the shared space. *)
val memory : t -> node:int -> Shm_memsys.Memory.t

(** [set_page_hook t f] registers [f ~node ~page], called whenever a page's
    contents are replaced under the application's feet (diffs applied), so
    the platform can invalidate stale cache lines. *)
val set_page_hook : t -> (node:int -> page:int -> unit) -> unit

(** [start t] spawns one message-handler daemon fiber per node (plus the
    reliable layer's retransmit daemons when faults are armed). *)
val start : t -> unit

(** [retx_note t] is {!Shm_net.Reliable.pending_note} for the system's
    channel — pass as [diag] to {!Shm_sim.Engine.run} so deadlock/watchdog
    reports show per-node pending retransmissions. *)
val retx_note : t -> string

val page_of : t -> int -> int

(** [page_shift t] is [log2 page_words], or [-1] when [page_words] is not
    a power of two (then the TLB fast path must not be used). *)
val page_shift : t -> int

(** [access_rights t ~node] is the node's software TLB: one byte per page,
    ['\000'] = a guard call must run (fault), ['\001'] = reads may skip the
    guard, ['\002'] = reads and writes may skip it (twin already in place,
    or single-node run).  Maintained by the protocol on every
    valid/twin transition; callers must treat it as read-only.  A platform
    hot path indexes it with [addr lsr page_shift] and falls back to
    {!read_guard}/{!write_guard} on a miss. *)
val access_rights : t -> node:int -> Bytes.t

(** {2 Called from processor fibers} *)

val read_guard : t -> Shm_sim.Engine.fiber -> node:int -> int -> unit

val write_guard : t -> Shm_sim.Engine.fiber -> node:int -> int -> unit

(** [read_range_guard t fiber ~node addr words ~f] guards every page
    overlapping the range once, in address order, calling [f run_addr
    run_words] for each in-page run immediately after that page's guard.
    Observably identical to guarding word by word: faults, cycles and
    messages happen at the same points.  [f] must not yield. *)
val read_range_guard :
  t -> Shm_sim.Engine.fiber -> node:int -> int -> int ->
  f:(int -> int -> unit) -> unit

(** Like {!read_range_guard} but also establishes the twin (one per page
    per interval) before handing the run to [f]. *)
val write_range_guard :
  t -> Shm_sim.Engine.fiber -> node:int -> int -> int ->
  f:(int -> int -> unit) -> unit

val acquire : t -> Shm_sim.Engine.fiber -> node:int -> lock:int -> unit

val release : t -> Shm_sim.Engine.fiber -> node:int -> lock:int -> unit

(** [barrier_arrive t fiber ~node ~id] announces the whole node's arrival;
    on a multiprocessor node only the last processor to arrive calls it. *)
val barrier_arrive : t -> Shm_sim.Engine.fiber -> node:int -> id:int -> unit

(** {2 Introspection (tests, reports)} *)

(** [page_valid t ~node ~page]. *)
val page_valid : t -> node:int -> page:int -> bool

(** [dump_lock t ~lock] renders every node's state for one lock (token
    location, holders, queue lengths) — debugging aid. *)
val dump_lock : t -> lock:int -> string

(** [vc t ~node] is a copy of the node's vector time. *)
val vc : t -> node:int -> Vc.t

(** [check_invariants t] asserts protocol sanity: vector clocks never
    exceed creators' interval counts, valid pages have no applicable
    pending notices, twins exist exactly for writable pages. *)
val check_invariants : t -> unit
