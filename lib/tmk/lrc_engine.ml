(* The TreadMarks protocol family as mountable coherence engines.

   Three registry entries share one [System]: plain lazy release
   consistency (the paper's TreadMarks), an eager-update variant that
   broadcasts every closing interval's diffs (the paper's TSP
   stale-bound fix applied to all intervals), and conventional
   eager-invalidate release consistency (the Munin-style ablation). *)

module Fabric = Shm_net.Fabric

let mount_policy ~policy ~i_name (ctx : Shm_proto.ctx) =
  let fabric = Fabric.create ctx.eng ctx.counters ctx.fabric ~nodes:ctx.nodes in
  (* Attach before the system creates its Reliable channel, so the
     channel arms sequencing/retransmission and sees node liveness. *)
  Option.iter (Fabric.attach_lifecycle fabric) ctx.lifecycle;
  let cfg =
    {
      (Config.default ~n_nodes:ctx.nodes ~shared_words:ctx.shared_words) with
      Config.page_words = ctx.page_words;
      notice_policy = policy;
      eager_locks = ctx.eager_lock_hints;
    }
  in
  let sys =
    System.create ?lifecycle:ctx.lifecycle ctx.eng ctx.counters fabric cfg
      ~memories:ctx.memories
  in
  {
    Shm_proto.i_name;
    page_shift = System.page_shift sys;
    (* Under eager invalidation a remote release can yank a page at any
       moment, so batched range guards would observably diverge from the
       per-word sequence: force the literal loop. *)
    wordwise_ranges = (policy = Config.Eager_invalidate);
    access_rights = Some (fun ~node -> System.access_rights sys ~node);
    set_page_hook = (fun h -> System.set_page_hook sys h);
    start = (fun () -> System.start sys);
    retx_note = (fun () -> System.retx_note sys);
    read_guard = (fun f ~node addr -> System.read_guard sys f ~node addr);
    write_guard = (fun f ~node addr -> System.write_guard sys f ~node addr);
    read_range_guard =
      (fun f ~node addr words ~f:move ->
        System.read_range_guard sys f ~node addr words ~f:move);
    write_range_guard =
      (fun f ~node addr words ~f:move ->
        System.write_range_guard sys f ~node addr words ~f:move);
    acquire = (fun f ~node ~lock -> System.acquire sys f ~node ~lock);
    release = (fun f ~node ~lock -> System.release sys f ~node ~lock);
    barrier_arrive = (fun f ~node ~id -> System.barrier_arrive sys f ~node ~id);
    rmw = None;
    invalidate_range = None;
    dump_lock = Some (fun ~lock -> System.dump_lock sys ~lock);
    check_invariants = (fun () -> System.check_invariants sys);
  }

module Lrc = struct
  let name = "lrc"
  let kind = Shm_proto.Sdsm

  let describe =
    "TreadMarks lazy release consistency: multiple writers, diffs, write \
     notices moving only with lock grants and barrier departures"

  let mount ctx = mount_policy ~policy:Config.Lazy ~i_name:name ctx
end

module Eager_lrc = struct
  let name = "eager-lrc"
  let kind = Shm_proto.Sdsm

  let describe =
    "release consistency with eager diff updates: every release and \
     barrier broadcasts the closing interval's diffs (the paper's TSP \
     stale-bound fix, applied to every interval)"

  let mount ctx = mount_policy ~policy:Config.Eager_update ~i_name:name ctx
end

module Erc = struct
  let name = "erc"
  let kind = Shm_proto.Sdsm

  let describe =
    "conventional eager-invalidate release consistency: every release \
     broadcasts write notices and waits for acknowledgements (Munin-style)"

  let mount ctx = mount_policy ~policy:Config.Eager_invalidate ~i_name:name ctx
end
