(** TreadMarks instance configuration. *)

(** When write notices travel.  [Lazy] is TreadMarks: notices move only
    with lock grants and barrier departures.  [Eager_invalidate] is
    conventional (Munin-style) eager release consistency: every release
    broadcasts the closing interval's notices so all copies invalidate
    immediately — correct for any program, at a per-release broadcast
    cost (the message blow-up LRC was designed to eliminate).
    [Eager_update] pushes the closing interval's {e diffs} (not just
    notices) to every node at each release and barrier arrival — the
    mechanism behind the paper's proposed fix for TSP's stale bound
    (Section 2.4.3), generalised from per-lock hints to every interval. *)
type notice_policy = Lazy | Eager_invalidate | Eager_update

type t = {
  n_nodes : int;
  page_words : int;  (** 512 words = 4 KB Ultrix pages *)
  shared_words : int;  (** size of the shared address space *)
  n_locks : int;
  n_barriers : int;
  barrier_manager : int;  (** node hosting the barrier manager *)
  twin_copy_per_word : int;  (** memcpy cost of twin creation *)
  apply_per_word : int;  (** memcpy cost of applying a fetched diff *)
  local_lock_cycles : int;  (** token already on-node: library-only cost *)
  notice_policy : notice_policy;
  eager_locks : int list;
      (** locks using eager release: their releases push the closing
          interval's diffs to every node (paper Section 2.4.3).  Only
          sound for single-writer-at-a-time data, e.g. the TSP bound. *)
}

(** [default ~n_nodes ~shared_words] fills in paper-derived constants. *)
val default : n_nodes:int -> shared_words:int -> t

(** [manager_of t lock] is the lock's statically-assigned manager node. *)
val manager_of : t -> int -> int

val n_pages : t -> int

val validate : t -> unit
