module Engine = Shm_sim.Engine
module Mailbox = Shm_sim.Mailbox
module Waitq = Shm_sim.Waitq
module Fabric = Shm_net.Fabric
module Reliable = Shm_net.Reliable
module Msg = Shm_net.Msg
module Overhead = Shm_net.Overhead
module Memory = Shm_memsys.Memory
module Counters = Shm_stats.Counters
module Lifecycle = Shm_sim.Lifecycle

type page_state = {
  mutable valid : bool;
  mutable twin : Memory.t option;  (** present iff writable *)
  applied : Vc.t;  (** per-creator highest interval reflected in our copy *)
  mutable pending : (int * int) list;  (** (creator, seqno) notices awaiting diffs *)
}

type lock_state = {
  mutable has_token : bool;
  mutable in_use : bool;
  remote_waiters : (int * int * Vc.t) Queue.t;  (** (node, req, vc) *)
  local_waiters : Waitq.t;
  (* Manager-side distributed-queue tail; meaningful only at the lock's
     manager node. *)
  mutable tail : int;
}

type recov = {
  image : Memory.t;
      (** failure-atomic checkpoint image of the node's shared region *)
  snap : Vc.t array;  (** per-page applied vector at the last checkpoint *)
  mutable ckpt_seq : int;  (** own interval count at the last checkpoint *)
  ckpt_dirty : Bytes.t;  (** pages touched since the last checkpoint *)
}

type node = {
  id : int;
  mem : Memory.t;
  vc : Vc.t;
  mutable seq : int;  (** own interval counter, = vc.(id) *)
  store : Record.Store.t;
  pages : page_state array;
  rights : Bytes.t;
      (** software TLB: one byte per page, ['\000'] = guard must fault,
          ['\001'] = readable, ['\002'] = readable and writable (twin in
          place, or single node).  Derived from [pages]; consulted by the
          platforms' fast paths to skip the guard call entirely. *)
  mutable dirty : int list;  (** pages dirtied in the open interval *)
  own_diffs : (int * int, Diff.t) Hashtbl.t;  (** (page, seqno) -> diff *)
  eager_diffs : (int * int * int, Diff.t) Hashtbl.t;
      (** (page, creator, seqno) -> eagerly shipped diff, not yet applied *)
  locks : lock_state array;
  pending_reqs : (int, Proto.t Mailbox.t) Hashtbl.t;
  mutable next_req : int;
  mutable sent_to_manager : int;  (** own seq already pushed to barrier mgr *)
  inflight : (int, Waitq.t) Hashtbl.t;  (** page -> fibers awaiting its fetch *)
  steal : int ref;  (** handler CPU cycles to charge the application *)
  mutable recov : recov option;  (** checkpoint state; [None] = crash-free *)
}

type barrier_state = {
  mutable arrivals : (int * int * Vc.t) list;
  mutable stash : Record.t list;
      (** arrival records of the open episode; copied to a successor's
          store when the barrier manager is re-homed after a crash *)
}

type t = {
  eng : Engine.t;
  counters : Counters.t;
  net : Proto.t Reliable.t;
  cfg : Config.t;
  nodes : node array;
  barriers : barrier_state array;
  page_shift : int;  (** log2 page_words, or -1 if not a power of two *)
  mutable page_hook : node:int -> page:int -> unit;
  lock_home : int array;
      (** current manager of each lock; starts at [Config.manager_of] and
          moves to a surviving node when the manager crashes *)
  mutable barrier_home : int;  (** current barrier manager, likewise *)
  lifecycle : Lifecycle.t option;
}

let config t = t.cfg

let memory t ~node = t.nodes.(node).mem

let set_page_hook t f = t.page_hook <- f

let page_of t addr =
  if t.page_shift >= 0 then addr lsr t.page_shift
  else addr / t.cfg.page_words

let page_shift t = t.page_shift

let access_rights t ~node = t.nodes.(node).rights

(* Recompute the TLB byte for one page from its protocol state.  Must be
   called after every transition of [valid] or [twin]. *)
let update_rights t nd page =
  let st = nd.pages.(page) in
  Bytes.unsafe_set nd.rights page
    (if not st.valid then '\000'
     else if st.twin <> None || t.cfg.n_nodes = 1 then '\002'
     else '\001')

let overhead t = (Fabric.config (Reliable.fabric t.net)).Fabric.overhead

(* Record that a page's contents diverged from the checkpoint image.
   Free when checkpointing is off ([recov = None], the crash-free case). *)
let mark_ckpt_dirty nd page =
  match nd.recov with
  | None -> ()
  | Some rv -> Bytes.unsafe_set rv.ckpt_dirty page '\001'

let create ?lifecycle eng counters fabric cfg ~memories =
  Config.validate cfg;
  if Array.length memories <> cfg.n_nodes then
    invalid_arg "Tmk.System.create: one memory per node required";
  let n = cfg.n_nodes in
  let mk_lock lock node_id =
    let manager = Config.manager_of cfg lock in
    {
      has_token = node_id = manager;
      in_use = false;
      remote_waiters = Queue.create ();
      local_waiters = Waitq.create eng;
      tail = manager;
    }
  in
  let mk_node id =
    {
      id;
      mem = memories.(id);
      vc = Vc.create ~nodes:n;
      seq = 0;
      store = Record.Store.create ~nodes:n;
      pages =
        Array.init (Config.n_pages cfg) (fun _ ->
            { valid = true; twin = None; applied = Vc.create ~nodes:n;
              pending = [] });
      rights =
        (* Pages start valid everywhere; a single node never twins. *)
        Bytes.make (Config.n_pages cfg) (if n = 1 then '\002' else '\001');
      dirty = [];
      own_diffs = Hashtbl.create 256;
      eager_diffs = Hashtbl.create 64;
      locks = Array.init cfg.n_locks (fun l -> mk_lock l id);
      pending_reqs = Hashtbl.create 16;
      next_req = 0;
      sent_to_manager = 0;
      inflight = Hashtbl.create 8;
      steal = ref 0;
      recov = None;
    }
  in
  let pw = cfg.page_words in
  let page_shift =
    if pw > 0 && pw land (pw - 1) = 0 then
      let rec go s n = if n = 1 then s else go (s + 1) (n lsr 1) in
      go 0 pw
    else -1
  in
  let t =
    {
      eng;
      counters;
      net = Reliable.create eng counters fabric;
      cfg;
      nodes = Array.init n mk_node;
      barriers =
        Array.init cfg.n_barriers (fun _ -> { arrivals = []; stash = [] });
      page_shift;
      page_hook = (fun ~node:_ ~page:_ -> ());
      lock_home = Array.init cfg.n_locks (Config.manager_of cfg);
      barrier_home = cfg.barrier_manager;
      lifecycle;
    }
  in
  (match lifecycle with
  | None -> ()
  | Some _ ->
      (* Crash detection and transient loss share the reliable channel:
         a packet to a down peer reports the suspected death once
         ([net.reliable.peer_down]) and then parks its timer at the
         peer's restart instead of aborting, with the backoff exponent
         capped so delivery resumes promptly. *)
      Reliable.set_policy t.net
        {
          Reliable.default_policy with
          Reliable.backoff_cap = 6;
          on_peer_down = Some (fun ~src:_ ~dst:_ ~attempts:_ -> ());
        };
      (* Arm failure-atomic checkpointing: one image per node, seeded
         from the initial memory, plus per-page applied-vector snapshots
         so a rejoin knows which foreign intervals to distrust. *)
      let words = Config.n_pages cfg * cfg.page_words in
      Array.iter
        (fun nd ->
          let image = Memory.create ~words in
          Memory.blit ~src:nd.mem ~src_pos:0 ~dst:image ~dst_pos:0 ~len:words;
          nd.recov <-
            Some
              {
                image;
                snap =
                  Array.init (Config.n_pages cfg) (fun _ ->
                      Vc.create ~nodes:n);
                ckpt_seq = 0;
                ckpt_dirty = Bytes.make (Config.n_pages cfg) '\000';
              })
        t.nodes);
  t

(* ------------------------------------------------------------------ *)
(* Small helpers                                                       *)

let fresh_req nd =
  let r = nd.next_req in
  nd.next_req <- r + 1;
  r

let register_req t nd req =
  let mb = Mailbox.create t.eng in
  Hashtbl.replace nd.pending_reqs req mb;
  mb

let finish_req nd req = Hashtbl.remove nd.pending_reqs req

let drain_steal fiber nd =
  let s = !(nd.steal) in
  if s > 0 then begin
    nd.steal := 0;
    (* Handler CPU time charged to the application is protocol overhead. *)
    Engine.with_category fiber Engine.Protocol (fun () ->
        Engine.advance fiber s)
  end

(* Optional protocol tracing for debugging: set TMKDBG_PAGE / TMKDBG_LOCK
   to a page or lock id to stream that object's protocol events to
   stderr (twins, closes, notices, diff applications; requests, forwards,
   grants, releases). *)
let debug_page =
  match Sys.getenv_opt "TMKDBG_PAGE" with
  | Some v -> int_of_string v
  | None -> -1

let debug_lock =
  match Sys.getenv_opt "TMKDBG_LOCK" with
  | Some v -> int_of_string v
  | None -> -1

let send t fiber ~src ~dst body =
  Reliable.send t.net fiber ~src ~dst ~class_:(Proto.class_ body)
    ~size:(Proto.sizes body) body

(* CPU cycles a node spends serving a request, charged to its application
   fiber via [steal] (on a uniprocessor node the handler and the
   application share the CPU). *)
let serve_cost t ~in_size ~out_size ~replied =
  let ov = overhead t in
  let words (s : Msg.sizes) = (s.consistency_bytes + s.payload_bytes + 7) / 8 in
  ov.fixed_recv + ov.handler + (ov.per_word * words in_size)
  + if replied then ov.fixed_send + (ov.per_word * words out_size) else 0

let zero_size = Msg.sizes ()

(* ------------------------------------------------------------------ *)
(* Write-notice registration and invalidation                          *)

(* Register foreign interval records: remember them, queue per-page
   notices, and invalidate affected valid pages. *)
let register_records t fiber nd records =
  List.iter
    (fun (r : Record.t) ->
      ignore (Record.Store.add nd.store r);
      if r.creator <> nd.id then
        List.iter
          (fun p ->
            let st = nd.pages.(p) in
            (* The record may already be in the store (the barrier manager
               stashes arrival records before its own departure), so the
               notice test must not depend on store freshness. *)
            if
              r.seqno > st.applied.(r.creator)
              && not (List.mem (r.creator, r.seqno) st.pending)
            then begin
              st.pending <- (r.creator, r.seqno) :: st.pending;
              if st.valid then begin
                st.valid <- false;
                update_rights t nd p;
                Counters.incr t.counters "tmk.invalidations";
                Engine.instant fiber "tmk.invalidate"
              end
            end)
          r.pages)
    records

(* Records with [lo_vc.(c) < seqno <= hi_vc.(c)], oldest first.  The
   caller's store must cover [hi_vc] (the contiguity invariant: a node's
   vector time never advances past its contiguously-known records). *)
let records_range nd ~lo_vc ~hi_vc =
  let n = Vc.nodes lo_vc in
  let acc = ref [] in
  for c = 0 to n - 1 do
    let lo = lo_vc.(c) and hi = hi_vc.(c) in
    if hi > lo then
      acc := Record.Store.range nd.store ~creator:c ~lo ~hi @ !acc
  done;
  List.sort
    (fun a b -> compare (Record.linear_key a) (Record.linear_key b))
    !acc

(* Records the destination lacks, relative to our own vector time. *)
let records_between nd ~vc_dst = records_range nd ~lo_vc:vc_dst ~hi_vc:nd.vc

(* ------------------------------------------------------------------ *)
(* Interval closing and diff creation                                  *)

let close_interval t fiber nd =
  match nd.dirty with
  | [] -> None
  | dirty ->
      let ov = overhead t in
      nd.seq <- nd.seq + 1;
      nd.vc.(nd.id) <- nd.seq;
      let pages = List.sort compare dirty in
      if List.mem debug_page pages then
        Printf.eprintf "node %d closes interval %d with page %d vc=%s\n" nd.id
          nd.seq debug_page
          (Format.asprintf "%a" Vc.pp nd.vc);
      List.iter
        (fun p ->
          let st = nd.pages.(p) in
          let twin =
            match st.twin with
            | Some tw -> tw
            | None -> failwith "close_interval: dirty page without twin"
          in
          let diff =
            Diff.make ~page:p ~twin ~current:nd.mem
              ~base:(p * t.cfg.page_words) ~words:t.cfg.page_words
          in
          Engine.with_category fiber Engine.Diff (fun () ->
              Engine.advance fiber (ov.diff_per_word * t.cfg.page_words));
          Hashtbl.replace nd.own_diffs (p, nd.seq) diff;
          Counters.incr t.counters "tmk.diffs_created";
          st.twin <- None;
          update_rights t nd p;
          st.applied.(nd.id) <- nd.seq)
        pages;
      nd.dirty <- [];
      let record =
        { Record.creator = nd.id; seqno = nd.seq; vc = Vc.copy nd.vc; pages }
      in
      ignore (Record.Store.add nd.store record);
      Counters.incr t.counters "tmk.intervals";
      Some record

(* ------------------------------------------------------------------ *)
(* Eager release (paper Section 2.4.3)                                 *)

let eager_broadcast t fiber nd (record : Record.t) =
  let diffs =
    List.map (fun p -> Hashtbl.find nd.own_diffs (p, record.seqno)) record.pages
  in
  let body = Proto.Eager_update { record; diffs } in
  for dst = 0 to t.cfg.n_nodes - 1 do
    if dst <> nd.id then send t fiber ~src:nd.id ~dst body
  done;
  Counters.incr t.counters "tmk.eager_broadcasts"

(* An eagerly shipped interval can arrive out of order relative to other
   intervals touching the same page — delivery latency grows with
   message size, and updates from successive lock holders come from
   different senders — so patching memory directly here could apply an
   older write over a newer one, or leave the page looking current while
   an earlier interval is still in flight (the page's [applied]
   high-water mark would then make a later lock grant skip its
   invalidation).  Instead an eager update is a write notice with its
   diffs prepaid: register the record (invalidating the page) and stash
   the diffs; the next access faults and applies everything pending in
   happened-before order — from the stash, with no remote fetch, when
   the stash covers it, which is the eager variant's latency win. *)
let apply_eager_update t fiber nd (record : Record.t) diffs =
  if Record.Store.add nd.store record then begin
    List.iter
      (fun (d : Diff.t) ->
        Hashtbl.replace nd.eager_diffs
          (d.Diff.page, record.creator, record.seqno)
          d)
      diffs;
    register_records t fiber nd [ record ]
  end

(* ------------------------------------------------------------------ *)
(* Page faults                                                         *)

let apply_diffs t fiber nd ~page items =
  (* [items]: (record, diff) pairs; apply in a linear extension of
     happened-before-1. *)
  let items =
    List.sort
      (fun ((a : Record.t), _) (b, _) ->
        compare (Record.linear_key a) (Record.linear_key b))
      items
  in
  let st = nd.pages.(page) in
  let base = page * t.cfg.page_words in
  List.iter
    (fun ((r : Record.t), (d : Diff.t)) ->
      if page = debug_page then begin
        let words =
          String.concat ","
            (List.concat_map
               (fun (run : Diff.run) ->
                 List.init (Array.length run.words) (fun k ->
                     Printf.sprintf "%d=%Ld" (run.offset + k) run.words.(k)))
               d.runs)
        in
        Printf.eprintf "node %d applies (%d,%d) page %d: %s\n" nd.id r.creator
          r.seqno page words
      end;
      Diff.apply d nd.mem ~base;
      Option.iter (Diff.apply_to_twin d) st.twin;
      Engine.with_category fiber Engine.Diff (fun () ->
          Engine.advance fiber (t.cfg.apply_per_word * Diff.words d));
      Engine.instant fiber "tmk.diff-apply";
      if r.seqno > st.applied.(r.creator) then
        st.applied.(r.creator) <- r.seqno;
      Counters.incr t.counters "tmk.diffs_applied")
    items;
  if items <> [] then mark_ckpt_dirty nd page

let fault t fiber nd page =
  Engine.sync fiber;
  drain_steal fiber nd;
  let st = nd.pages.(page) in
  let rec wait_if_inflight () =
    match Hashtbl.find_opt nd.inflight page with
    | Some wq when not st.valid ->
        (* Another co-located processor is fetching this page. *)
        Engine.with_category fiber Engine.Net_wait (fun () ->
            Waitq.wait fiber wq);
        wait_if_inflight ()
    | Some _ | None -> ()
  in
  wait_if_inflight ();
  if not st.valid then
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  begin
    let wq = Waitq.create t.eng in
    Hashtbl.replace nd.inflight page wq;
    Counters.incr t.counters "tmk.faults";
    Engine.instant fiber "tmk.fault";
    Engine.advance fiber (overhead t).handler;
    (* Needed notices, grouped by creator. *)
    let needed =
      List.filter (fun (c, s) -> s > st.applied.(c)) st.pending
    in
    let seqs_by_creator = Hashtbl.create 4 in
    List.iter
      (fun (c, s) ->
        let l =
          Option.value ~default:[] (Hashtbl.find_opt seqs_by_creator c)
        in
        Hashtbl.replace seqs_by_creator c (s :: l))
      needed;
    (* Intervals whose diffs were eagerly shipped are served from the
       local stash.  A creator goes remote only if any of its needed
       intervals is missing there — the range request then covers all of
       them, so stashed and fetched diffs never double-apply. *)
    let stashed_items = ref [] in
    let by_creator = Hashtbl.create 4 in
    Hashtbl.iter
      (fun c seqs ->
        let stashed =
          List.filter_map
            (fun s ->
              match
                ( Hashtbl.find_opt nd.eager_diffs (page, c, s),
                  Record.Store.find nd.store ~creator:c ~seqno:s )
              with
              | Some d, Some r -> Some (r, d)
              | _ -> None)
            seqs
        in
        if List.length stashed = List.length seqs then begin
          stashed_items := stashed @ !stashed_items;
          Counters.add t.counters "tmk.eager_applies" (List.length stashed)
        end
        else Hashtbl.replace by_creator c (List.fold_left max 0 seqs))
      seqs_by_creator;
    let req = fresh_req nd in
    let mb = register_req t nd req in
    let expected = Hashtbl.length by_creator in
    Hashtbl.iter
      (fun creator hi ->
        if page = debug_page then
          Printf.eprintf "[%d] node %d fault page %d: req to %d (%d,%d]\n"
            (Engine.clock fiber) nd.id page creator st.applied.(creator) hi;
        send t fiber ~src:nd.id ~dst:creator
          (Proto.Diff_req
             { page; requester = nd.id; req; lo = st.applied.(creator); hi }))
      by_creator;
    let items = ref !stashed_items in
    for _ = 1 to expected do
      match
        Engine.with_category fiber Engine.Net_wait (fun () ->
            Mailbox.recv fiber mb)
      with
      | Proto.Diff_resp { page = p; creator; diffs; _ } ->
          assert (p = page);
          List.iter
            (fun (seqno, diff) ->
              match Record.Store.find nd.store ~creator ~seqno with
              | Some record -> items := (record, diff) :: !items
              | None ->
                  let pend =
                    String.concat ";"
                      (List.map
                         (fun (c, s) -> Printf.sprintf "(%d,%d)" c s)
                         st.pending)
                  in
                  let reqs =
                    Hashtbl.fold
                      (fun c hi acc ->
                        Printf.sprintf "%d:(%d,%d] %s" c st.applied.(c) hi acc)
                      by_creator ""
                  in
                  failwith
                    (Printf.sprintf
                       "fault: node %d page %d: diff (creator %d, seq %d) \
                        unknown; vc=%s applied=%s contiguous=%d pending=%s \
                        reqs=%s"
                       nd.id page creator seqno
                       (Format.asprintf "%a" Vc.pp nd.vc)
                       (Format.asprintf "%a" Vc.pp st.applied)
                       (Record.Store.contiguous nd.store ~creator)
                       pend reqs))
            diffs
      | _ -> failwith "fault: unexpected response"
    done;
    apply_diffs t fiber nd ~page !items;
    List.iter (fun (c, s) -> Hashtbl.remove nd.eager_diffs (page, c, s)) needed;
    (* Notices may have arrived while we were fetching; if any remain
       unapplied the page must stay invalid and fault again. *)
    st.pending <- List.filter (fun (c, s) -> s > st.applied.(c)) st.pending;
    if st.pending = [] then begin
      st.valid <- true;
      (* Contents are final, then the TLB byte, then the hook: a hook that
         rebuilds derived state (platform caches) must observe both. *)
      update_rights t nd page;
      t.page_hook ~node:nd.id ~page
    end;
    Hashtbl.remove nd.inflight page;
    finish_req nd req;
    ignore (Waitq.wake_all wq ~at:(Engine.clock fiber))
  end

(* ------------------------------------------------------------------ *)
(* Access guards                                                       *)

let read_guard t fiber ~node addr =
  let nd = t.nodes.(node) in
  let page = page_of t addr in
  let st = nd.pages.(page) in
  while not st.valid do
    fault t fiber nd page
  done

let ensure_twin t fiber nd page (st : page_state) =
  match st.twin with
  | Some _ -> ()
  | None when t.cfg.n_nodes = 1 ->
      (* A single process never write-protects pages: no twins, no diffs. *)
      ()
  | None ->
      (* First write of the interval: make the twin (a page memcpy). *)
      Engine.sync fiber;
      (* Re-check after the yield: a co-located processor may have made
         the twin (or even written through it) meanwhile. *)
      if st.twin = None then begin
        let base = page * t.cfg.page_words in
        let twin = Memory.create ~words:t.cfg.page_words in
        Memory.blit ~src:nd.mem ~src_pos:base ~dst:twin ~dst_pos:0
          ~len:t.cfg.page_words;
        if page = debug_page then
          Printf.eprintf "node %d twins page %d (c4=%d, seq=%d)\n" nd.id page
            (Memory.get_int nd.mem (base + 4)) nd.seq;
        Engine.with_category fiber Engine.Twin (fun () ->
            Engine.advance fiber
              ((overhead t).handler
              + (t.cfg.twin_copy_per_word * t.cfg.page_words)));
        st.twin <- Some twin;
        update_rights t nd page;
        nd.dirty <- page :: nd.dirty;
        mark_ckpt_dirty nd page;
        Counters.incr t.counters "tmk.twins"
      end

let write_guard t fiber ~node addr =
  let nd = t.nodes.(node) in
  let page = page_of t addr in
  let st = nd.pages.(page) in
  while not st.valid do
    fault t fiber nd page
  done;
  ensure_twin t fiber nd page st

(* Range guards: guard each page overlapping [addr, addr+words) exactly
   once, in address order, handing each in-page run to [f run_addr
   run_words] as soon as that page's guard completes.  Interleaving data
   movement page by page (rather than guarding the whole range up front)
   is what makes the range observably identical to the per-word loop: a
   fault's yield can let the handler rewrite {e later} pages (eager
   updates), and those must be re-examined when reached, exactly as the
   per-word sequence would.  Within one page run neither the guard's
   valid-check nor [f] may yield, so no transition can interpose — the
   same argument that makes the per-word guard/access pair atomic. *)

let read_range_guard t fiber ~node addr words ~f =
  let nd = t.nodes.(node) in
  let pw = t.cfg.page_words in
  let stop = addr + words in
  let a = ref addr in
  while !a < stop do
    let page = page_of t !a in
    let run = min ((page + 1) * pw) stop - !a in
    let st = nd.pages.(page) in
    while not st.valid do
      fault t fiber nd page
    done;
    f !a run;
    a := !a + run
  done

let write_range_guard t fiber ~node addr words ~f =
  let nd = t.nodes.(node) in
  let pw = t.cfg.page_words in
  let stop = addr + words in
  let a = ref addr in
  while !a < stop do
    let page = page_of t !a in
    let run = min ((page + 1) * pw) stop - !a in
    let st = nd.pages.(page) in
    while not st.valid do
      fault t fiber nd page
    done;
    ensure_twin t fiber nd page st;
    f !a run;
    a := !a + run
  done

(* ------------------------------------------------------------------ *)
(* Locks                                                               *)

(* Grant the token of lock [l] from node [nd] to [requester]; the grant
   carries the interval records the requester lacks.  A requester on the
   same node (a co-located processor that requested through the manager
   before the token landed here) is served locally: the token stays and
   no message or notice is needed. *)
let send_grant t fiber nd ~lock ~requester ~req ~req_vc =
  if lock = debug_lock then
    Printf.eprintf "[%d] node %d GRANT lock %d to %d (req %d)\n"
      (Engine.clock fiber) nd.id lock requester req;
  if requester = nd.id then begin
    (* Reserve the lock for the local requester now, so no other
       co-located processor can slip in before it wakes. *)
    nd.locks.(lock).in_use <- true;
    let body = Proto.Lock_grant { lock; req; vc = Vc.copy nd.vc; records = [] } in
    match Hashtbl.find_opt nd.pending_reqs req with
    | Some mb -> Mailbox.post mb ~at:(Engine.clock fiber) body
    | None -> failwith "send_grant: local requester vanished"
  end
  else begin
    let records = records_between nd ~vc_dst:req_vc in
    nd.locks.(lock).has_token <- false;
    send t fiber ~src:nd.id ~dst:requester
      (Proto.Lock_grant { lock; req; vc = Vc.copy nd.vc; records })
  end

(* A forwarded request reaches the node currently at the distributed
   queue's tail: grant now if the token is here, idle, and no earlier
   request is queued (forwards must be served FIFO, or an immediate grant
   would carry the token away and orphan the queue), else queue. *)
let deliver_forward t fiber nd ~lock ~requester ~req ~req_vc =
  let ls = nd.locks.(lock) in
  if lock = debug_lock then
    Printf.eprintf
      "[%d] node %d FORWARD lock %d for %d (req %d): token=%b in_use=%b q=%d\n"
      (Engine.clock fiber) nd.id lock requester req ls.has_token ls.in_use
      (Queue.length ls.remote_waiters);
  if ls.has_token && (not ls.in_use) && Queue.is_empty ls.remote_waiters then
    send_grant t fiber nd ~lock ~requester ~req ~req_vc
  else Queue.push (requester, req, req_vc) ls.remote_waiters

let handle_lock_req t fiber nd ~lock ~requester ~req ~req_vc =
  let ls = nd.locks.(lock) in
  let previous_tail = ls.tail in
  if lock = debug_lock then
    Printf.eprintf "[%d] node %d MGRREQ lock %d from %d (req %d) tail %d->%d\n"
      (Engine.clock fiber) nd.id lock requester req previous_tail requester;
  ls.tail <- requester;
  if previous_tail = nd.id then
    deliver_forward t fiber nd ~lock ~requester ~req ~req_vc
  else
    send t fiber ~src:nd.id ~dst:previous_tail
      (Proto.Lock_forward { lock; requester; req; vc = req_vc })

let acquire t fiber ~node ~lock =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  let ls = nd.locks.(lock) in
  while ls.in_use do
    Engine.with_category fiber Engine.Lock_wait (fun () ->
        Waitq.wait fiber ls.local_waiters)
  done;
  if ls.has_token then begin
    (* Token already on-node: no messages (paper Section 3.1). *)
    if lock = debug_lock then
      Printf.eprintf "[%d] node %d LOCAL lock %d\n" (Engine.clock fiber)
        nd.id lock;
    ls.in_use <- true;
    Engine.with_category fiber Engine.Protocol (fun () ->
        Engine.advance fiber t.cfg.local_lock_cycles);
    Counters.incr t.counters "tmk.lock_local"
  end
  else
    Engine.with_category fiber Engine.Protocol @@ fun () ->
    begin
    let req = fresh_req nd in
    let mb = register_req t nd req in
    let vc = Vc.copy nd.vc in
    let manager = t.lock_home.(lock) in
    let body = Proto.Lock_req { lock; requester = nd.id; req; vc } in
    if manager = nd.id then
      (* Even a local request goes through the handler fiber: the manager's
         tail pointer and the forwards it emits must mutate in one logical
         order, and the handler (whose clock tracks its queue) is that
         order.  A direct call here could run with a lagging application
         clock and launch a forward that overtakes an earlier one on the
         wire, breaking the token chain. *)
      Reliable.loopback t.net fiber ~node:nd.id ~class_:(Proto.class_ body)
        ~size:(Proto.sizes body) body
    else send t fiber ~src:nd.id ~dst:manager body;
    (match
       Engine.with_category fiber Engine.Lock_wait (fun () ->
           Mailbox.recv fiber mb)
     with
    | Proto.Lock_grant { vc = granter_vc; records; _ } ->
        if lock = debug_lock then
          Printf.eprintf "[%d] node %d GOT lock %d (req %d)\n"
            (Engine.clock fiber) nd.id lock req;
        register_records t fiber nd records;
        Vc.max_into ~into:nd.vc granter_vc;
        ls.has_token <- true;
        ls.in_use <- true
    | _ -> failwith "acquire: unexpected response");
    finish_req nd req;
    Counters.incr t.counters "tmk.lock_remote"
  end

(* Eager-invalidate RC: broadcast the closing interval's write notice to
   every node and block until all acknowledge.  The acknowledgement wait
   is what keeps eagerly-delivered notices causally ordered (and is the
   latency conventional RC pays at every release). *)
let eager_notice_broadcast t fiber nd (record : Record.t) =
  let req = fresh_req nd in
  let mb = register_req t nd req in
  for dst = 0 to t.cfg.n_nodes - 1 do
    if dst <> nd.id then
      send t fiber ~src:nd.id ~dst
        (Proto.Eager_notice { record; requester = nd.id; req })
  done;
  for _ = 1 to t.cfg.n_nodes - 1 do
    match
      Engine.with_category fiber Engine.Net_wait (fun () ->
          Mailbox.recv fiber mb)
    with
    | Proto.Eager_ack _ -> ()
    | _ -> failwith "eager release: unexpected response"
  done;
  finish_req nd req

let after_close t fiber nd ~lock closed =
  match closed with
  | None -> ()
  | Some record -> (
      match t.cfg.notice_policy with
      | Config.Eager_invalidate -> eager_notice_broadcast t fiber nd record
      | Config.Eager_update -> eager_broadcast t fiber nd record
      | Config.Lazy ->
          if
            match lock with
            | Some l -> List.mem l t.cfg.eager_locks
            | None -> false
          then eager_broadcast t fiber nd record)

let release t fiber ~node ~lock =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  let closed = close_interval t fiber nd in
  after_close t fiber nd ~lock:(Some lock) closed;
  let ls = nd.locks.(lock) in
  if not ls.in_use then invalid_arg "Tmk.release: lock not held";
  if lock = debug_lock then
    Printf.eprintf "[%d] node %d RELEASE lock %d: token=%b q=%d localq=%d\n"
      (Engine.clock fiber) nd.id lock ls.has_token
      (Queue.length ls.remote_waiters)
      (Waitq.waiting ls.local_waiters);
  ls.in_use <- false;
  Engine.advance fiber t.cfg.local_lock_cycles;
  if not (Waitq.wake_one ls.local_waiters ~at:(Engine.clock fiber)) then
    if ls.has_token && not (Queue.is_empty ls.remote_waiters) then begin
      let requester, req, req_vc = Queue.pop ls.remote_waiters in
      send_grant t fiber nd ~lock ~requester ~req ~req_vc
    end

(* ------------------------------------------------------------------ *)
(* Barriers                                                            *)

let send_departs t fiber mgr ~id =
  let b = t.barriers.(id) in
  (* Snapshot and clear before the first yield: a node that receives its
     departure early can re-arrive for the next episode while we are still
     sending the remaining departures. *)
  let arrivals = b.arrivals in
  b.arrivals <- [];
  b.stash <- [];
  (* The episode's time is the join of the arrival snapshots.  The
     manager's own vector time is NOT merged at arrival: an arriver's
     clock can cover third-party intervals whose records only arrive with
     their creator, and inflating the manager's clock early would break
     the contiguity invariant for lock grants it makes meanwhile. *)
  let merged = Vc.create ~nodes:t.cfg.n_nodes in
  List.iter (fun (_, _, arr_vc) -> Vc.max_into ~into:merged arr_vc) arrivals;
  List.iter
    (fun (node, req, arr_vc) ->
      let records = records_range mgr ~lo_vc:arr_vc ~hi_vc:merged in
      let body = Proto.Barrier_depart { barrier = id; req; vc = merged; records } in
      if node = mgr.id then
        (* Local departure: no message. *)
        match Hashtbl.find_opt mgr.pending_reqs req with
        | Some mb -> Mailbox.post mb ~at:(Engine.clock fiber) body
        | None -> failwith "barrier: missing local arrival mailbox"
      else send t fiber ~src:mgr.id ~dst:node body)
    arrivals;
  Counters.incr t.counters "tmk.barriers"

let note_arrival t fiber mgr ~id ~node ~req ~arr_vc ~records =
  let b = t.barriers.(id) in
  (* Stash arrival records in the store (the departure ranges need them)
     but do NOT invalidate yet: arrivals trickle in causally incomplete,
     and a premature notice would let the manager's still-running
     application fault and apply diffs out of happened-before order.  The
     manager's own departure re-delivers the complete merged set and the
     invalidations happen there. *)
  List.iter (fun r -> ignore (Record.Store.add mgr.store r)) records;
  b.stash <- records @ b.stash;
  b.arrivals <- (node, req, arr_vc) :: b.arrivals;
  if List.length b.arrivals = t.cfg.n_nodes then send_departs t fiber mgr ~id

let barrier_arrive t fiber ~node ~id =
  let nd = t.nodes.(node) in
  Engine.sync fiber;
  drain_steal fiber nd;
  Engine.with_category fiber Engine.Protocol @@ fun () ->
  let closed = close_interval t fiber nd in
  after_close t fiber nd ~lock:None closed;
  let own_records =
    Record.Store.range nd.store ~creator:nd.id ~lo:nd.sent_to_manager ~hi:nd.seq
  in
  nd.sent_to_manager <- nd.seq;
  let req = fresh_req nd in
  let mb = register_req t nd req in
  let mgr_id = t.barrier_home in
  let arr_vc = Vc.copy nd.vc in
  if mgr_id = nd.id then
    note_arrival t fiber t.nodes.(mgr_id) ~id ~node:nd.id ~req ~arr_vc
      ~records:own_records
  else
    send t fiber ~src:nd.id ~dst:mgr_id
      (Proto.Barrier_arrive
         { barrier = id; node = nd.id; req; vc = arr_vc; records = own_records });
  (match
     Engine.with_category fiber Engine.Barrier_wait (fun () ->
         Mailbox.recv fiber mb)
   with
  | Proto.Barrier_depart { vc; records; _ } ->
      register_records t fiber nd records;
      Vc.max_into ~into:nd.vc vc
  | _ -> failwith "barrier: unexpected response");
  finish_req nd req

(* ------------------------------------------------------------------ *)
(* Failure-atomic checkpoints and crash recovery (DESIGN.md §13)       *)

(* Bring the node's checkpoint image up to the live copy, touching only
   the pages that diverged since the previous checkpoint and, within a
   page, only the changed runs (the diff run-length encoding reused for
   persistence).  Runs from an [Engine.schedule] callback, so the scan
   cost is charged through [steal]. *)
let checkpoint t nd =
  match nd.recov with
  | None -> ()
  | Some rv ->
      let ov = overhead t in
      let pw = t.cfg.page_words in
      let bytes = ref 0 in
      Array.iteri
        (fun p st ->
          if Bytes.get rv.ckpt_dirty p <> '\000' then begin
            bytes :=
              !bytes
              + Ckpt.page_delta ~src:nd.mem ~src_base:(p * pw) ~image:rv.image
                  ~image_base:(p * pw) ~words:pw;
            Array.blit st.applied 0 rv.snap.(p) 0 t.cfg.n_nodes;
            (* An open twin means the application can keep writing the
               page without another protocol event: keep it dirty. *)
            if st.twin = None then Bytes.set rv.ckpt_dirty p '\000'
          end)
        nd.pages;
      rv.ckpt_seq <- nd.seq;
      (* Charge for the data the sweep persists, not for the pages it
         probes: dirty-run discovery rides the twin/diff machinery the
         protocol already pays for, so a twinned-but-idle page costs
         nothing beyond the sweep's fixed handler slice.  Charging a
         full per-word scan of every dirty-marked page compounds — a
         large working set keeps every twinned page perpetually dirty,
         the per-sweep scan outruns the checkpoint interval, and the
         run quasi-livelocks. *)
      nd.steal :=
        !(nd.steal) + ov.handler + (ov.diff_per_word * ((!bytes + 7) / 8));
      Counters.incr t.counters "ckpt.count";
      Counters.add t.counters "ckpt.bytes" !bytes

(* Online rejoin of a restarted node.  The volatile image survives the
   outage (the failure-atomic heap model), so nothing is rolled back;
   instead the node (1) replays its own diff log — the WAL — since the
   last checkpoint onto the image, and (2) conservatively distrusts
   every foreign interval applied after the checkpoint: the page's
   applied vector rolls back to the snapshot, the write notices requeue
   and the page invalidates, so the next access re-fetches the diffs
   from their creators (served from the never-pruned per-node logs;
   re-application is idempotent, so contents are unchanged). *)
let rejoin t nd =
  match nd.recov with
  | None -> ()
  | Some rv ->
      let pw = t.cfg.page_words in
      let replay_words = ref 0 in
      Hashtbl.iter
        (fun (p, seqno) (d : Diff.t) ->
          if seqno > rv.ckpt_seq then begin
            Diff.apply d rv.image ~base:(p * pw);
            replay_words := !replay_words + Diff.words d
          end)
        nd.own_diffs;
      Array.iteri
        (fun p st ->
          if st.valid && st.twin = None && not (Hashtbl.mem nd.inflight p)
          then begin
            let snap = rv.snap.(p) in
            let stale = ref [] in
            for c = 0 to t.cfg.n_nodes - 1 do
              if c <> nd.id && st.applied.(c) > snap.(c) then begin
                List.iter
                  (fun (r : Record.t) ->
                    if List.mem p r.pages then stale := (c, r.seqno) :: !stale)
                  (Record.Store.range nd.store ~creator:c ~lo:snap.(c)
                     ~hi:st.applied.(c));
                st.applied.(c) <- snap.(c)
              end
            done;
            if !stale <> [] then begin
              List.iter
                (fun e ->
                  if not (List.mem e st.pending) then
                    st.pending <- e :: st.pending)
                !stale;
              st.valid <- false;
              update_rights t nd p;
              t.page_hook ~node:nd.id ~page:p;
              Counters.incr t.counters "recovery.invalidated"
            end
          end)
        nd.pages;
      let cycles =
        (overhead t).handler + Config.n_pages t.cfg
        + (t.cfg.apply_per_word * !replay_words)
      in
      nd.steal := !(nd.steal) + cycles;
      Counters.incr t.counters "recovery.count";
      Counters.add t.counters "recovery.cycles" cycles;
      Counters.add t.counters "recovery.replay_bytes" (8 * !replay_words)

(* Re-home manager state owned by a crashed node onto the next surviving
   node: lock queue tails (the replicated directory) and the barrier
   manager role with its stashed arrival records.  Requests already in
   flight — or parked in a peer's retransmit queue — still name the dead
   node; its handler forwards them to the new home after restart. *)
let rehome t lc ~dead =
  let n = t.cfg.n_nodes in
  let successor =
    let rec go k =
      if k >= n then None
      else
        let c = (dead + k) mod n in
        if Lifecycle.alive lc c then Some c else go (k + 1)
    in
    go 1
  in
  match successor with
  | None -> ()
  | Some s ->
      let moved = ref 0 in
      Array.iteri
        (fun l home ->
          if home = dead then begin
            t.lock_home.(l) <- s;
            t.nodes.(s).locks.(l).tail <- t.nodes.(dead).locks.(l).tail;
            incr moved
          end)
        t.lock_home;
      if t.barrier_home = dead then begin
        t.barrier_home <- s;
        Array.iter
          (fun b ->
            List.iter
              (fun r -> ignore (Record.Store.add t.nodes.(s).store r))
              b.stash)
          t.barriers;
        incr moved
      end;
      if !moved > 0 then Counters.add t.counters "recovery.rehomes" !moved

(* ------------------------------------------------------------------ *)
(* Message handler daemon                                              *)

let serve_diff_req t fiber nd ~page ~requester ~req ~lo ~hi ~in_size =
  let diffs = ref [] in
  for seqno = hi downto lo + 1 do
    match Hashtbl.find_opt nd.own_diffs (page, seqno) with
    | Some d -> diffs := (seqno, d) :: !diffs
    | None -> ()
  done;
  let body =
    Proto.Diff_resp { page; req; creator = nd.id; diffs = !diffs }
  in
  send t fiber ~src:nd.id ~dst:requester body;
  nd.steal :=
    !(nd.steal)
    + serve_cost t ~in_size ~out_size:(Proto.sizes body) ~replied:true

let route_response t nd ~req body ~at =
  ignore t;
  match Hashtbl.find_opt nd.pending_reqs req with
  | Some mb -> Mailbox.post mb ~at body
  | None -> failwith "route_response: no pending request"

let handle t fiber nd (env : Proto.t Msg.envelope) =
  let in_size = env.size in
  let steal_simple () =
    nd.steal := !(nd.steal) + serve_cost t ~in_size ~out_size:zero_size ~replied:false
  in
  match env.body with
  | Proto.Lock_req { lock; requester; req; vc } as body ->
      Engine.advance fiber (overhead t).handler;
      if t.lock_home.(lock) <> nd.id then begin
        (* Stale destination: we managed this lock before a crash
           re-homed it (the request outlived the outage in a peer's
           retransmit queue).  Forward to the current home. *)
        Counters.incr t.counters "recovery.forwards";
        send t fiber ~src:nd.id ~dst:t.lock_home.(lock) body
      end
      else handle_lock_req t fiber nd ~lock ~requester ~req ~req_vc:vc;
      steal_simple ()
  | Proto.Lock_forward { lock; requester; req; vc } ->
      Engine.advance fiber (overhead t).handler;
      deliver_forward t fiber nd ~lock ~requester ~req ~req_vc:vc;
      steal_simple ()
  | Proto.Diff_req { page; requester; req; lo; hi } ->
      Engine.advance fiber (overhead t).handler;
      serve_diff_req t fiber nd ~page ~requester ~req ~lo ~hi ~in_size
  | Proto.Barrier_arrive { barrier; node; req; vc; records } as body ->
      Engine.advance fiber (overhead t).handler;
      if t.barrier_home <> nd.id then begin
        Counters.incr t.counters "recovery.forwards";
        send t fiber ~src:nd.id ~dst:t.barrier_home body
      end
      else note_arrival t fiber nd ~id:barrier ~node ~req ~arr_vc:vc ~records;
      steal_simple ()
  | Proto.Eager_update { record; diffs } ->
      Engine.advance fiber (overhead t).handler;
      apply_eager_update t fiber nd record diffs;
      steal_simple ()
  | Proto.Eager_notice { record; requester; req } ->
      Engine.advance fiber (overhead t).handler;
      register_records t fiber nd [ record ];
      send t fiber ~src:nd.id ~dst:requester (Proto.Eager_ack { req });
      steal_simple ()
  | Proto.Lock_grant { req; _ } | Proto.Diff_resp { req; _ }
  | Proto.Barrier_depart { req; _ } | Proto.Eager_ack { req } ->
      (* Response for a blocked application fiber: route, no steal (the
         application is idle waiting for it anyway). *)
      route_response t nd ~req env.body ~at:(Engine.clock fiber)

let handler_loop t nd fiber =
  let rec loop () =
    let env =
      Engine.with_category fiber Engine.Net_wait (fun () ->
          Reliable.recv t.net fiber ~node:nd.id)
    in
    Engine.with_category fiber Engine.Protocol (fun () ->
        handle t fiber nd env);
    loop ()
  in
  loop ()

let start t =
  Reliable.start t.net;
  (match t.lifecycle with
  | None -> ()
  | Some lc ->
      Lifecycle.on_ckpt lc (fun ~at:_ ->
          Array.iter
            (fun nd -> if Lifecycle.alive lc nd.id then checkpoint t nd)
            t.nodes);
      Lifecycle.on_detect lc (fun ~node ~at:_ -> rehome t lc ~dead:node);
      Lifecycle.on_restart lc (fun ~node ~at:_ -> rejoin t t.nodes.(node)));
  Array.iter
    (fun nd ->
      ignore
        (Engine.spawn t.eng ~daemon:true
           ~name:(Printf.sprintf "tmk-handler-%d" nd.id)
           ~at:0
           (fun fiber -> handler_loop t nd fiber)))
    t.nodes

let retx_note t = Reliable.pending_note t.net

(* ------------------------------------------------------------------ *)
(* Introspection                                                       *)

let page_valid t ~node ~page = t.nodes.(node).pages.(page).valid

let dump_lock t ~lock =
  String.concat "; "
    (Array.to_list
       (Array.map
          (fun nd ->
            let ls = nd.locks.(lock) in
            Printf.sprintf
              "node %d: token=%b in_use=%b remoteq=%d localq=%d tail=%d"
              nd.id ls.has_token ls.in_use
              (Queue.length ls.remote_waiters)
              (Waitq.waiting ls.local_waiters)
              ls.tail)
          t.nodes))

let vc t ~node = Vc.copy t.nodes.(node).vc

let check_invariants t =
  Array.iter
    (fun nd ->
      (* Own component equals own interval count. *)
      if nd.vc.(nd.id) <> nd.seq then
        failwith
          (Printf.sprintf "node %d: vc self %d <> seq %d" nd.id nd.vc.(nd.id)
             nd.seq);
      (* Vector components never exceed the creator's interval count. *)
      Array.iteri
        (fun c v ->
          if v > t.nodes.(c).seq then
            failwith
              (Printf.sprintf "node %d: vc.(%d)=%d beyond creator seq %d"
                 nd.id c v t.nodes.(c).seq))
        nd.vc;
      Array.iteri
        (fun p st ->
          (* A valid page has no applicable pending notices. *)
          if st.valid then
            List.iter
              (fun (c, s) ->
                if s > st.applied.(c) then
                  failwith
                    (Printf.sprintf
                       "node %d: page %d valid with pending (%d,%d)" nd.id p c
                       s))
              st.pending;
          (* The TLB byte is a pure function of the page state. *)
          let expect =
            if not st.valid then '\000'
            else if st.twin <> None || t.cfg.n_nodes = 1 then '\002'
            else '\001'
          in
          if Bytes.get nd.rights p <> expect then
            failwith
              (Printf.sprintf
                 "node %d: page %d rights byte %d, expected %d (valid=%b \
                  twin=%b)"
                 nd.id p
                 (Char.code (Bytes.get nd.rights p))
                 (Char.code expect) st.valid (st.twin <> None));
          (* Twins exist exactly for pages dirty in the open interval. *)
          let dirty = List.mem p nd.dirty in
          match st.twin with
          | Some _ when not dirty ->
              failwith
                (Printf.sprintf "node %d: page %d has twin but not dirty"
                   nd.id p)
          | None when dirty ->
              failwith
                (Printf.sprintf "node %d: page %d dirty without twin" nd.id p)
          | Some _ | None -> ())
        nd.pages)
    t.nodes
