(** Failure-atomic checkpoint deltas: run-length sub-page dirty capture
    (DESIGN.md §13).  Reuses the {!Diff} run-length encoding to bring a
    checkpoint image up to the live copy at word granularity. *)

(** [page_delta ~src ~src_base ~image ~image_base ~words] copies every
    changed run of the page at [src_base] into the image and returns the
    checkpoint cost in bytes: [0] for a clean page, else [16] (page
    descriptor) plus [4 + 8*len] per changed run — the {!Diff.bytes}
    layout.  Postcondition: the image range equals the source range. *)
val page_delta :
  src:Shm_memsys.Memory.t ->
  src_base:int ->
  image:Shm_memsys.Memory.t ->
  image_base:int ->
  words:int ->
  int
