(* Failure-atomic checkpoint deltas (DESIGN.md §13).

   A checkpoint of a shared page is maintained as an image plus the
   run-length-encoded delta that brings the image up to the live copy —
   the same encoding as {!Diff}, reused for persistence instead of
   coherence.  Only the changed runs are "written" (counted), so a
   checkpoint costs bytes proportional to what actually changed since
   the last one, not to the number of dirty pages (the FAMS/msync
   sub-page dirty-tracking model: no page write-amplification). *)

module Memory = Shm_memsys.Memory

(* [page_delta ~src ~src_base ~image ~image_base ~words] scans one page,
   copies every run of words where [src] and [image] differ into the
   image, and returns the checkpoint cost in bytes: 0 when the page was
   already clean, else a 16-byte page descriptor plus, per changed run,
   a 4-byte run header and 8 bytes per word — the {!Diff.bytes} layout. *)
let page_delta ~src ~src_base ~image ~image_base ~words =
  let bytes = ref 0 in
  let i = ref 0 in
  while !i < words do
    let d = Memory.first_diff src (src_base + !i) image (image_base + !i)
        (words - !i)
    in
    if d < 0 then i := words
    else begin
      let start = !i + d in
      let m =
        Memory.first_match src (src_base + start) image (image_base + start)
          (words - start)
      in
      let stop = if m < 0 then words else start + m in
      let len = stop - start in
      Memory.blit ~src ~src_pos:(src_base + start) ~dst:image
        ~dst_pos:(image_base + start) ~len;
      if !bytes = 0 then bytes := 16;
      bytes := !bytes + 4 + (8 * len);
      i := stop
    end
  done;
  !bytes
