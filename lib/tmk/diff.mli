(** Diffs: run-length encodings of the words of a virtual page that a
    writer changed, computed against the {e twin} copied at the first
    write (paper Section 2.1).

    Because a diff carries only the words whose values changed, an
    application that overwrites data with identical values (SOR's interior
    zeros) moves almost nothing — the effect behind Figure 3. *)

type run = { offset : int; words : int64 array }

type t = { page : int; runs : run list }

(** [make ~page ~twin ~current ~base ~words] compares the twin (at index 0)
    against page contents at [base] in [current], producing runs of
    differing words. *)
val make :
  page:int ->
  twin:Shm_memsys.Memory.t ->
  current:Shm_memsys.Memory.t ->
  base:int ->
  words:int ->
  t

(** [apply t mem ~base] writes the runs into page at [base]. *)
val apply : t -> Shm_memsys.Memory.t -> base:int -> unit

(** [apply_to_twin t twin] writes the runs into a twin page image. *)
val apply_to_twin : t -> Shm_memsys.Memory.t -> unit

val is_empty : t -> bool

(** Number of words carried. *)
val words : t -> int

(** Wire size: 16-byte descriptor, 4 bytes per run header, 8 per word. *)
val bytes : t -> int

val pp : Format.formatter -> t -> unit
