type notice_policy = Lazy | Eager_invalidate | Eager_update

type t = {
  n_nodes : int;
  page_words : int;
  shared_words : int;
  n_locks : int;
  n_barriers : int;
  barrier_manager : int;
  twin_copy_per_word : int;
  apply_per_word : int;
  local_lock_cycles : int;
  notice_policy : notice_policy;
  eager_locks : int list;
}

let default ~n_nodes ~shared_words =
  {
    n_nodes;
    page_words = 512;
    shared_words;
    n_locks = 1024;
    n_barriers = 16;
    barrier_manager = 0;
    twin_copy_per_word = 1;
    apply_per_word = 1;
    local_lock_cycles = 50;
    notice_policy = Lazy;
    eager_locks = [];
  }

let manager_of t lock = lock mod t.n_nodes

let n_pages t = (t.shared_words + t.page_words - 1) / t.page_words

let validate t =
  if t.n_nodes < 1 then invalid_arg "Tmk.Config: n_nodes < 1";
  if t.page_words < 1 then invalid_arg "Tmk.Config: page_words < 1";
  if t.barrier_manager < 0 || t.barrier_manager >= t.n_nodes then
    invalid_arg "Tmk.Config: barrier manager out of range"
