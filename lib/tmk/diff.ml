module Memory = Shm_memsys.Memory

type run = { offset : int; words : int64 array }

type t = { page : int; runs : run list }

let make ~page ~twin ~current ~base ~words =
  let runs = ref [] in
  let i = ref 0 in
  while !i < words do
    let d = Memory.first_diff current (base + !i) twin !i (words - !i) in
    if d < 0 then i := words
    else begin
      let start = !i + d in
      let m =
        Memory.first_match current (base + start) twin start (words - start)
      in
      let stop = if m < 0 then words else start + m in
      let len = stop - start in
      let data =
        Array.init len (fun k -> Memory.get current (base + start + k))
      in
      runs := { offset = start; words = data } :: !runs;
      i := stop
    end
  done;
  { page; runs = List.rev !runs }

let apply t mem ~base =
  List.iter
    (fun { offset; words } ->
      Array.iteri (fun k v -> Memory.set mem (base + offset + k) v) words)
    t.runs

let apply_to_twin t twin =
  List.iter
    (fun { offset; words } ->
      Array.iteri (fun k v -> Memory.set twin (offset + k) v) words)
    t.runs

let is_empty t = t.runs = []

let words t = List.fold_left (fun acc r -> acc + Array.length r.words) 0 t.runs

let bytes t = 16 + List.fold_left (fun acc r -> acc + 4 + (8 * Array.length r.words)) 0 t.runs

let pp ppf t =
  Format.fprintf ppf "diff(page=%d, runs=%d, words=%d)" t.page
    (List.length t.runs) (words t)
