module Engine = Shm_sim.Engine

type write_policy = Write_through_buffered | Write_back_allocate

type config = {
  size_words : int;
  block_words : int;
  hit_cycles : int;
  miss_cycles : int;
  write_policy : write_policy;
}

(* 64 KB = 8192 words; 32-byte blocks = 4 words. *)
let dec_config =
  { size_words = 8192; block_words = 4; hit_cycles = 1; miss_cycles = 18;
    write_policy = Write_through_buffered }

let sim_node_config =
  { size_words = 8192; block_words = 4; hit_cycles = 1; miss_cycles = 20;
    write_policy = Write_back_allocate }

type t = { cfg : config; cache : Cache.t }

let create cfg =
  { cfg; cache = Cache.create ~size_words:cfg.size_words ~block_words:cfg.block_words }

let config t = t.cfg

let[@inline] read t fiber addr =
  match Cache.probe t.cache addr with
  | Cache.Invalid ->
      Cache.note_miss t.cache;
      ignore (Cache.insert t.cache (Cache.block_of t.cache addr) Cache.Exclusive);
      Engine.advance fiber t.cfg.miss_cycles
  | Cache.Shared | Cache.Exclusive | Cache.Modified ->
      Cache.note_hit t.cache;
      Engine.advance fiber t.cfg.hit_cycles

let[@inline] write t fiber addr =
  match t.cfg.write_policy with
  | Write_through_buffered ->
      (* Write buffer absorbs the store; no allocation on miss. *)
      Engine.advance fiber t.cfg.hit_cycles
  | Write_back_allocate -> (
      match Cache.probe t.cache addr with
      | Cache.Invalid ->
          Cache.note_miss t.cache;
          ignore (Cache.insert t.cache (Cache.block_of t.cache addr) Cache.Modified);
          Engine.advance fiber t.cfg.miss_cycles
      | Cache.Shared | Cache.Exclusive | Cache.Modified ->
          Cache.note_hit t.cache;
          ignore (Cache.insert t.cache (Cache.block_of t.cache addr) Cache.Modified);
          Engine.advance fiber t.cfg.hit_cycles)

(* Range variants: charge exactly what the per-word loop would — same
   hit/miss counts, same cache end-state, same total cycles — but with one
   probe per block run and a single clock bump.  [read]/[write] never yield,
   so batching the [advance] is observably identical. *)

let read_range t fiber addr words =
  let c = t.cache in
  let bw = t.cfg.block_words in
  let cycles = ref 0 in
  let a = ref addr in
  let stop = addr + words in
  while !a < stop do
    let block = Cache.block_of c !a in
    let cnt = min (block + bw) stop - !a in
    (match Cache.state_of c block with
    | Cache.Invalid ->
        Cache.note_miss c;
        ignore (Cache.insert c block Cache.Exclusive);
        if cnt > 1 then Cache.note_hits c (cnt - 1);
        cycles := !cycles + t.cfg.miss_cycles + ((cnt - 1) * t.cfg.hit_cycles)
    | Cache.Shared | Cache.Exclusive | Cache.Modified ->
        Cache.note_hits c cnt;
        cycles := !cycles + (cnt * t.cfg.hit_cycles));
    a := block + bw
  done;
  Engine.advance fiber !cycles

let write_range t fiber addr words =
  match t.cfg.write_policy with
  | Write_through_buffered -> Engine.advance fiber (words * t.cfg.hit_cycles)
  | Write_back_allocate ->
      let c = t.cache in
      let bw = t.cfg.block_words in
      let cycles = ref 0 in
      let a = ref addr in
      let stop = addr + words in
      while !a < stop do
        let block = Cache.block_of c !a in
        let cnt = min (block + bw) stop - !a in
        (match Cache.state_of c block with
        | Cache.Invalid ->
            Cache.note_miss c;
            if cnt > 1 then Cache.note_hits c (cnt - 1);
            cycles :=
              !cycles + t.cfg.miss_cycles + ((cnt - 1) * t.cfg.hit_cycles)
        | Cache.Shared | Cache.Exclusive | Cache.Modified ->
            Cache.note_hits c cnt;
            cycles := !cycles + (cnt * t.cfg.hit_cycles));
        ignore (Cache.insert c block Cache.Modified);
        a := block + bw
      done;
      Engine.advance fiber !cycles

let invalidate_range t ~addr ~words =
  let bw = t.cfg.block_words in
  let first = Cache.block_of t.cache addr in
  let last = Cache.block_of t.cache (addr + words - 1) in
  let block = ref first in
  while !block <= last do
    ignore (Cache.invalidate t.cache !block);
    block := !block + bw
  done

let hits t = Cache.hits t.cache
let misses t = Cache.misses t.cache
