open Bigarray

type t = (int64, int64_elt, c_layout) Array1.t

let create ~words : t =
  let a = Array1.create Int64 C_layout words in
  Array1.fill a 0L;
  a

let words (t : t) = Array1.dim t

let[@inline] get (t : t) i = Array1.unsafe_get t i
let[@inline] set (t : t) i v = Array1.unsafe_set t i v

(* Same buffer viewed as unboxed doubles.  Int64 and Float64 bigarrays
   share element size and layout; only the kind tag differs, and the
   type-specialized access primitives never consult it.  Going through
   the float view keeps scalar float traffic allocation-free, where the
   int64 elements would be boxed on every load. *)
type fview = (float, float64_elt, c_layout) Array1.t

let float_view (t : t) : fview = Obj.magic t

let[@inline] get_float t i = Array1.unsafe_get (float_view t) i
let[@inline] set_float t i (v : float) = Array1.unsafe_set (float_view t) i v

let get_int t i = Int64.to_int (get t i)
let set_int t i v = set t i (Int64.of_int v)

let blit ~src ~src_pos ~dst ~dst_pos ~len =
  Array1.blit (Array1.sub src src_pos len) (Array1.sub dst dst_pos len)

let copy_all ~src ~dst = Array1.blit src dst

let equal_range a b ~pos ~len =
  let rec loop i = i >= pos + len || (get a i = get b i && loop (i + 1)) in
  loop pos

(* Bulk typed transfers.  Keeping these loops inside this unit lets the
   compiler keep the int64/float values unboxed end to end; going through
   [get]/[set] from another module would box one value per word. *)

let read_floats (t : t) pos (dst : float array) dst_pos len =
  let fv = float_view t in
  for i = 0 to len - 1 do
    Array.unsafe_set dst (dst_pos + i) (Array1.unsafe_get fv (pos + i))
  done

let write_floats (t : t) pos (src : float array) src_pos len =
  let fv = float_view t in
  for i = 0 to len - 1 do
    Array1.unsafe_set fv (pos + i) (Array.unsafe_get src (src_pos + i))
  done

let read_ints (t : t) pos (dst : int array) dst_pos len =
  for i = 0 to len - 1 do
    Array.unsafe_set dst (dst_pos + i)
      (Int64.to_int (Array1.unsafe_get t (pos + i)))
  done

let write_ints (t : t) pos (src : int array) src_pos len =
  for i = 0 to len - 1 do
    Array1.unsafe_set t (pos + i)
      (Int64.of_int (Array.unsafe_get src (src_pos + i)))
  done

(* Bitwise word equality without allocation: xor the operands and test the
   low 63 bits and the top bit separately ([Int64.to_int] drops bit 63). *)
let[@inline] same_bits x y =
  let d = Int64.logxor x y in
  Int64.to_int d lor Int64.to_int (Int64.shift_right_logical d 63) = 0

(* First offset k in [0, len) where [a.(apos+k)] and [b.(bpos+k)] differ
   bitwise, or -1 if the ranges are identical. *)
let first_diff (a : t) apos (b : t) bpos len =
  let k = ref 0 in
  while
    !k < len
    && same_bits (Array1.unsafe_get a (apos + !k)) (Array1.unsafe_get b (bpos + !k))
  do
    incr k
  done;
  if !k >= len then -1 else !k

(* First offset k in [0, len) where the ranges agree bitwise, or -1. *)
let first_match (a : t) apos (b : t) bpos len =
  let k = ref 0 in
  while
    !k < len
    && not
         (same_bits (Array1.unsafe_get a (apos + !k))
            (Array1.unsafe_get b (bpos + !k)))
  do
    incr k
  done;
  if !k >= len then -1 else !k
