(** Bus-based shared-memory multiprocessor with Illinois (MESI) snooping
    cache coherence.

    Two instantiations:
    - the SGI 4D/480: per-CPU write-through primary caches (with write
      buffers) in front of 1 MB write-back secondary caches kept coherent
      by snooping on a shared bus;
    - an HS node: single-level 64 KB write-back caches on a fast node bus.

    Data lives in the shared backing {!Memory}; reads and writes go through
    the protocol for timing, state transitions and traffic accounting, and
    the machine is sequentially consistent by construction (each access is
    atomic at fiber granularity). *)

type level_config = { size_words : int; block_words : int }

type config = {
  n_cpus : int;
  primary : level_config option;  (** write-through filter, hit = 1 cycle *)
  coherent : level_config;  (** the snooped level *)
  coherent_hit_cycles : int;  (** primary miss, coherent hit *)
  bus_upgrade_cycles : int;  (** occupancy of an address-only transaction *)
  bus_block_cycles : int;  (** occupancy of a block transfer *)
  memory_extra_cycles : int;  (** added when memory, not a cache, supplies *)
}

(** SGI 4D/480: 8-CPU ceiling, 64 KB primaries, 1 MB secondaries with
    128-byte lines, 64-bit 25 MHz bus (40 MHz CPUs). *)
val sgi_config : n_cpus:int -> config

(** HS multiprocessor node: single-level 64 KB caches, 32-byte blocks,
    fast split-transaction bus; local miss ~25 cycles. *)
val hs_node_config : n_cpus:int -> config

type t

val create :
  Shm_sim.Engine.t -> Shm_stats.Counters.t -> Memory.t -> config -> t

val config : t -> config

val memory : t -> Memory.t

val read : t -> Shm_sim.Engine.fiber -> cpu:int -> int -> int64

val write : t -> Shm_sim.Engine.fiber -> cpu:int -> int -> int64 -> unit

(** [read_timing t fiber ~cpu addr]: coherence and timing of a load
    without the data movement; no yield occurs after the final state
    change, so a load performed immediately after sees the word {!read}
    would have returned.  Lets platforms keep scalar float accesses
    allocation-free. *)
val read_timing : t -> Shm_sim.Engine.fiber -> cpu:int -> int -> unit

(** [write_timing t fiber ~cpu addr] performs the coherence transaction
    and timing of a store without updating memory.  Layered protocols
    (DSM over a bus node) use it so the guard check, the store and the
    dirty-tracking stay atomic: do the timing (which may yield), then the
    guard, then the raw memory update. *)
val write_timing : t -> Shm_sim.Engine.fiber -> cpu:int -> int -> unit

(** [read_range t fiber ~cpu addr words ~f] performs the timing and
    coherence of reads of [words] consecutive words from [addr],
    observably identical to per-word {!read} calls (same counters, cycles,
    bus transactions, yield points).  [f pos len] must move the data for
    the words [pos, pos+len) and is called run by run, interleaved with
    the protocol exactly where the per-word loop would read; it must not
    yield. *)
val read_range :
  t -> Shm_sim.Engine.fiber -> cpu:int -> int -> int ->
  f:(int -> int -> unit) -> unit

(** Write counterpart of {!read_range}: [f pos len] must store the words
    [pos, pos+len). *)
val write_range :
  t -> Shm_sim.Engine.fiber -> cpu:int -> int -> int ->
  f:(int -> int -> unit) -> unit

(** [rmw t fiber ~cpu addr f] atomically replaces the word with [f old],
    returning [old]; costs a write transaction. *)
val rmw : t -> Shm_sim.Engine.fiber -> cpu:int -> int -> (int64 -> int64) -> int64

(** [bus_use t fiber ~cycles] occupies the bus directly (synchronization
    traffic modelled by the platform). *)
val bus_use : t -> Shm_sim.Engine.fiber -> cycles:int -> unit

(** [invalidate_range t ~addr ~words] drops the range from every cache on
    the machine without bus traffic (DSM page replacement on an HS node). *)
val invalidate_range : t -> addr:int -> words:int -> unit

(** [check_coherence t] verifies the MESI invariants (at most one
    [Modified]/[Exclusive] holder per block, never alongside [Shared]
    copies elsewhere); raises [Failure] on violation.  For tests. *)
val check_coherence : t -> unit

val bus_busy_cycles : t -> int
