module Engine = Shm_sim.Engine
module Waitq = Shm_sim.Waitq

type access = {
  rmw : Engine.fiber -> cpu:int -> int -> (int64 -> int64) -> int64;
  read : Engine.fiber -> cpu:int -> int -> unit;
}

let max_locks = 1024
let max_barriers = 16
let region_words = max_locks + (2 * max_barriers)

type t = {
  eng : Engine.t;
  access : access;
  base : int;
  nprocs : int;
  lock_waiters : (int, Waitq.t) Hashtbl.t;
  barrier_waiters : (int, Waitq.t) Hashtbl.t;
}

let create eng access ~base ~nprocs =
  {
    eng;
    access;
    base;
    nprocs;
    lock_waiters = Hashtbl.create 16;
    barrier_waiters = Hashtbl.create 16;
  }

let waitq tbl eng key =
  match Hashtbl.find_opt tbl key with
  | Some wq -> wq
  | None ->
      let wq = Waitq.create eng in
      Hashtbl.add tbl key wq;
      wq

let lock_addr t l =
  if l < 0 || l >= max_locks then invalid_arg "Hw_sync: lock id out of range";
  t.base + l

let counter_addr t b =
  if b < 0 || b >= max_barriers then
    invalid_arg "Hw_sync: barrier id out of range";
  t.base + max_locks + b

let generation_addr t b = t.base + max_locks + max_barriers + b

(* Cycles inside lock/barrier are charged to the corresponding wait
   category; the rmw's bus/directory transactions re-scope themselves to
   [Mem_stall] underneath (innermost scope wins), so the wait categories
   capture parked time plus the synchronization variables' hit cycles. *)

let rec lock t fiber ~cpu l =
  Engine.with_category fiber Engine.Lock_wait @@ fun () ->
  let old = t.access.rmw fiber ~cpu (lock_addr t l) (fun _ -> 1L) in
  if old <> 0L then begin
    Waitq.wait fiber (waitq t.lock_waiters t.eng l);
    lock t fiber ~cpu l
  end

let unlock t fiber ~cpu l =
  Engine.with_category fiber Engine.Lock_wait @@ fun () ->
  ignore (t.access.rmw fiber ~cpu (lock_addr t l) (fun _ -> 0L));
  ignore (Waitq.wake_one (waitq t.lock_waiters t.eng l) ~at:(Engine.clock fiber))

let barrier t fiber ~cpu b =
  Engine.with_category fiber Engine.Barrier_wait @@ fun () ->
  let arrived =
    Int64.to_int (t.access.rmw fiber ~cpu (counter_addr t b) Int64.succ) + 1
  in
  if arrived = t.nprocs then begin
    ignore (t.access.rmw fiber ~cpu (counter_addr t b) (fun _ -> 0L));
    ignore (t.access.rmw fiber ~cpu (generation_addr t b) Int64.succ);
    ignore
      (Waitq.wake_all (waitq t.barrier_waiters t.eng b) ~at:(Engine.clock fiber))
  end
  else begin
    Waitq.wait fiber (waitq t.barrier_waiters t.eng b);
    (* Re-read the generation flag that the releaser invalidated. *)
    t.access.read fiber ~cpu (generation_addr t b)
  end
