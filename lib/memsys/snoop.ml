module Engine = Shm_sim.Engine
module Resource = Shm_sim.Resource
module Counters = Shm_stats.Counters

type level_config = { size_words : int; block_words : int }

type config = {
  n_cpus : int;
  primary : level_config option;
  coherent : level_config;
  coherent_hit_cycles : int;
  bus_upgrade_cycles : int;
  bus_block_cycles : int;
  memory_extra_cycles : int;
}

(* SGI: 1 MB secondary = 131072 words, 128-byte lines = 16 words.
   The PowerPath bus sustains ~64 MB/s: a 128-byte line occupies
   ~80 CPU cycles at 40 MHz including arbitration. *)
let sgi_config ~n_cpus =
  {
    n_cpus;
    primary = Some { size_words = 8192; block_words = 4 };
    coherent = { size_words = 131072; block_words = 16 };
    coherent_hit_cycles = 20;
    bus_upgrade_cycles = 6;
    bus_block_cycles = 80;
    memory_extra_cycles = 20;
  }

let hs_node_config ~n_cpus =
  {
    n_cpus;
    primary = None;
    coherent = { size_words = 8192; block_words = 4 };
    coherent_hit_cycles = 1;
    bus_upgrade_cycles = 4;
    bus_block_cycles = 5;
    memory_extra_cycles = 20;
  }

type t = {
  cfg : config;
  mem : Memory.t;
  counters : Counters.t;
  bus : Resource.t;
  primaries : Cache.t array; (* empty array when no primary level *)
  coherents : Cache.t array;
}

let create _eng counters mem cfg =
  let mk (l : level_config) () =
    Cache.create ~size_words:l.size_words ~block_words:l.block_words
  in
  {
    cfg;
    mem;
    counters;
    bus = Resource.create ~name:"bus" ();
    primaries =
      (match cfg.primary with
      | None -> [||]
      | Some l -> Array.init cfg.n_cpus (fun _ -> mk l ()));
    coherents = Array.init cfg.n_cpus (fun _ -> mk cfg.coherent ());
  }

let config t = t.cfg

let memory t = t.mem

let bus_use t fiber ~cycles =
  Resource.use fiber t.bus ~cycles;
  Counters.add t.counters "bus.busy" cycles

(* Claim bus occupancy without yielding: used inside a transaction whose
   state transitions must be atomic with respect to other processors
   (the caller has already synced at the transaction start). *)
let bus_occupy t fiber ~cycles =
  let finish = Resource.reserve t.bus ~ready:(Engine.clock fiber) ~cycles in
  Engine.set_clock fiber finish;
  Counters.add t.counters "bus.busy" cycles

let block_bytes t = t.cfg.coherent.block_words * 8

(* Invalidate the primary-cache lines of [cpu] covering a coherent block
   (inclusion property). *)
let primary_invalidate_block t cpu block =
  if Array.length t.primaries > 0 then begin
    let p = t.primaries.(cpu) in
    let bw = Cache.block_words p in
    let words = t.cfg.coherent.block_words in
    let b = ref block in
    while !b < block + words do
      ignore (Cache.invalidate p !b);
      b := !b + bw
    done
  end

(* Returns [`Cache] if some other CPU's coherent cache can supply [block]
   (Illinois cache-to-cache transfer), [`Memory] otherwise.  A [Modified]
   holder is downgraded to [Shared] (its data is already in [t.mem]). *)
let snoop_for_read t ~cpu block =
  let supply = ref `Memory in
  for other = 0 to t.cfg.n_cpus - 1 do
    if other <> cpu then begin
      match Cache.state_of t.coherents.(other) block with
      | Cache.Invalid -> ()
      | Cache.Shared -> if !supply = `Memory then supply := `Cache
      | Cache.Exclusive ->
          Cache.set_state t.coherents.(other) block Cache.Shared;
          supply := `Cache
      | Cache.Modified ->
          Cache.set_state t.coherents.(other) block Cache.Shared;
          Counters.incr t.counters "bus.wb";
          Counters.add t.counters "bus.bytes" (block_bytes t);
          supply := `Cache
    end
  done;
  !supply

(* Invalidate every other copy; returns the supplier for a read-exclusive. *)
let snoop_for_write t ~cpu block =
  let supply = ref `Memory in
  for other = 0 to t.cfg.n_cpus - 1 do
    if other <> cpu then begin
      (match Cache.state_of t.coherents.(other) block with
      | Cache.Invalid -> ()
      | Cache.Shared | Cache.Exclusive ->
          Counters.incr t.counters "bus.inval";
          supply := `Cache
      | Cache.Modified ->
          Counters.incr t.counters "bus.inval";
          Counters.incr t.counters "bus.wb";
          Counters.add t.counters "bus.bytes" (block_bytes t);
          supply := `Cache);
      ignore (Cache.invalidate t.coherents.(other) block);
      primary_invalidate_block t other block
    end
  done;
  !supply

let handle_eviction t fiber ~cpu victim =
  match victim with
  | None -> ()
  | Some (vblock, vstate) ->
      if vstate = Cache.Modified then begin
        (* Write the dirty line back over the bus. *)
        bus_occupy t fiber ~cycles:t.cfg.bus_block_cycles;
        Counters.incr t.counters "bus.wb";
        Counters.add t.counters "bus.bytes" (block_bytes t)
      end;
      (* Inclusion: drop this CPU's primary copies of the victim. *)
      primary_invalidate_block t cpu vblock

(* Fill [block] into [cpu]'s coherent cache after a bus read.  The caller
   syncs once at the start; everything after runs without yielding so the
   snoop, the occupancy claim and the fill are one atomic transaction. *)
let bus_read t fiber ~cpu block ~exclusive =
  Engine.sync fiber;
  Engine.with_category fiber Engine.Mem_stall @@ fun () ->
  Counters.incr t.counters (if exclusive then "bus.rdx" else "bus.rd");
  let supply =
    if exclusive then snoop_for_write t ~cpu block
    else snoop_for_read t ~cpu block
  in
  let occupancy =
    t.cfg.bus_block_cycles
    + (match supply with `Memory -> t.cfg.memory_extra_cycles | `Cache -> 0)
  in
  bus_occupy t fiber ~cycles:occupancy;
  Counters.add t.counters "bus.bytes" (block_bytes t);
  let state =
    if exclusive then Cache.Modified
    else
      match supply with `Cache -> Cache.Shared | `Memory -> Cache.Exclusive
  in
  let victim = Cache.insert t.coherents.(cpu) block state in
  handle_eviction t fiber ~cpu victim

(* Upgrade a Shared line to Modified (atomic after the initial sync). *)
let bus_upgrade t fiber ~cpu block =
  Engine.sync fiber;
  Engine.with_category fiber Engine.Mem_stall @@ fun () ->
  (match Cache.state_of t.coherents.(cpu) block with
  | Cache.Shared ->
      Counters.incr t.counters "bus.upgr";
      ignore (snoop_for_write t ~cpu block);
      bus_occupy t fiber ~cycles:t.cfg.bus_upgrade_cycles;
      Cache.set_state t.coherents.(cpu) block Cache.Modified
  | Cache.Invalid ->
      (* Our copy was invalidated while we waited to sync: fall back to a
         full read-exclusive. *)
      bus_read t fiber ~cpu block ~exclusive:true
  | Cache.Exclusive | Cache.Modified ->
      Cache.set_state t.coherents.(cpu) block Cache.Modified)

let[@inline] primary_fill t cpu addr =
  if Array.length t.primaries > 0 then begin
    let p = Array.unsafe_get t.primaries cpu in
    ignore (Cache.insert p (Cache.block_of p addr) Cache.Shared)
  end

(* Coherence and timing of a load, without the data movement; see
   {!write_timing}.  No yield can occur after the final state change, so
   loading the word right after this returns is equivalent to loading it
   inside {!read}. *)
let read_slow t fiber ~cpu addr =
  let coh = Array.unsafe_get t.coherents cpu in
  let block = Cache.block_of coh addr in
  (match Cache.state_of coh block with
  | Cache.Shared | Cache.Exclusive | Cache.Modified ->
      Cache.note_hit coh;
      Engine.advance fiber t.cfg.coherent_hit_cycles
  | Cache.Invalid ->
      Cache.note_miss coh;
      Engine.advance fiber t.cfg.coherent_hit_cycles;
      bus_read t fiber ~cpu block ~exclusive:false);
  primary_fill t cpu addr

let[@inline] read_timing t fiber ~cpu addr =
  if
    Array.length t.primaries > 0
    && Cache.probe (Array.unsafe_get t.primaries cpu) addr <> Cache.Invalid
  then begin
    Cache.note_hit (Array.unsafe_get t.primaries cpu);
    Engine.advance fiber 1
  end
  else read_slow t fiber ~cpu addr

let read t fiber ~cpu addr =
  read_timing t fiber ~cpu addr;
  Memory.get t.mem addr

let write_state_machine t fiber ~cpu addr =
  let coh = t.coherents.(cpu) in
  let block = Cache.block_of coh addr in
  match Cache.state_of coh block with
  | Cache.Modified -> ()
  | Cache.Exclusive -> Cache.set_state coh block Cache.Modified
  | Cache.Shared -> bus_upgrade t fiber ~cpu block
  | Cache.Invalid ->
      Cache.note_miss coh;
      bus_read t fiber ~cpu block ~exclusive:true

(* Coherence and timing of a store, without the data movement: callers
   that must interleave protocol layers (the HS platform's DSM guard) do
   the timing first and the actual memory update later, atomically. *)
let[@inline] write_timing t fiber ~cpu addr =
  (* Write-through primary with a write buffer: the store itself retires in
     one cycle; the coherent level may still need a transaction. *)
  Engine.advance fiber
    (if Array.length t.primaries > 0 then 1 else t.cfg.coherent_hit_cycles);
  (let coh = Array.unsafe_get t.coherents cpu in
   match Cache.state_of coh (Cache.block_of coh addr) with
   | Cache.Modified -> ()
   | Cache.Exclusive | Cache.Shared | Cache.Invalid ->
       write_state_machine t fiber ~cpu addr);
  primary_fill t cpu addr

let write t fiber ~cpu addr value =
  write_timing t fiber ~cpu addr;
  Memory.set t.mem addr value

(* Range accesses.  [f pos len] performs the data movement for the words
   [pos, pos+len) and must not yield.  Runs of cache hits are batched (one
   counter bump, one clock advance, one [f] call) — no yield can occur
   inside a hit run, so this is observably identical to the per-word loop.
   Any word needing a bus transaction goes through exactly the per-word
   path, with its own [f] call immediately after, preserving the relative
   order of yields and data movement (another CPU's store during a bus
   stall must be visible to later words of the range, and not to earlier
   ones, just as word-at-a-time). *)

let read_range t fiber ~cpu addr words ~f =
  let stop = addr + words in
  let a = ref addr in
  let coh = t.coherents.(cpu) in
  if Array.length t.primaries > 0 then begin
    let p = t.primaries.(cpu) in
    let pbw = Cache.block_words p in
    while !a < stop do
      let pblock = Cache.block_of p !a in
      if Cache.state_of p pblock <> Cache.Invalid then begin
        let cnt = min (pblock + pbw) stop - !a in
        Cache.note_hits p cnt;
        Engine.advance fiber cnt;
        f !a cnt;
        a := !a + cnt
      end
      else begin
        let cblock = Cache.block_of coh !a in
        (match Cache.state_of coh cblock with
        | Cache.Shared | Cache.Exclusive | Cache.Modified ->
            Cache.note_hit coh;
            Engine.advance fiber t.cfg.coherent_hit_cycles
        | Cache.Invalid ->
            Cache.note_miss coh;
            Engine.advance fiber t.cfg.coherent_hit_cycles;
            bus_read t fiber ~cpu cblock ~exclusive:false);
        primary_fill t cpu !a;
        f !a 1;
        incr a
      end
    done
  end
  else begin
    let cbw = Cache.block_words coh in
    while !a < stop do
      let cblock = Cache.block_of coh !a in
      match Cache.state_of coh cblock with
      | Cache.Shared | Cache.Exclusive | Cache.Modified ->
          let cnt = min (cblock + cbw) stop - !a in
          Cache.note_hits coh cnt;
          Engine.advance fiber (cnt * t.cfg.coherent_hit_cycles);
          f !a cnt;
          a := !a + cnt
      | Cache.Invalid ->
          Cache.note_miss coh;
          Engine.advance fiber t.cfg.coherent_hit_cycles;
          bus_read t fiber ~cpu cblock ~exclusive:false;
          primary_fill t cpu !a;
          f !a 1;
          incr a
    done
  end

let write_range t fiber ~cpu addr words ~f =
  let stop = addr + words in
  let a = ref addr in
  let coh = t.coherents.(cpu) in
  let cbw = Cache.block_words coh in
  let word_cycles =
    if Array.length t.primaries > 0 then 1 else t.cfg.coherent_hit_cycles
  in
  while !a < stop do
    let cblock = Cache.block_of coh !a in
    if Cache.state_of coh cblock = Cache.Modified then begin
      (* The whole run retires without any coherence action or yield. *)
      let cnt = min (cblock + cbw) stop - !a in
      Engine.advance fiber (cnt * word_cycles);
      if Array.length t.primaries > 0 then begin
        let p = t.primaries.(cpu) in
        let pbw = Cache.block_words p in
        let b = ref (Cache.block_of p !a) in
        while !b < !a + cnt do
          ignore (Cache.insert p !b Cache.Shared);
          b := !b + pbw
        done
      end;
      f !a cnt;
      a := !a + cnt
    end
    else begin
      write_timing t fiber ~cpu !a;
      f !a 1;
      incr a
    end
  done

let rmw t fiber ~cpu addr f =
  Engine.sync fiber;
  Engine.advance fiber
    (if Array.length t.primaries > 0 then 1 else t.cfg.coherent_hit_cycles);
  write_state_machine t fiber ~cpu addr;
  primary_fill t cpu addr;
  let old = Memory.get t.mem addr in
  Memory.set t.mem addr (f old);
  old

let invalidate_range t ~addr ~words =
  let drop cache =
    let bw = Cache.block_words cache in
    let first = Cache.block_of cache addr in
    let last = Cache.block_of cache (addr + words - 1) in
    let b = ref first in
    while !b <= last do
      ignore (Cache.invalidate cache !b);
      b := !b + bw
    done
  in
  Array.iter drop t.coherents;
  Array.iter drop t.primaries

let check_coherence t =
  (* For every block resident anywhere, check the single-writer invariant. *)
  let owners : (int, Cache.state list) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun c ->
      Cache.iter_valid c (fun block state ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt owners block) in
          Hashtbl.replace owners block (state :: prev)))
    t.coherents;
  Hashtbl.iter
    (fun block states ->
      let exclusive_holders =
        List.length
          (List.filter (fun s -> s = Cache.Modified || s = Cache.Exclusive) states)
      in
      let copies = List.length states in
      if exclusive_holders > 1 || (exclusive_holders = 1 && copies > 1) then
        failwith
          (Printf.sprintf "coherence violation on block %d: %s" block
             (String.concat "," (List.map Cache.state_name states))))
    owners

let bus_busy_cycles t = Resource.busy_cycles t.bus
