(** Uniprocessor cache timing model for DSM nodes.

    No coherence: the node owns its memory.  Used for the DECstation (64 KB
    primary, write-through with a write buffer, so writes retire in one
    cycle) and for the Section-3 AS/HS simulated nodes (64 KB write-back
    allocate-on-write caches). *)

type write_policy =
  | Write_through_buffered  (** writes cost one cycle, no allocation *)
  | Write_back_allocate  (** write misses cost a fetch like read misses *)

type config = {
  size_words : int;
  block_words : int;
  hit_cycles : int;
  miss_cycles : int;  (** fill from local memory *)
  write_policy : write_policy;
}

(** DECstation-5000/240: 64 KB direct-mapped, 32-byte blocks, fast memory. *)
val dec_config : config

(** Section-3 uniprocessor node: 100 MHz, 64 KB, 32-byte blocks. *)
val sim_node_config : config

type t

val create : config -> t

val config : t -> config

(** [read t fiber addr] charges the fiber for a read of word [addr]. *)
val read : t -> Shm_sim.Engine.fiber -> int -> unit

val write : t -> Shm_sim.Engine.fiber -> int -> unit

(** [read_range t fiber addr words] charges the fiber for reads of the
    [words] consecutive words starting at [addr].  Observably identical to
    calling {!read} per word (same hit/miss counters, cache state and total
    cycles); neither ever yields. *)
val read_range : t -> Shm_sim.Engine.fiber -> int -> int -> unit

val write_range : t -> Shm_sim.Engine.fiber -> int -> int -> unit

(** [invalidate_range t ~addr ~words] drops any blocks overlapping the
    range (used when the DSM layer replaces a page's contents). *)
val invalidate_range : t -> addr:int -> words:int -> unit

val hits : t -> int
val misses : t -> int
