(** Full-map directory-based cache coherence over a crossbar (the AH
    architecture of paper Section 3).

    Uniprocessor nodes each hold a 64 KB direct-mapped cache and a slice of
    main memory (blocks interleaved across nodes).  Remote misses cost
    90-130 processor cycles depending on where the block lives and whether
    it is dirty (DASH/FLASH-like), plus crossbar port occupancy, so heavy
    traffic to one home node still queues. *)

type config = {
  n_nodes : int;
  cache_size_words : int;
  cache_block_words : int;
  local_miss_cycles : int;  (** miss satisfied by the local memory slice *)
  remote_clean_cycles : int;  (** 2-hop: home supplies *)
  remote_dirty_cycles : int;  (** 3-hop: forwarded to the dirty owner *)
  invalidation_cycles : int;  (** extra per sharer invalidated *)
  port_block_cycles : int;  (** crossbar port occupancy per block transfer *)
}

val sim_config : n_nodes:int -> config

type t

val create :
  Shm_sim.Engine.t -> Shm_stats.Counters.t -> Memory.t -> config -> t

val config : t -> config

val memory : t -> Memory.t

(** [home_of t block] is the node owning the directory entry and memory
    slice for [block]. *)
val home_of : t -> int -> int

val read : t -> Shm_sim.Engine.fiber -> node:int -> int -> int64

val write : t -> Shm_sim.Engine.fiber -> node:int -> int -> int64 -> unit

(** [read_timing]/[write_timing]: coherence and timing of a single access
    without the data movement.  No yield occurs after the final state
    change, so the caller may move the word immediately after the call
    with the same observable behaviour as {!read}/{!write}. *)
val read_timing : t -> Shm_sim.Engine.fiber -> node:int -> int -> unit

val write_timing : t -> Shm_sim.Engine.fiber -> node:int -> int -> unit

(** [read_range t fiber ~node addr words ~f]: timing and coherence of
    [words] consecutive reads, observably identical to per-word {!read};
    [f pos len] moves the data for each run and must not yield. *)
val read_range :
  t -> Shm_sim.Engine.fiber -> node:int -> int -> int ->
  f:(int -> int -> unit) -> unit

(** Write counterpart of {!read_range}. *)
val write_range :
  t -> Shm_sim.Engine.fiber -> node:int -> int -> int ->
  f:(int -> int -> unit) -> unit

(** Atomic read-modify-write (fetch-and-phi at the block's home). *)
val rmw :
  t -> Shm_sim.Engine.fiber -> node:int -> int -> (int64 -> int64) -> int64

(** [port_use t fiber ~node ~cycles] occupies [node]'s crossbar port
    (synchronization traffic modelled by the platform). *)
val port_use : t -> Shm_sim.Engine.fiber -> node:int -> cycles:int -> unit

(** [check_invariants t] asserts directory/cache agreement: an exclusive
    entry has exactly that owner holding the block E/M; shared entries have
    no E/M holder and record a superset of the actual holders. *)
val check_invariants : t -> unit
