type state = Invalid | Shared | Exclusive | Modified

let state_name = function
  | Invalid -> "I"
  | Shared -> "S"
  | Exclusive -> "E"
  | Modified -> "M"

type t = {
  block_words : int;
  block_shift : int; (* log2 block_words: block index = addr lsr block_shift *)
  block_mask : int; (* block_words - 1 *)
  lines : int;
  line_mask : int; (* lines - 1 *)
  tags : int array; (* resident block address per line; -1 = empty *)
  states : state array;
  mutable hits : int;
  mutable misses : int;
}

let log2_exact name n =
  if n <= 0 || n land (n - 1) <> 0 then
    invalid_arg (Printf.sprintf "Cache.create: %s must be a power of two" name);
  let rec go s n = if n = 1 then s else go (s + 1) (n lsr 1) in
  go 0 n

let create ~size_words ~block_words =
  if size_words mod block_words <> 0 then
    invalid_arg "Cache.create: size not a multiple of block size";
  let block_shift = log2_exact "block_words" block_words in
  let lines = size_words / block_words in
  let _ = log2_exact "size_words / block_words" lines in
  {
    block_words;
    block_shift;
    block_mask = block_words - 1;
    lines;
    line_mask = lines - 1;
    tags = Array.make lines (-1);
    states = Array.make lines Invalid;
    hits = 0;
    misses = 0;
  }

let block_words t = t.block_words

let lines t = t.lines

let[@inline] block_of t addr = addr land lnot t.block_mask

let[@inline] line_of t block = (block lsr t.block_shift) land t.line_mask

let[@inline] state_of t block =
  let line = line_of t block in
  if Array.unsafe_get t.tags line = block then Array.unsafe_get t.states line
  else Invalid

let set_state t block state =
  let line = line_of t block in
  if t.tags.(line) <> block then
    invalid_arg "Cache.set_state: block not resident";
  t.states.(line) <- state

let[@inline] probe t addr = state_of t (block_of t addr)

let insert t block state =
  let line = line_of t block in
  let old_tag = t.tags.(line) and old_state = t.states.(line) in
  t.tags.(line) <- block;
  t.states.(line) <- state;
  if old_tag >= 0 && old_tag <> block && old_state <> Invalid then
    Some (old_tag, old_state)
  else None

let peek_victim t block =
  let line = line_of t block in
  if t.tags.(line) >= 0 && t.tags.(line) <> block && t.states.(line) <> Invalid
  then Some (t.tags.(line), t.states.(line))
  else None

let invalidate t block =
  let line = line_of t block in
  if t.tags.(line) = block then begin
    let old = t.states.(line) in
    t.states.(line) <- Invalid;
    old
  end
  else Invalid

let invalidate_all t =
  Array.fill t.tags 0 t.lines (-1);
  Array.fill t.states 0 t.lines Invalid

let iter_valid t f =
  for line = 0 to t.lines - 1 do
    if t.tags.(line) >= 0 && t.states.(line) <> Invalid then
      f t.tags.(line) t.states.(line)
  done

let hits t = t.hits
let misses t = t.misses
let[@inline] note_hit t = t.hits <- t.hits + 1
let[@inline] note_miss t = t.misses <- t.misses + 1
let[@inline] note_hits t n = t.hits <- t.hits + n
