(** Word-addressed backing store.

    All simulated shared memory is an array of 64-bit words.  Floats are
    stored through their IEEE-754 bit pattern, so data moved by the
    protocols (diffs, cache blocks) round-trips exactly.  Integers must fit
    in an OCaml [int] (63 bits). *)

type t

val create : words:int -> t

val words : t -> int

val get : t -> int -> int64
val set : t -> int -> int64 -> unit

val get_float : t -> int -> float
val set_float : t -> int -> float -> unit

val get_int : t -> int -> int
val set_int : t -> int -> int -> unit

(** [blit ~src ~src_pos ~dst ~dst_pos ~len] copies [len] words. *)
val blit : src:t -> src_pos:int -> dst:t -> dst_pos:int -> len:int -> unit

(** [copy_all ~src ~dst] copies the whole store ([words] must match). *)
val copy_all : src:t -> dst:t -> unit

(** [equal_range a b ~pos ~len] checks word-for-word equality. *)
val equal_range : t -> t -> pos:int -> len:int -> bool

(** {2 Bulk typed transfers}

    Word-at-a-time conversion loops kept inside the module so the
    intermediate int64/float values stay unboxed. *)

(** [read_floats t pos dst dst_pos len] moves [len] words starting at word
    [pos] into [dst.(dst_pos ..)], reinterpreting each as a float. *)
val read_floats : t -> int -> float array -> int -> int -> unit

val write_floats : t -> int -> float array -> int -> int -> unit

val read_ints : t -> int -> int array -> int -> int -> unit

val write_ints : t -> int -> int array -> int -> int -> unit

(** {2 Bitwise comparison scans} *)

(** [first_diff a apos b bpos len] is the first offset [k] in [0, len)
    where [a.(apos+k)] and [b.(bpos+k)] differ bitwise, or [-1] if the
    ranges are identical. *)
val first_diff : t -> int -> t -> int -> int -> int

(** [first_match a apos b bpos len] is the first offset [k] in [0, len)
    where the ranges agree bitwise, or [-1]. *)
val first_match : t -> int -> t -> int -> int -> int
