(** Direct-mapped cache directory (tags and MESI states; data lives in the
    backing {!Memory}).

    Addresses are word addresses; a block is [block_words] consecutive
    words.  The same structure serves as a private uniprocessor cache (only
    [Invalid]/[Modified] used), as an SGI secondary cache (full MESI under
    the Illinois protocol), and as an AH per-node cache (MESI under the
    directory protocol). *)

type state = Invalid | Shared | Exclusive | Modified

val state_name : state -> string

type t

val create : size_words:int -> block_words:int -> t

val block_words : t -> int

val lines : t -> int

(** [block_of t addr] is the block (line-aligned word address) containing
    word [addr]. *)
val block_of : t -> int -> int

(** [state_of t block] is the block's state, [Invalid] if absent or if the
    resident line maps to a different block. *)
val state_of : t -> int -> state

val set_state : t -> int -> state -> unit

(** [probe t addr] is the state of the block containing word [addr]. *)
val probe : t -> int -> state

(** [insert t block state] fills the line for [block]; returns the evicted
    [(block, state)] if a different, valid block occupied the line. *)
val insert : t -> int -> state -> (int * state) option

(** [peek_victim t block] is what [insert] would evict, without changing
    anything — so callers can retire the victim {e before} starting a
    multi-step fill transaction. *)
val peek_victim : t -> int -> (int * state) option

(** [invalidate t block] clears the block if present; returns its old state. *)
val invalidate : t -> int -> state

(** [invalidate_all t] empties the cache (cold start). *)
val invalidate_all : t -> unit

(** [iter_valid t f] calls [f block state] for every valid line. *)
val iter_valid : t -> (int -> state -> unit) -> unit

(** {2 Statistics} *)

val hits : t -> int
val misses : t -> int
val note_hit : t -> unit
val note_miss : t -> unit

(** [note_hits t n] records [n] hits at once (range accesses). *)
val note_hits : t -> int -> unit
