module Engine = Shm_sim.Engine
module Resource = Shm_sim.Resource
module Counters = Shm_stats.Counters
module Iset = Set.Make (Int)

type config = {
  n_nodes : int;
  cache_size_words : int;
  cache_block_words : int;
  local_miss_cycles : int;
  remote_clean_cycles : int;
  remote_dirty_cycles : int;
  invalidation_cycles : int;
  port_block_cycles : int;
}

let sim_config ~n_nodes =
  {
    n_nodes;
    cache_size_words = 8192;
    cache_block_words = 4;
    local_miss_cycles = 20;
    remote_clean_cycles = 90;
    remote_dirty_cycles = 130;
    invalidation_cycles = 20;
    port_block_cycles = 16;
  }

type entry = Uncached | Shared_by of Iset.t | Owned_by of int

type t = {
  cfg : config;
  mem : Memory.t;
  counters : Counters.t;
  caches : Cache.t array;
  ports : Resource.t array;
  directory : (int, entry) Hashtbl.t;
}

let create _eng counters mem cfg =
  {
    cfg;
    mem;
    counters;
    caches =
      Array.init cfg.n_nodes (fun _ ->
          Cache.create ~size_words:cfg.cache_size_words
            ~block_words:cfg.cache_block_words);
    ports =
      Array.init cfg.n_nodes (fun i ->
          Resource.create ~name:(Printf.sprintf "port%d" i) ());
    directory = Hashtbl.create 4096;
  }

let config t = t.cfg

let memory t = t.mem

let home_of t block = block / t.cfg.cache_block_words mod t.cfg.n_nodes

let entry_of t block =
  Option.value ~default:Uncached (Hashtbl.find_opt t.directory block)

let set_entry t block e = Hashtbl.replace t.directory block e

let block_bytes t = t.cfg.cache_block_words * 8

let header_bytes = 16

let count_msg t ~payload =
  Counters.incr t.counters "dir.msgs";
  Counters.add t.counters "dir.bytes" (header_bytes + payload)

let port_use t fiber ~node ~cycles =
  Engine.sync fiber;
  let finish =
    Resource.reserve t.ports.(node) ~ready:(Engine.clock fiber) ~cycles
  in
  Engine.set_clock fiber finish

(* An eviction notifies the home so the directory stays exact for E/M
   lines; dirty data travels back. *)
let evict t fiber ~node victim =
  Engine.with_category fiber Engine.Mem_stall @@ fun () ->
  match victim with
  | None -> ()
  | Some (vblock, vstate) -> (
      match vstate with
      | Cache.Invalid -> ()
      | Cache.Shared ->
          (* Silent: the directory keeps a (harmless) stale sharer bit. *)
          ()
      | Cache.Exclusive | Cache.Modified ->
          (* Retire the line and the directory entry first — the port
             occupancy below yields, and another node must be free to
             claim the block meanwhile without us stomping it after. *)
          ignore (Cache.invalidate t.caches.(node) vblock);
          (match entry_of t vblock with
          | Owned_by o when o = node -> set_entry t vblock Uncached
          | Owned_by _ | Uncached | Shared_by _ -> ());
          let home = home_of t vblock in
          let dirty = vstate = Cache.Modified in
          count_msg t ~payload:(if dirty then block_bytes t else 0);
          Counters.incr t.counters
            (if dirty then "dir.writebacks" else "dir.replacement_hints");
          if home <> node && dirty then
            port_use t fiber ~node:home ~cycles:t.cfg.port_block_cycles)

let downgrade_owner t owner block =
  (match Cache.state_of t.caches.(owner) block with
  | Cache.Exclusive | Cache.Modified ->
      Cache.set_state t.caches.(owner) block Cache.Shared
  | Cache.Shared | Cache.Invalid -> ());
  Counters.incr t.counters "dir.forwards"

(* Charge the latency of a miss serviced at [home]; data moves through
   [port] (the supplier's crossbar port) when remote. *)
let charge_fetch t fiber ~node ~home ~port ~cycles =
  Engine.advance fiber cycles;
  if home <> node then begin
    count_msg t ~payload:0;
    count_msg t ~payload:(block_bytes t);
    port_use t fiber ~node:port ~cycles:t.cfg.port_block_cycles
  end

(* Install [block] in [node]'s cache for reading.  Yield points (port
   occupancy) can let competing transactions in, so the directory entry is
   re-read after every yield and the transaction retried on interference. *)
let rec fetch_for_read t fiber ~node block =
  Engine.with_category fiber Engine.Mem_stall @@ fun () ->
  let cache = t.caches.(node) in
  let home = home_of t block in
  let local = home = node in
  match entry_of t block with
  | Owned_by owner when owner <> node ->
      (* Dirty elsewhere: forward through the home to the owner. *)
      Engine.advance fiber
        (if local then t.cfg.remote_clean_cycles else t.cfg.remote_dirty_cycles);
      count_msg t ~payload:0;
      count_msg t ~payload:(block_bytes t);
      port_use t fiber ~node:owner ~cycles:t.cfg.port_block_cycles;
      (match entry_of t block with
      | Owned_by o when o = owner ->
          downgrade_owner t owner block;
          set_entry t block (Shared_by (Iset.of_list [ owner; node ]));
          ignore (Cache.insert cache block Cache.Shared)
      | Owned_by _ | Uncached | Shared_by _ -> fetch_for_read t fiber ~node block)
  | Owned_by _ (* self: cannot happen, evictions notify the home *)
  | Uncached -> (
      charge_fetch t fiber ~node ~home ~port:home
        ~cycles:(if local then t.cfg.local_miss_cycles else t.cfg.remote_clean_cycles);
      match entry_of t block with
      | Uncached ->
          set_entry t block (Owned_by node);
          ignore (Cache.insert cache block Cache.Exclusive)
      | Owned_by _ | Shared_by _ -> fetch_for_read t fiber ~node block)
  | Shared_by _ -> (
      charge_fetch t fiber ~node ~home ~port:home
        ~cycles:(if local then t.cfg.local_miss_cycles else t.cfg.remote_clean_cycles);
      match entry_of t block with
      | Shared_by sharers ->
          set_entry t block (Shared_by (Iset.add node sharers));
          ignore (Cache.insert cache block Cache.Shared)
      | Uncached | Owned_by _ -> fetch_for_read t fiber ~node block)

(* Coherence and timing of a load, without the data movement.  No yield
   after the final state change, so the caller's load immediately after
   this returns sees the same word {!read} would have returned. *)
let read_timing t fiber ~node addr =
  let cache = t.caches.(node) in
  let block = Cache.block_of cache addr in
  match Cache.state_of cache block with
  | Cache.Shared | Cache.Exclusive | Cache.Modified ->
      Cache.note_hit cache;
      Engine.advance fiber 1
  | Cache.Invalid ->
      Cache.note_miss cache;
      Engine.sync fiber;
      (* Retire the displaced line before the fill so the directory never
         carries a stale owner across our yields. *)
      evict t fiber ~node (Cache.peek_victim cache block);
      fetch_for_read t fiber ~node block

let read t fiber ~node addr =
  read_timing t fiber ~node addr;
  Memory.get t.mem addr

(* Make the directory entry [Owned_by node], invalidating other copies.
   Postcondition holds with no yield after the final state change. *)
let rec acquire_exclusive t fiber ~node block =
  Engine.with_category fiber Engine.Mem_stall @@ fun () ->
  let home = home_of t block in
  let local = home = node in
  match entry_of t block with
  | Owned_by owner when owner = node -> ()
  | Owned_by owner -> (
      Engine.advance fiber
        (if local then t.cfg.remote_clean_cycles else t.cfg.remote_dirty_cycles);
      count_msg t ~payload:0;
      count_msg t ~payload:(block_bytes t);
      port_use t fiber ~node:owner ~cycles:t.cfg.port_block_cycles;
      match entry_of t block with
      | Owned_by o when o = owner ->
          ignore (Cache.invalidate t.caches.(owner) block);
          Counters.incr t.counters "dir.invalidations";
          set_entry t block (Owned_by node)
      | Owned_by _ | Uncached | Shared_by _ ->
          acquire_exclusive t fiber ~node block)
  | Uncached -> (
      charge_fetch t fiber ~node ~home ~port:home
        ~cycles:(if local then t.cfg.local_miss_cycles else t.cfg.remote_clean_cycles);
      match entry_of t block with
      | Uncached -> set_entry t block (Owned_by node)
      | Owned_by _ | Shared_by _ -> acquire_exclusive t fiber ~node block)
  | Shared_by sharers ->
      (* Invalidations are state-only updates: no yield, so no retry. *)
      let others = Iset.remove node sharers in
      Engine.advance fiber
        ((if local then t.cfg.local_miss_cycles else t.cfg.remote_clean_cycles)
        + (t.cfg.invalidation_cycles * Iset.cardinal others));
      if not local then begin
        count_msg t ~payload:0;
        count_msg t ~payload:(block_bytes t)
      end;
      Iset.iter
        (fun s ->
          ignore (Cache.invalidate t.caches.(s) block);
          count_msg t ~payload:0;
          Counters.incr t.counters "dir.invalidations")
        others;
      set_entry t block (Owned_by node)

(* Obtain a Modified copy; atomic from the last internal yield. *)
let rec ensure_modified t fiber ~node block =
  Engine.with_category fiber Engine.Mem_stall @@ fun () ->
  let cache = t.caches.(node) in
  match Cache.state_of cache block with
  | Cache.Modified -> ()
  | Cache.Exclusive -> Cache.set_state cache block Cache.Modified
  | Cache.Shared | Cache.Invalid ->
      evict t fiber ~node (Cache.peek_victim cache block);
      acquire_exclusive t fiber ~node block;
      ignore (Cache.insert cache block Cache.Modified);
      ensure_modified t fiber ~node block

(* Store counterpart of {!read_timing}: the caller performs the actual
   memory update immediately after, with no yield in between. *)
let write_timing t fiber ~node addr =
  let cache = t.caches.(node) in
  let block = Cache.block_of cache addr in
  match Cache.state_of cache block with
  | Cache.Modified ->
      Cache.note_hit cache;
      Engine.advance fiber 1
  | Cache.Exclusive ->
      Cache.note_hit cache;
      Engine.advance fiber 1;
      Cache.set_state cache block Cache.Modified
  | Cache.Shared ->
      Cache.note_hit cache;
      Engine.sync fiber;
      Engine.advance fiber 1;
      ensure_modified t fiber ~node block
  | Cache.Invalid ->
      Cache.note_miss cache;
      Engine.sync fiber;
      ensure_modified t fiber ~node block

let write t fiber ~node addr value =
  write_timing t fiber ~node addr;
  Memory.set t.mem addr value

(* Range accesses; same contract as {!Snoop.read_range}: [f pos len] moves
   the data, is interleaved exactly where the per-word loop would touch
   memory, and must not yield.  Hit runs batch the counter and the clock;
   any word needing a directory transaction goes through the per-word
   path. *)

let read_range t fiber ~node addr words ~f =
  let cache = t.caches.(node) in
  let bw = t.cfg.cache_block_words in
  let stop = addr + words in
  let a = ref addr in
  while !a < stop do
    let block = Cache.block_of cache !a in
    match Cache.state_of cache block with
    | Cache.Shared | Cache.Exclusive | Cache.Modified ->
        let cnt = min (block + bw) stop - !a in
        Cache.note_hits cache cnt;
        Engine.advance fiber cnt;
        f !a cnt;
        a := !a + cnt
    | Cache.Invalid ->
        Cache.note_miss cache;
        Engine.sync fiber;
        evict t fiber ~node (Cache.peek_victim cache block);
        fetch_for_read t fiber ~node block;
        f !a 1;
        incr a
  done

let write_range t fiber ~node addr words ~f =
  let cache = t.caches.(node) in
  let bw = t.cfg.cache_block_words in
  let stop = addr + words in
  let a = ref addr in
  while !a < stop do
    let block = Cache.block_of cache !a in
    match Cache.state_of cache block with
    | Cache.Modified ->
        let cnt = min (block + bw) stop - !a in
        Cache.note_hits cache cnt;
        Engine.advance fiber cnt;
        f !a cnt;
        a := !a + cnt
    | Cache.Exclusive ->
        Cache.note_hit cache;
        Engine.advance fiber 1;
        Cache.set_state cache block Cache.Modified;
        f !a 1;
        incr a
    | Cache.Shared ->
        Cache.note_hit cache;
        Engine.sync fiber;
        Engine.advance fiber 1;
        ensure_modified t fiber ~node block;
        f !a 1;
        incr a
    | Cache.Invalid ->
        Cache.note_miss cache;
        Engine.sync fiber;
        ensure_modified t fiber ~node block;
        f !a 1;
        incr a
  done

let rmw t fiber ~node addr f =
  Engine.sync fiber;
  let cache = t.caches.(node) in
  let block = Cache.block_of cache addr in
  Engine.advance fiber 1;
  ensure_modified t fiber ~node block;
  (* We hold Modified and have not yielded since: the update is atomic. *)
  let old = Memory.get t.mem addr in
  Memory.set t.mem addr (f old);
  old

let check_invariants t =
  Hashtbl.iter
    (fun block entry ->
      match entry with
      | Uncached -> ()
      | Owned_by owner ->
          for n = 0 to t.cfg.n_nodes - 1 do
            let st = Cache.state_of t.caches.(n) block in
            if n = owner then begin
              if st <> Cache.Exclusive && st <> Cache.Modified then
                failwith
                  (Printf.sprintf "dir: block %d owned by %d but state %s"
                     block owner (Cache.state_name st))
            end
            else if st <> Cache.Invalid then
              failwith
                (Printf.sprintf "dir: block %d owned by %d but node %d has %s"
                   block owner n (Cache.state_name st))
          done
      | Shared_by sharers ->
          for n = 0 to t.cfg.n_nodes - 1 do
            let st = Cache.state_of t.caches.(n) block in
            match st with
            | Cache.Modified | Cache.Exclusive ->
                failwith
                  (Printf.sprintf "dir: shared block %d has %s at node %d"
                     block (Cache.state_name st) n)
            | Cache.Shared ->
                if not (Iset.mem n sharers) then
                  failwith
                    (Printf.sprintf "dir: block %d sharer %d not recorded"
                       block n)
            | Cache.Invalid -> ()
          done)
    t.directory
