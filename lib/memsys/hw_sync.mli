(** Lock and barrier primitives for the hardware shared-memory machines.

    Locks are test-and-set words living in a reserved region of the shared
    address space, so every acquire attempt and barrier arrival generates
    real coherence traffic through the machine's protocol.  Blocked
    processors park on wait queues rather than busy-spinning (modelling
    invalidation-based spinning, which generates traffic only around
    releases); each wake costs the woken processor a re-read of the flag. *)

type access = {
  rmw : Shm_sim.Engine.fiber -> cpu:int -> int -> (int64 -> int64) -> int64;
  read : Shm_sim.Engine.fiber -> cpu:int -> int -> unit;
}

(** Address-space layout of the sync region appended after an app's heap. *)
val max_locks : int

val max_barriers : int

val region_words : int

type t

(** [create eng access ~base ~nprocs] places the sync region at word
    address [base]. *)
val create : Shm_sim.Engine.t -> access -> base:int -> nprocs:int -> t

val lock : t -> Shm_sim.Engine.fiber -> cpu:int -> int -> unit

val unlock : t -> Shm_sim.Engine.fiber -> cpu:int -> int -> unit

val barrier : t -> Shm_sim.Engine.fiber -> cpu:int -> int -> unit
