(* The coherence-engine interface: everything a machine model needs from
   a shared-memory protocol, with the protocol itself behind a module.

   A platform (lib/platform) owns the simulation engine, the memories and
   the processor fibers; a coherence engine owns how those memories are
   kept coherent — software DSM over a message fabric, or a hardware
   cache-coherence model over a bus or crossbar.  The platform builds a
   [ctx] describing the machine, calls [ENGINE.mount], and drives the
   returned [instance] from its processor fibers.  No platform names a
   concrete protocol module; they are looked up in a [Registry].

   See DESIGN.md §11 for the hook-by-hook contract. *)

module Engine = Shm_sim.Engine
module Counters = Shm_stats.Counters
module Fabric = Shm_net.Fabric
module Memory = Shm_memsys.Memory

(* ------------------------------------------------------------------ *)
(* What kind of machine an engine coheres. *)

(* [Sdsm] engines keep one memory per node coherent by exchanging
   messages over the platform's fabric; [Hw] engines model a hardware
   cache hierarchy over a single physical memory. *)
type kind = Sdsm | Hw

let kind_name = function Sdsm -> "software-DSM" | Hw -> "hardware"

(* Which interconnect a hardware engine's timing should model.  Software
   engines ignore this; the snooping engine refuses [Crossbar]. *)
type hw_profile = Sgi_bus | Sgi_bus_fast | Hs_node_bus | Crossbar

(* ------------------------------------------------------------------ *)
(* The mount context: the machine as the engine sees it. *)

type ctx = {
  eng : Engine.t;
  counters : Counters.t;
  fabric : Fabric.config;
      (* message fabric for Sdsm engines, fault policy already folded
         in; Hw engines never touch it *)
  nodes : int;  (* coherence participants: DSM nodes, or bus CPUs *)
  page_words : int;
  shared_words : int;  (* page-rounded for Sdsm machines *)
  memories : Memory.t array;
      (* one per node for Sdsm; a single shared memory for Hw *)
  eager_lock_hints : int list;
      (* app-provided eager-release locks; engines without the concept
         ignore them *)
  hw_profile : hw_profile option;  (* None on software-DSM machines *)
  lifecycle : Shm_sim.Lifecycle.t option;
      (* whole-node crash/restart policy instance; Sdsm engines that
         support recovery attach it to their fabric and register
         checkpoint/re-home/rejoin hooks, engines that cannot recover
         must refuse to mount, Hw platforms always pass None *)
}

(* ------------------------------------------------------------------ *)
(* The mounted instance: closures the platform's fibers drive. *)

type fiber = Engine.fiber

type instance = {
  i_name : string;
  page_shift : int;
      (* log2(page_words) when pages are power-of-two sized, else -1;
         platforms use it for the rights-byte fast path *)
  wordwise_ranges : bool;
      (* true when bulk range operations must fall back to the literal
         per-word loop to stay observably identical (eager-invalidate
         RC, where a mid-run remote invalidation changes timing) *)
  access_rights : (node:int -> Bytes.t) option;
      (* per-page software-TLB bytes: '\000' fault, '\001' read-only,
         '\002' read-write; None for engines without page tables *)
  set_page_hook : (node:int -> page:int -> unit) -> unit;
      (* called whenever the engine rewrites a page's backing memory
         behind the processor's back (platforms invalidate their private
         per-node caches from it) *)
  start : unit -> unit;  (* spawn protocol daemons; after mount, once *)
  retx_note : unit -> string;  (* diagnostic line for deadlock reports *)
  read_guard : fiber -> node:int -> int -> unit;
  write_guard : fiber -> node:int -> int -> unit;
      (* coherence + timing of one word access; the caller performs the
         data movement on its own memory afterwards *)
  read_range_guard : fiber -> node:int -> int -> int -> f:(int -> int -> unit) -> unit;
  write_range_guard : fiber -> node:int -> int -> int -> f:(int -> int -> unit) -> unit;
      (* [guard f ~node addr words ~f:move] validates [addr..addr+words)
         in coherence-unit runs, calling [move run_addr run_words] for
         each validated run *)
  acquire : fiber -> node:int -> lock:int -> unit;
  release : fiber -> node:int -> lock:int -> unit;
  barrier_arrive : fiber -> node:int -> id:int -> unit;
  rmw : (fiber -> node:int -> int -> (int64 -> int64) -> int64) option;
      (* atomic read-modify-write on a shared word; hardware engines
         only (platforms build flat sync regions from it) *)
  invalidate_range : (addr:int -> words:int -> unit) option;
      (* drop cached copies of a memory range without timing; hardware
         engines only (DSM-over-bus platforms call it from page hooks) *)
  dump_lock : (lock:int -> string) option;  (* debug dump, if any *)
  check_invariants : unit -> unit;  (* post-run structural checks *)
}

(* ------------------------------------------------------------------ *)
(* The engine signature proper. *)

module type ENGINE = sig
  val name : string
  (** Registry key, e.g. ["lrc"]; lowercase, no spaces. *)

  val kind : kind

  val describe : string
  (** One line for [shmsim protocols]. *)

  val mount : ctx -> instance
  (** Build one run's worth of protocol state over [ctx].  Mount must
      not advance the simulation clock; all costs accrue inside the
      instance hooks, attributed to the categories in
      {!Shm_sim.Engine.category} (see DESIGN.md §11). *)
end

(* ------------------------------------------------------------------ *)
(* Registry: a pure value, so the engine table carries no hidden
   mutable state and duplicate registration is an error, not a silent
   shadowing. *)

module Registry = struct
  type t = (module ENGINE) list (* registration order, names unique *)

  let empty : t = []

  let name_of (module E : ENGINE) = E.name

  let register t (module E : ENGINE) =
    match List.find_opt (fun e -> name_of e = E.name) t with
    | Some (module Old : ENGINE) ->
        invalid_arg
          (Printf.sprintf
             "Shm_proto.Registry.register: protocol name %S is already taken \
              (%s engine: %s); engine names must be unique"
             E.name (kind_name Old.kind) Old.describe)
    | None -> t @ [ (module E : ENGINE) ]

  let of_list engines = List.fold_left register empty engines
  let names t = List.map name_of t
  let find t name = List.find_opt (fun e -> name_of e = name) t
  let mem t name = List.exists (fun e -> name_of e = name) t
end
