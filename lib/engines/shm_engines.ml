(* The protocol registry: every coherence engine in the build, as a pure
   value.  Platforms and the CLI look engines up here by name; nothing
   outside this library names a concrete protocol module. *)

module Snoop_engine = Snoop_engine
module Directory_engine = Directory_engine

let registry =
  Shm_proto.Registry.of_list
    [
      (module Shm_tmk.Lrc_engine.Lrc : Shm_proto.ENGINE);
      (module Shm_tmk.Lrc_engine.Eager_lrc : Shm_proto.ENGINE);
      (module Shm_tmk.Lrc_engine.Erc : Shm_proto.ENGINE);
      (module Shm_ivy.Ivy_engine : Shm_proto.ENGINE);
      (module Shm_tardis.Tardis_engine : Shm_proto.ENGINE);
      (module Snoop_engine : Shm_proto.ENGINE);
      (module Directory_engine : Shm_proto.ENGINE);
    ]

let names = Shm_proto.Registry.names registry

let find name = Shm_proto.Registry.find registry name

let get name =
  match find name with
  | Some e -> e
  | None ->
      invalid_arg
        (Printf.sprintf "unknown protocol %S (known protocols: %s)" name
           (String.concat ", " names))

let describe name =
  let (module E : Shm_proto.ENGINE) = get name in
  E.describe

let kind_of name =
  let (module E : Shm_proto.ENGINE) = get name in
  E.kind
