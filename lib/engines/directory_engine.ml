(* Full-map directory cache coherence as a mountable engine (registry
   name "directory") — the All-Hardware design's DASH/FLASH-like scheme
   over a crossbar of uniprocessor nodes. *)

module Directory = Shm_memsys.Directory
module Hw_sync = Shm_memsys.Hw_sync

let name = "directory"
let kind = Shm_proto.Hw

let describe =
  "full-map directory cache coherence over a crossbar (DASH/FLASH-like, \
   the All-Hardware design)"

let mount (ctx : Shm_proto.ctx) =
  let machine =
    Directory.create ctx.eng ctx.counters ctx.memories.(0)
      (Directory.sim_config ~n_nodes:ctx.nodes)
  in
  let access =
    {
      Hw_sync.rmw = (fun f ~cpu addr g -> Directory.rmw machine f ~node:cpu addr g);
      read = (fun f ~cpu addr -> ignore (Directory.read machine f ~node:cpu addr));
    }
  in
  let sync = Hw_sync.create ctx.eng access ~base:ctx.shared_words ~nprocs:ctx.nodes in
  {
    Shm_proto.i_name = name;
    page_shift = -1;
    wordwise_ranges = false;
    access_rights = None;
    set_page_hook = (fun _ -> ());
    start = (fun () -> ());
    retx_note = (fun () -> "");
    read_guard =
      (fun f ~node addr -> Directory.read_timing machine f ~node addr);
    write_guard =
      (fun f ~node addr -> Directory.write_timing machine f ~node addr);
    read_range_guard =
      (fun f ~node addr words ~f:move ->
        Directory.read_range machine f ~node addr words ~f:move);
    write_range_guard =
      (fun f ~node addr words ~f:move ->
        Directory.write_range machine f ~node addr words ~f:move);
    acquire = (fun f ~node ~lock -> Hw_sync.lock sync f ~cpu:node lock);
    release = (fun f ~node ~lock -> Hw_sync.unlock sync f ~cpu:node lock);
    barrier_arrive = (fun f ~node ~id -> Hw_sync.barrier sync f ~cpu:node id);
    rmw = Some (fun f ~node addr g -> Directory.rmw machine f ~node addr g);
    invalidate_range = None;
    dump_lock = None;
    check_invariants = (fun () -> Directory.check_invariants machine);
  }
