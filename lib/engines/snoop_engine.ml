(* The MESI snooping-bus cache hierarchy as a mountable engine (registry
   name "mesi").  The hardware profile in the mount context selects the
   bus timing: the SGI 4D/480 bus, the Section-2.5 doubled-speed bus, or
   an HS node's local bus. *)

module Snoop = Shm_memsys.Snoop
module Hw_sync = Shm_memsys.Hw_sync

let name = "mesi"
let kind = Shm_proto.Hw

let describe =
  "MESI write-invalidate snooping cache coherence over a shared bus \
   (Illinois protocol, the SGI 4D/480's scheme)"

let config_of (ctx : Shm_proto.ctx) =
  match ctx.hw_profile with
  | Some Shm_proto.Sgi_bus -> Snoop.sgi_config ~n_cpus:ctx.nodes
  | Some Shm_proto.Sgi_bus_fast ->
      let base = Snoop.sgi_config ~n_cpus:ctx.nodes in
      {
        base with
        Snoop.bus_block_cycles = base.Snoop.bus_block_cycles / 2;
        bus_upgrade_cycles = base.Snoop.bus_upgrade_cycles / 2;
        memory_extra_cycles = base.Snoop.memory_extra_cycles / 2;
      }
  | Some Shm_proto.Hs_node_bus -> Snoop.hs_node_config ~n_cpus:ctx.nodes
  | Some Shm_proto.Crossbar ->
      invalid_arg
        "protocol \"mesi\" models a snooping bus and cannot run over a \
         crossbar machine (that machine mounts \"directory\")"
  | None ->
      invalid_arg
        "protocol \"mesi\" needs a hardware bus profile; software-DSM \
         machines mount software engines (lrc, eager-lrc, erc, ivy, tardis)"

let mount (ctx : Shm_proto.ctx) =
  let machine = Snoop.create ctx.eng ctx.counters ctx.memories.(0) (config_of ctx) in
  let access =
    {
      Hw_sync.rmw = (fun f ~cpu addr g -> Snoop.rmw machine f ~cpu addr g);
      read = (fun f ~cpu addr -> ignore (Snoop.read machine f ~cpu addr));
    }
  in
  let sync = Hw_sync.create ctx.eng access ~base:ctx.shared_words ~nprocs:ctx.nodes in
  {
    Shm_proto.i_name = name;
    page_shift = -1;
    wordwise_ranges = false;
    access_rights = None;
    set_page_hook = (fun _ -> ());
    start = (fun () -> ());
    retx_note = (fun () -> "");
    read_guard = (fun f ~node addr -> Snoop.read_timing machine f ~cpu:node addr);
    write_guard = (fun f ~node addr -> Snoop.write_timing machine f ~cpu:node addr);
    read_range_guard =
      (fun f ~node addr words ~f:move ->
        Snoop.read_range machine f ~cpu:node addr words ~f:move);
    write_range_guard =
      (fun f ~node addr words ~f:move ->
        Snoop.write_range machine f ~cpu:node addr words ~f:move);
    acquire = (fun f ~node ~lock -> Hw_sync.lock sync f ~cpu:node lock);
    release = (fun f ~node ~lock -> Hw_sync.unlock sync f ~cpu:node lock);
    barrier_arrive = (fun f ~node ~id -> Hw_sync.barrier sync f ~cpu:node id);
    rmw = Some (fun f ~node addr g -> Snoop.rmw machine f ~cpu:node addr g);
    invalidate_range =
      Some (fun ~addr ~words -> Snoop.invalidate_range machine ~addr ~words);
    dump_lock = None;
    check_invariants = (fun () -> Snoop.check_coherence machine);
  }
