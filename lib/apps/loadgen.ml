module Prng = Shm_sim.Prng

(* Deterministic open-loop request generator.  A trace is a pure
   function of (params, node, nprocs): every platform, engine and fault
   schedule replays exactly the same per-node request streams, which is
   what makes the KV differential test and the cross-platform digest
   equality possible.

   Open-loop means requests are issued on a wall-clock schedule computed
   up front — a slow server does not slow the arrival process down, it
   just accumulates queueing delay into the measured latency (the
   coordinated-omission-free methodology; see DESIGN.md §14). *)

type op = Get | Put

type params = {
  seed : int;
  keys : int;  (* key-space size *)
  zipf : float;  (* popularity skew theta; 0.0 = uniform *)
  get_ratio : float;  (* fraction of gets, in [0, 1] *)
  requests : int;  (* requests per node *)
  mean_gap : int;  (* steady-state inter-arrival time, cycles *)
}

type req = { op : op; key : int; issue : int }

let validate p =
  if p.keys <= 0 then invalid_arg "Loadgen: keys must be positive";
  if p.requests < 0 then invalid_arg "Loadgen: requests must be non-negative";
  if p.zipf < 0.0 then invalid_arg "Loadgen: zipf skew must be >= 0";
  if not (p.get_ratio >= 0.0 && p.get_ratio <= 1.0) then
    invalid_arg "Loadgen: get-ratio must be in [0, 1]";
  if p.mean_gap <= 0 then invalid_arg "Loadgen: mean-gap must be positive"

(* Cumulative Zipf weights over ranks 0..keys-1: weight(r) = 1/(r+1)^s.
   Sampling is a binary search for the first rank whose cumulative
   weight exceeds a uniform draw. *)
let zipf_cumulative ~keys ~s =
  let cum = Array.make keys 0.0 in
  let total = ref 0.0 in
  for r = 0 to keys - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) s);
    cum.(r) <- !total
  done;
  cum

let sample_rank cum u =
  let n = Array.length cum in
  let target = u *. cum.(n - 1) in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cum.(mid) < target then lo := mid + 1 else hi := mid
  done;
  !lo

(* The arrival schedule has three phases: a ramp over the first quarter
   (inter-arrival gaps start at 3x the steady mean and tighten to 1x), a
   burst over [50%, 60%) of the trace at a quarter of the mean gap, and
   the steady mean elsewhere.  Each gap is drawn uniformly from
   [1, 2*phase_gap] so arrivals are irregular but average the phase
   rate. *)
let phase_gap p i =
  let quarter = max 1 (p.requests / 4) in
  if i < quarter then
    let mult = 3 - (2 * i / quarter) in
    p.mean_gap * max 1 mult
  else if i >= p.requests / 2 && i < p.requests * 6 / 10 then
    max 1 (p.mean_gap / 4)
  else p.mean_gap

(* Puts from [node] target only keys congruent to [node] mod [nprocs]:
   each key has a single writer, so the final store contents are a pure
   function of the per-node traces — independent of platform timing,
   faults and crashes.  Gets range over the whole key space. *)
let own_key ~node ~nprocs ~keys rank =
  let k = (rank / nprocs * nprocs) + node in
  if k < keys then k else if node < keys then node else rank

let trace p ~node ~nprocs =
  validate p;
  if nprocs <= 0 then invalid_arg "Loadgen: nprocs must be positive";
  let rng =
    Prng.create ~seed:((p.seed * 1_000_003) + (node * 7919) + nprocs)
  in
  let cum = zipf_cumulative ~keys:p.keys ~s:p.zipf in
  let t = ref 0 in
  Array.init p.requests (fun i ->
      t := !t + 1 + Prng.int rng (2 * phase_gap p i);
      let op = if Prng.float rng 1.0 < p.get_ratio then Get else Put in
      let rank = sample_rank cum (Prng.float rng 1.0) in
      let key =
        match op with
        | Get -> rank
        | Put -> own_key ~node ~nprocs ~keys:p.keys rank
      in
      { op; key; issue = !t })
