module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory

type params = {
  rows : int;
  cols : int;
  iters : int;
  touch_all : bool;
  omega : float;
  point_cycles : int;
}

(* Default cycle cost of one point update beyond its memory accesses
   (R3000-class: four fp adds, two fp multiplies, loop overhead). *)
let default_point_cycles = 30

let default_params =
  { rows = 256; cols = 256; iters = 10; touch_all = false; omega = 0.9;
    point_cycles = default_point_cycles }

let params_2000x1000 =
  { default_params with rows = 2000; cols = 1000; iters = 51 }

let params_1000x1000 =
  { default_params with rows = 1000; cols = 1000; iters = 51 }

let page_words = 512

(* Shared layout: grid, per-processor partial sums, checksum slot. *)
type layout = { grid : int; partials : int; checksum : int; words : int }

let layout_of p =
  let l = Layout.create () in
  let grid = Layout.alloc l ((p.rows + 2) * p.cols) in
  (* Partial-sum slots one page apart: no false sharing between writers. *)
  let partials = Layout.alloc_aligned l (64 * page_words) ~align:page_words in
  let checksum = Layout.alloc l 1 in
  { grid; partials; checksum; words = Layout.size l }

let partial_slot lay p = lay.partials + (p * page_words)

let seed_value ~touch_all i j =
  if touch_all then float_of_int (((i * 31) + (j * 17)) mod 97) /. 97.0
  else 0.0

let init p lay mem =
  let set i j v = Memory.set_float mem (lay.grid + (i * p.cols) + j) v in
  for i = 0 to p.rows + 1 do
    for j = 0 to p.cols - 1 do
      let boundary = i = 0 || i = p.rows + 1 || j = 0 || j = p.cols - 1 in
      if boundary then set i j 1.0 else set i j (seed_value ~touch_all:p.touch_all i j)
    done
  done

let work p lay (ctx : Parmacs.ctx) =
  assert (ctx.nprocs <= 64);
  let cols = p.cols in
  let addr i j = lay.grid + (i * cols) + j in
  let lo = 1 + (p.rows * ctx.id / ctx.nprocs) in
  let hi = 1 + (p.rows * (ctx.id + 1) / ctx.nprocs) in
  (* Hot stencil: the platform closures and the transfer cell are hoisted
     out of the loops, and per-point addresses are offsets from a row
     base, so each point is five guarded reads, one guarded write, and
     pure float arithmetic — no per-point projections or re-multiplies.
     The accesses stay per-word in the exact order of the naive loop (the
     stencil is not contiguous, so the range layer does not apply). *)
  let readf = ctx.readf
  and writef = ctx.writef
  and fcell = ctx.fcell
  and compute = ctx.compute in
  let omega = p.omega and point_cycles = p.point_cycles in
  for _iter = 1 to p.iters do
    for phase = 0 to 1 do
      for i = lo to hi - 1 do
        let base = lay.grid + (i * cols) in
        let j0 = if (i + 1) land 1 = phase then 1 else 2 in
        let j = ref j0 in
        while !j <= cols - 2 do
          let jj = !j in
          readf (base - cols + jj);
          let up = !fcell in
          readf (base + cols + jj);
          let down = !fcell in
          readf (base + jj - 1);
          let left = !fcell in
          readf (base + jj + 1);
          let right = !fcell in
          readf (base + jj);
          let self = !fcell in
          let avg = 0.25 *. (up +. down +. left +. right) in
          fcell := self +. (omega *. (avg -. self));
          writef (base + jj);
          compute point_cycles;
          j := jj + 2
        done
      done;
      ctx.barrier 0
    done
  done;
  (* Checksum: banded partial sums, combined by processor 0.  Each row's
     interior is contiguous, so fetch it as one range. *)
  let s = ref 0.0 in
  let row = Array.make (cols - 2) 0.0 in
  for i = lo to hi - 1 do
    Parmacs.read_range_f ctx (addr i 1) row;
    for j = 0 to cols - 3 do
      s := !s +. Array.unsafe_get row j
    done
  done;
  Parmacs.write_f ctx (partial_slot lay ctx.id) !s;
  ctx.barrier 0;
  if ctx.id = 0 then begin
    let total = ref 0.0 in
    for q = 0 to ctx.nprocs - 1 do
      total := !total +. Parmacs.read_f ctx (partial_slot lay q)
    done;
    Parmacs.write_f ctx lay.checksum !total
  end;
  ctx.barrier 0

let make p =
  let lay = layout_of p in
  {
    Parmacs.name =
      Printf.sprintf "sor-%dx%d%s" p.rows p.cols
        (if p.touch_all then "-touchall" else "");
    shared_words = lay.words;
    eager_lock_hints = [];
    init = init p lay;
    work = work p lay;
    checksum_addr = lay.checksum;
    stats = Parmacs.no_stats;
  }

let reference p =
  let app = make p in
  let mem = Parmacs.run_sequential app in
  Parmacs.checksum_of mem app
