module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory
module Prng = Shm_sim.Prng

type params = {
  ncities : int;
  seed : int;
  expand_depth : int;
  queue_capacity : int;
  node_cycles : int;  (* compute cost of extending a tour by one city *)
}

let default_node_cycles = 100

let default_params =
  { ncities = 12; seed = 9; expand_depth = 4; queue_capacity = 4096;
    node_cycles = default_node_cycles }

let params_n ncities =
  {
    ncities;
    (* A seed whose greedy tour is ~27% above optimal: bound updates keep
       happening during the search, so bound-propagation latency matters
       (the Section 2.4.3 effect). *)
    seed = 15;
    expand_depth = (if ncities <= 11 then 2 else 3);
    queue_capacity = 8192;
    node_cycles = default_node_cycles;
  }

let queue_lock = 0
let bound_lock = 1

let page_words = 512
let poll_backoff_cycles = 50000

type layout = {
  dist : int;
  bound : int;
  qtop : int;  (** stack pointer; [qtop + 1] is the in-progress counter *)
  slots : int;
  checksum : int;
  words : int;
  slot_words : int;
}

let layout_of p =
  let l = Layout.create () in
  let dist = Layout.alloc l (p.ncities * p.ncities) in
  let bound = Layout.alloc_aligned l 1 ~align:page_words in
  let qtop = Layout.alloc_aligned l 2 ~align:page_words in
  let slot_words = 1 + p.ncities in
  let slots = Layout.alloc l (p.queue_capacity * slot_words) in
  let checksum = Layout.alloc l 1 in
  { dist; bound; qtop; slots; checksum; words = Layout.size l; slot_words }

(* Euclidean instances (the paper used real city data): random points on
   a 1000x1000 grid.  Euclidean structure is what makes branch-and-bound
   prune well; uniformly random distance matrices barely prune at all. *)
let distances p =
  let rng = Prng.create ~seed:p.seed in
  let n = p.ncities in
  let xs = Array.init n (fun _ -> Prng.float rng 1000.0) in
  let ys = Array.init n (fun _ -> Prng.float rng 1000.0) in
  let d = Array.make_matrix n n 0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let dx = xs.(i) -. xs.(j) and dy = ys.(i) -. ys.(j) in
      let v = 1 + int_of_float (sqrt ((dx *. dx) +. (dy *. dy))) in
      d.(i).(j) <- v;
      d.(j).(i) <- v
    done
  done;
  d

let greedy_tour_length d =
  let n = Array.length d in
  let visited = Array.make n false in
  visited.(0) <- true;
  let total = ref 0 and current = ref 0 in
  for _ = 1 to n - 1 do
    let best = ref (-1) and best_d = ref max_int in
    for c = 0 to n - 1 do
      if (not visited.(c)) && d.(!current).(c) < !best_d then begin
        best := c;
        best_d := d.(!current).(c)
      end
    done;
    visited.(!best) <- true;
    total := !total + !best_d;
    current := !best
  done;
  !total + d.(!current).(0)

let init p lay mem =
  let d = distances p in
  let n = p.ncities in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Memory.set_int mem (lay.dist + (i * n) + j) d.(i).(j)
    done
  done;
  Memory.set_int mem lay.bound (greedy_tour_length d);
  (* Seed the queue with the root tour [0]. *)
  Memory.set_int mem lay.qtop 1;
  Memory.set_int mem (lay.qtop + 1) 0;
  Memory.set_int mem lay.slots 1;
  Memory.set_int mem (lay.slots + 1) 0

let work p lay (ctx : Parmacs.ctx) =
  let n = p.ncities in
  let dist i j = Parmacs.read_i ctx (lay.dist + (i * n) + j) in
  let read_bound () = Parmacs.read_i ctx lay.bound in
  let slot_addr s = lay.slots + (s * lay.slot_words) in
  (* Private copy of a popped tour. *)
  let tour = Array.make n 0 in
  let slot_buf = Array.make (n + 1) 0 in
  let push_child ~len =
    (* Caller holds the queue lock; [tour.(0..len-1)] is the child.  The
       slot header and body are contiguous: store them as one range. *)
    let top = Parmacs.read_i ctx lay.qtop in
    if top >= p.queue_capacity then failwith "tsp: queue overflow";
    slot_buf.(0) <- len;
    Array.blit tour 0 slot_buf 1 len;
    ctx.range.write_is (slot_addr top) slot_buf 0 (len + 1);
    Parmacs.write_i ctx lay.qtop (top + 1)
  in
  let rec dfs ~len ~path_len ~visited =
    ctx.compute p.node_cycles;
    if len = n then begin
      let total = path_len + dist tour.(n - 1) 0 in
      if total < read_bound () then begin
        ctx.lock bound_lock;
        (* Re-check under the lock: the bound is now up to date. *)
        if total < Parmacs.read_i ctx lay.bound then
          Parmacs.write_i ctx lay.bound total;
        ctx.unlock bound_lock
      end
    end
    else
      for c = 1 to n - 1 do
        if visited land (1 lsl c) = 0 then begin
          let nl = path_len + dist tour.(len - 1) c in
          if nl < read_bound () then begin
            tour.(len) <- c;
            dfs ~len:(len + 1) ~path_len:nl ~visited:(visited lor (1 lsl c))
          end
        end
      done
  in
  let process ~len ~path_len ~visited =
    if len < p.expand_depth then begin
      (* Expand: push every promising child back on the queue. *)
      ctx.lock queue_lock;
      for c = 1 to n - 1 do
        if visited land (1 lsl c) = 0 then begin
          let nl = path_len + dist tour.(len - 1) c in
          if nl < read_bound () then begin
            tour.(len) <- c;
            push_child ~len:(len + 1)
          end
        end
      done;
      ctx.unlock queue_lock
    end
    else dfs ~len ~path_len ~visited
  in
  let running = ref true in
  while !running do
    ctx.lock queue_lock;
    let top = Parmacs.read_i ctx lay.qtop in
    if top > 0 then begin
      let a = slot_addr (top - 1) in
      let len = Parmacs.read_i ctx a in
      ctx.range.read_is (a + 1) tour 0 len;
      Parmacs.write_i ctx lay.qtop (top - 1);
      Parmacs.write_i ctx (lay.qtop + 1) (Parmacs.read_i ctx (lay.qtop + 1) + 1);
      ctx.unlock queue_lock;
      let path_len = ref 0 and visited = ref 0 in
      for k = 0 to len - 1 do
        visited := !visited lor (1 lsl tour.(k));
        if k > 0 then path_len := !path_len + dist tour.(k - 1) tour.(k)
      done;
      process ~len ~path_len:!path_len ~visited:!visited;
      ctx.lock queue_lock;
      Parmacs.write_i ctx (lay.qtop + 1) (Parmacs.read_i ctx (lay.qtop + 1) - 1);
      ctx.unlock queue_lock
    end
    else begin
      let busy = Parmacs.read_i ctx (lay.qtop + 1) in
      ctx.unlock queue_lock;
      if busy = 0 then running := false else ctx.compute poll_backoff_cycles
    end
  done;
  ctx.barrier 0;
  if ctx.id = 0 then
    Parmacs.write_f ctx lay.checksum (float_of_int (read_bound ()));
  ctx.barrier 0

let make p =
  let lay = layout_of p in
  {
    Parmacs.name = Printf.sprintf "tsp-%d" p.ncities;
    shared_words = lay.words;
    eager_lock_hints = [ bound_lock ];
    init = init p lay;
    work = work p lay;
    checksum_addr = lay.checksum;
    stats = Parmacs.no_stats;
  }

let greedy_length p = float_of_int (greedy_tour_length (distances p))

let optimal_length p =
  let d = distances p in
  let n = p.ncities in
  let best = ref (greedy_tour_length d) in
  let tour = Array.make n 0 in
  let rec dfs len path_len visited =
    if len = n then begin
      let total = path_len + d.(tour.(n - 1)).(0) in
      if total < !best then best := total
    end
    else
      for c = 1 to n - 1 do
        if visited land (1 lsl c) = 0 then begin
          let nl = path_len + d.(tour.(len - 1)).(c) in
          if nl < !best then begin
            tour.(len) <- c;
            dfs (len + 1) nl (visited lor (1 lsl c))
          end
        end
      done
  in
  dfs 1 0 1;
  float_of_int !best
