module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory

type kind = Migratory | Producer_consumer | False_sharing | Read_mostly

let kind_name = function
  | Migratory -> "migratory"
  | Producer_consumer -> "producer-consumer"
  | False_sharing -> "false-sharing"
  | Read_mostly -> "read-mostly"

let all_kinds = [ Migratory; Producer_consumer; False_sharing; Read_mostly ]

type params = {
  kind : kind;
  rounds : int;
  words : int;
  compute : int;
}

let default_params kind =
  let rounds = match kind with Migratory -> 32 | _ -> 16 in
  (* Enough computation per round that an efficient protocol can win;
     migratory is inherently serial, so its "speedup" measures pure
     record-transfer overhead (1.0 = free migration). *)
  { kind; rounds; words = 256; compute = 500_000 }

let page_words = 512

type layout = { data : int; partials : int; checksum : int; words : int }

let layout_of (p : params) =
  let l = Layout.create () in
  (* +1 word for the migratory turn counter. *)
  let data =
    Layout.alloc_aligned l (max (p.words + 1) page_words) ~align:page_words
  in
  let partials = Layout.alloc_aligned l (64 * page_words) ~align:page_words in
  let checksum = Layout.alloc l 1 in
  { data; partials; checksum; words = Layout.size l }

let init (p : params) lay mem =
  for k = 0 to p.words - 1 do
    Memory.set_int mem (lay.data + k) k
  done

(* One record migrating under lock 0 in strict round order: the record's
   own counter (its last word) says whose turn it is, so every platform
   visits in the same sequence and the digest is deterministic. *)
let migratory (p : params) lay (ctx : Parmacs.ctx) =
  let counter = lay.data + p.words in
  let mine = ref 0 in
  for round = 0 to p.rounds - 1 do
    if round mod ctx.nprocs = ctx.id then begin
      let done_ = ref false in
      while not !done_ do
        ctx.lock 0;
        if Parmacs.read_i ctx counter = round then begin
          for k = 0 to p.words - 1 do
            let v = Parmacs.read_i ctx (lay.data + k) in
            Parmacs.write_i ctx (lay.data + k) (v + 1);
            mine := !mine + v
          done;
          ctx.compute p.compute;
          Parmacs.write_i ctx counter (round + 1);
          done_ := true
        end;
        ctx.unlock 0;
        if not !done_ then ctx.compute 20_000
      done
    end
  done;
  !mine

(* Processor 0 produces, everyone consumes, fenced by barriers. *)
let producer_consumer (p : params) lay (ctx : Parmacs.ctx) =
  let sum = ref 0 in
  for round = 1 to p.rounds do
    if ctx.id = 0 then
      for k = 0 to p.words - 1 do
        Parmacs.write_i ctx (lay.data + k) ((round * 1000) + k)
      done;
    ctx.compute p.compute;
    ctx.barrier 0;
    for k = 0 to p.words - 1 do
      sum := !sum + Parmacs.read_i ctx (lay.data + k)
    done;
    ctx.barrier 0
  done;
  !sum

(* Everyone updates a private word that shares a page with the others. *)
let false_sharing (p : params) lay (ctx : Parmacs.ctx) =
  (* One 8-word (64-byte) slot per processor: distinct cache lines, same
     page. *)
  let my_word = lay.data + (ctx.id * 8) in
  for round = 1 to p.rounds do
    let v = Parmacs.read_i ctx my_word in
    Parmacs.write_i ctx my_word (v + round);
    ctx.compute p.compute;
    ctx.barrier 0
  done;
  Parmacs.read_i ctx my_word

(* A table written once, then read by all processors every round. *)
let read_mostly (p : params) lay (ctx : Parmacs.ctx) =
  if ctx.id = 0 then
    for k = 0 to p.words - 1 do
      Parmacs.write_i ctx (lay.data + k) (7 * k)
    done;
  ctx.barrier 0;
  let sum = ref 0 in
  for round = 1 to p.rounds do
    let stride = 1 + (round mod 3) in
    let k = ref 0 in
    while !k < p.words do
      sum := !sum + Parmacs.read_i ctx (lay.data + !k);
      k := !k + stride
    done;
    ctx.compute p.compute;
    ctx.barrier 0
  done;
  !sum

let work (p : params) lay (ctx : Parmacs.ctx) =
  assert (ctx.nprocs <= 64);
  let digest =
    match p.kind with
    | Migratory -> migratory p lay ctx
    | Producer_consumer -> producer_consumer p lay ctx
    | False_sharing -> false_sharing p lay ctx
    | Read_mostly -> read_mostly p lay ctx
  in
  Parmacs.write_i ctx (lay.partials + (ctx.id * page_words)) digest;
  ctx.barrier 1;
  if ctx.id = 0 then begin
    let total = ref 0 in
    for q = 0 to ctx.nprocs - 1 do
      total := !total + Parmacs.read_i ctx (lay.partials + (q * page_words))
    done;
    Parmacs.write_f ctx lay.checksum (float_of_int !total)
  end;
  ctx.barrier 1

let make p =
  let lay = layout_of p in
  {
    Parmacs.name = Printf.sprintf "pattern-%s" (kind_name p.kind);
    shared_words = lay.words;
    eager_lock_hints = [];
    init = init p lay;
    work = work p lay;
    checksum_addr = lay.checksum;
    stats = Parmacs.no_stats;
  }
