(** Sharded key-value store on shared pages: the serving workload.

    The table is [shards] open-addressing regions, each page-aligned
    with an owner word (migratory bucket ownership — re-homing a shard
    is a locked write that pulls its pages across the memory system)
    followed by two-word slots.  Lock [s] protects shard [s].  Every
    node replays a deterministic open-loop {!Loadgen} trace and records
    per-request latency (complete − scheduled issue) into an
    allocation-free histogram.

    Because puts are single-writer per key (see {!Loadgen}), the final
    store contents and the content-based digest written as the run
    checksum are identical across platforms, engines, fault schedules
    and crash/restart runs.  Individual get results are
    timing-dependent; node 0 validates them after the final barrier by
    replaying the recorded linearization order through a plain
    [Hashtbl] (the built-in differential check; [kv.model_ok] = 1 on
    success, a run failure otherwise).  External harnesses can re-check
    through {!val-results} / {!val-final}. *)

type params = {
  shards : int;  (** bucket groups, each with its own lock; in [1, 64] *)
  service_cycles : int;  (** per-request parse/respond compute *)
  load : Loadgen.params;
}

val default_params : params

(** A completed request in the linearization record. *)
type entry = {
  op : Loadgen.op;
  key : int;
  value : int;  (** returned (get, 0 = miss) or stored (put) *)
  lin : int;  (** clock read while holding the shard lock *)
  node : int;
  idx : int;  (** per-node request index *)
}

type t = {
  app : Shm_parmacs.Parmacs.app;
  params : params;
  results : unit -> entry list;
      (** all requests of the last run, in linearization order *)
  latency : unit -> Shm_stats.Hist.t;  (** merged latency histogram *)
  final : unit -> (int * int) list;
      (** final store contents, sorted by key *)
}

(** One instance serves one run at a time (DESIGN.md §8): observation
    state is reset by [app.init] and read back after [run] returns.
    @raise Invalid_argument on out-of-range parameters. *)
val make : params -> t
