module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory
module Hist = Shm_stats.Hist

(* Sharded key-value store on shared pages (DESIGN.md §14).

   The table is split into [shards] open-addressing regions, each
   page-aligned so a shard and its metadata live on their own pages.
   Word 0 of a shard is its current owner (node id + 1, 0 = unowned);
   the slots follow, two words per slot: [key+1, value] with key-word 0
   meaning empty.  A request locks the shard (lock id = shard index),
   writes the owner word if it is re-homing the shard to a new node —
   migratory bucket ownership, carried by page migration through the
   reliable layer on the SDSM platforms and by plain cache-line
   migration on the hardware machines — then probes linearly.

   Each node replays its deterministic open-loop trace (Loadgen),
   charging idle gaps up to each request's issue cycle and measuring
   latency from the scheduled issue time into an allocation-free
   histogram.  The linearization cycle of every request is recorded
   while the shard lock is held; shard critical sections are disjoint
   in simulated time, so sorting all requests by (cycle, node, index)
   reconstructs a total order per shard — the order the built-in
   differential model check replays against a plain Hashtbl.

   Put keys are partitioned per node (Loadgen), so the final store
   contents — and the content-based digest written as the run checksum
   — are identical on every platform and under any fault or crash
   schedule, even though individual get results are timing-dependent. *)

type params = {
  shards : int;
  service_cycles : int;  (* per-request parse/respond compute *)
  load : Loadgen.params;
}

let default_params =
  {
    shards = 16;
    service_cycles = 400;
    load =
      {
        Loadgen.seed = 42;
        keys = 1024;
        zipf = 0.9;
        get_ratio = 0.9;
        requests = 2000;
        mean_gap = 2000;
      };
  }

let max_nodes = 256
let page_words = 512

(* SplitMix64's multiplier; one multiply mixes the key well enough to
   decorrelate shard choice (low bits) from probe start (high bits). *)
let mix key = key * 0x2545F4914F6CDD1D land max_int

let shard_of p key = mix key mod p.shards

type layout = {
  shard_base : int array;  (* owner word; slots follow *)
  shard_cap : int array;  (* slots per shard *)
  checksum : int;
  words : int;
}

(* Shard capacities are computed exactly: key->shard is a pure function,
   so counting the keys that can map to each shard bounds its occupancy.
   Doubling that keeps linear probes short; +2 guarantees a probe always
   terminates at an empty slot. *)
let layout_of p =
  let occ = Array.make p.shards 0 in
  for key = 0 to p.load.Loadgen.keys - 1 do
    let s = shard_of p key in
    occ.(s) <- occ.(s) + 1
  done;
  let l = Layout.create () in
  let shard_cap = Array.map (fun o -> (2 * o) + 2) occ in
  let shard_base =
    Array.map
      (fun cap -> Layout.alloc_aligned l (1 + (2 * cap)) ~align:page_words)
      shard_cap
  in
  let checksum = Layout.alloc_aligned l 1 ~align:page_words in
  { shard_base; shard_cap; checksum; words = Layout.size l }

(* One completed request, as observed by the issuing node.  [lin] is the
   linearization cycle (clock read under the shard lock); [value] is the
   value returned (get, 0 = miss) or stored (put). *)
type entry = {
  op : Loadgen.op;
  key : int;
  value : int;
  lin : int;
  node : int;
  idx : int;
}

type t = {
  app : Parmacs.app;
  params : params;
  results : unit -> entry list;
  latency : unit -> Hist.t;
  final : unit -> (int * int) list;
}

(* Put values are unique per (node, request index), so the model replay
   can distinguish every write. *)
let value_of ~node ~idx = ((node + 1) * 0x1000000) + idx

let compare_entry a b =
  if a.lin <> b.lin then compare a.lin b.lin
  else if a.node <> b.node then compare a.node b.node
  else compare a.idx b.idx

let validate p =
  if p.shards < 1 || p.shards > 64 then
    invalid_arg "Kvstore: shards must be in [1, 64]";
  if p.service_cycles < 0 then
    invalid_arg "Kvstore: service-cycles must be non-negative";
  (* Reject bad load parameters at build time, not mid-run. *)
  Loadgen.validate p.load

let make p =
  validate p;
  let lay = layout_of p in
  (* Per-run observation state, private to this app instance: reset by
     [init] (which every platform calls once per run, before the timed
     section), read back by [stats]/[results] after the run.  Fibers of
     one run share a domain, so plain mutation is safe; distinct
     concurrent runs must use distinct instances (DESIGN.md §8 — the
     registry builds a fresh instance per call). *)
  let logs : entry array option array = Array.make max_nodes None in
  let hists : Hist.t option array = Array.make max_nodes None in
  let moves = Array.make max_nodes 0 in
  let hits = Array.make max_nodes 0 in
  let misses = Array.make max_nodes 0 in
  let inserts = Array.make max_nodes 0 in
  let final_tbl : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let ran_nprocs = ref 0 in
  let model_ok = ref 0 in
  let reset () =
    Array.fill logs 0 max_nodes None;
    Array.fill hists 0 max_nodes None;
    Array.fill moves 0 max_nodes 0;
    Array.fill hits 0 max_nodes 0;
    Array.fill misses 0 max_nodes 0;
    Array.fill inserts 0 max_nodes 0;
    Hashtbl.reset final_tbl;
    ran_nprocs := 0;
    model_ok := 0
  in
  let gather () =
    let acc = ref [] in
    for node = max_nodes - 1 downto 0 do
      match logs.(node) with
      | None -> ()
      | Some log -> acc := Array.to_list log @ !acc
    done;
    List.sort compare_entry !acc
  in
  (* Differential model check: replay the recorded linearization order
     through a plain Hashtbl; every get must have returned the model's
     value and the final store contents must equal the model's.  Runs on
     node 0 after the final sweep, as untimed host computation. *)
  let check_model () =
    let model = Hashtbl.create 256 in
    List.iter
      (fun e ->
        match e.op with
        | Loadgen.Put -> Hashtbl.replace model e.key e.value
        | Loadgen.Get ->
            let expect =
              Option.value (Hashtbl.find_opt model e.key) ~default:0
            in
            if expect <> e.value then
              failwith
                (Printf.sprintf
                   "kv: node %d request %d: get(%d) returned %d, model says \
                    %d (linearized at cycle %d)"
                   e.node e.idx e.key e.value expect e.lin))
      (gather ());
    if Hashtbl.length model <> Hashtbl.length final_tbl then
      failwith
        (Printf.sprintf "kv: final store has %d keys, model has %d"
           (Hashtbl.length final_tbl) (Hashtbl.length model));
    Hashtbl.iter
      (fun key v ->
        match Hashtbl.find_opt final_tbl key with
        | Some v' when v' = v -> ()
        | Some v' ->
            failwith
              (Printf.sprintf "kv: final store key %d = %d, model says %d" key
                 v' v)
        | None ->
            failwith
              (Printf.sprintf "kv: key %d missing from the final store" key))
      model;
    model_ok := 1
  in
  let work (ctx : Parmacs.ctx) =
    if ctx.Parmacs.id >= max_nodes then
      invalid_arg "Kvstore: more than 256 nodes";
    let reqs = Loadgen.trace p.load ~node:ctx.Parmacs.id ~nprocs:ctx.Parmacs.nprocs in
    let n = Array.length reqs in
    let log =
      Array.make n
        { op = Loadgen.Get; key = 0; value = 0; lin = 0; node = 0; idx = 0 }
    in
    let hist = Hist.create () in
    logs.(ctx.Parmacs.id) <- Some log;
    hists.(ctx.Parmacs.id) <- Some hist;
    let me = ctx.Parmacs.id in
    for i = 0 to n - 1 do
      let r = reqs.(i) in
      let now = ctx.Parmacs.clock () in
      (* Open-loop: idle until the scheduled issue cycle; if the server
         is behind schedule, the request is late and its latency keeps
         the queueing delay. *)
      if now < r.Loadgen.issue then ctx.Parmacs.compute (r.Loadgen.issue - now);
      let s = shard_of p r.Loadgen.key in
      ctx.Parmacs.lock s;
      let base = lay.shard_base.(s) in
      let owner = Parmacs.read_i ctx base in
      if owner <> me + 1 then begin
        Parmacs.write_i ctx base (me + 1);
        moves.(me) <- moves.(me) + 1
      end;
      let cap = lay.shard_cap.(s) in
      let slot = ref ((mix r.Loadgen.key lsr 16) mod cap) in
      let found = ref (-1) and empty = ref (-1) and probes = ref 0 in
      while !found < 0 && !empty < 0 do
        if !probes > cap then failwith "kv: shard overfull (probe loop)";
        incr probes;
        let a = base + 1 + (2 * !slot) in
        let k = Parmacs.read_i ctx a in
        if k = r.Loadgen.key + 1 then found := a
        else if k = 0 then empty := a
        else slot := (!slot + 1) mod cap
      done;
      let value =
        match r.Loadgen.op with
        | Loadgen.Get ->
            if !found >= 0 then begin
              hits.(me) <- hits.(me) + 1;
              Parmacs.read_i ctx (!found + 1)
            end
            else begin
              misses.(me) <- misses.(me) + 1;
              0
            end
        | Loadgen.Put ->
            let v = value_of ~node:me ~idx:i in
            if !found >= 0 then Parmacs.write_i ctx (!found + 1) v
            else begin
              inserts.(me) <- inserts.(me) + 1;
              Parmacs.write_i ctx !empty (r.Loadgen.key + 1);
              Parmacs.write_i ctx (!empty + 1) v
            end;
            v
      in
      let lin = ctx.Parmacs.clock () in
      ctx.Parmacs.unlock s;
      ctx.Parmacs.compute p.service_cycles;
      let done_ = ctx.Parmacs.clock () in
      Hist.record hist (done_ - r.Loadgen.issue);
      log.(i) <- { op = r.Loadgen.op; key = r.Loadgen.key; value; lin; node = me; idx = i }
    done;
    ctx.Parmacs.barrier 0;
    if me = 0 then begin
      ran_nprocs := ctx.Parmacs.nprocs;
      (* Final sweep: read the whole table through the platform (a
         read-mostly pass pulling every shard to node 0), capture the
         contents for the differential harness and fold a content-based
         digest — commutative over slots, so independent of insertion
         order and probe placement. *)
      let digest = ref 0 in
      for s = 0 to p.shards - 1 do
        let base = lay.shard_base.(s) and cap = lay.shard_cap.(s) in
        for j = 0 to cap - 1 do
          let a = base + 1 + (2 * j) in
          let k = Parmacs.read_i ctx a in
          if k <> 0 then begin
            let v = Parmacs.read_i ctx (a + 1) in
            Hashtbl.replace final_tbl (k - 1) v;
            digest :=
              (!digest + (k * 2654435761) + (v * 40503))
              land 0xFFFF_FFFF_FFFF
          end
        done
      done;
      check_model ();
      Parmacs.write_f ctx lay.checksum (float_of_int !digest)
    end;
    ctx.Parmacs.barrier 1
  in
  let merged_latency () =
    let m = Hist.create () in
    Array.iter
      (function None -> () | Some h -> Hist.merge ~into:m h)
      hists;
    m
  in
  let sum a = Array.fold_left ( + ) 0 a in
  let stats () =
    let h = merged_latency () in
    let gets = sum hits + sum misses in
    let ops = Hist.count h in
    [
      ("kv.ops", ops);
      ("kv.gets", gets);
      ("kv.puts", ops - gets);
      ("kv.hits", sum hits);
      ("kv.misses", sum misses);
      ("kv.inserts", sum inserts);
      ("kv.moves", sum moves);
      ("kv.model_ok", !model_ok);
      ("kv.lat_p50", Hist.percentile h 50.0);
      ("kv.lat_p99", Hist.percentile h 99.0);
      ("kv.lat_p999", Hist.percentile h 99.9);
      ("kv.lat_max", Hist.max_value h);
      ("kv.lat_mean", int_of_float (Hist.mean h));
    ]
  in
  let app =
    {
      Parmacs.name =
        Printf.sprintf "kv %dk/%ds" p.load.Loadgen.keys p.shards;
      shared_words = lay.words;
      eager_lock_hints = [];
      init = (fun _mem -> reset ());
      work;
      checksum_addr = lay.checksum;
      stats;
    }
  in
  let final () =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) final_tbl [])
  in
  ignore !ran_nprocs;
  { app; params = p; results = gather; latency = merged_latency; final }
