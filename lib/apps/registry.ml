type scale = Quick | Default | Paper

let scale_of_string = function
  | "quick" -> Some Quick
  | "default" -> Some Default
  | "paper" -> Some Paper
  | _ -> None

let scale_name = function
  | Quick -> "quick"
  | Default -> "default"
  | Paper -> "paper"

let names =
  [
    "sor"; "sor-square"; "sor-touchall"; "tsp"; "tsp-small"; "water";
    "m-water"; "ilink-clp"; "ilink-bad"; "migratory"; "producer-consumer";
    "false-sharing"; "read-mostly"; "kv";
  ]

(* Per-app parameter overrides, given as string pairs from the CLI.
   Every app declares its known keys; an unknown key is an error rather
   than a silent no-op, since a typoed knob that quietly reverts to the
   default is the worst possible failure mode for an experiment. *)

let check_keys ~app known params =
  List.iter
    (fun (k, _) ->
      if not (List.mem k known) then
        invalid_arg
          (Printf.sprintf "app %S: unknown parameter %S (known: %s)" app k
             (String.concat ", " known)))
    params

let pint params key default =
  match List.assoc_opt key params with
  | None -> default
  | Some v -> (
      match int_of_string_opt v with
      | Some i -> i
      | None ->
          invalid_arg
            (Printf.sprintf "parameter %s=%S: expected an integer" key v))

let pfloat params key default =
  match List.assoc_opt key params with
  | None -> default
  | Some v -> (
      match float_of_string_opt v with
      | Some f -> f
      | None ->
          invalid_arg
            (Printf.sprintf "parameter %s=%S: expected a number" key v))

let sor_params ~scale ~square ~touch_all =
  let rows, cols, iters =
    match (scale, square) with
    | Quick, _ -> (96, 96, 4)
    | Default, false -> (2048, 1024, 8)
    | Default, true -> (1152, 1152, 8)
    | Paper, false -> (2000, 1000, 51)
    | Paper, true -> (1000, 1000, 51)
  in
  { Sor.default_params with rows; cols; iters; touch_all }

(* The paper ran 18- and 19-city inputs on real hardware; an exhaustive
   simulated search at that size is intractable (days of DFS), so paper
   scale caps at 16/15 cities — documented in EXPERIMENTS.md. *)
let tsp_cities ~scale ~small =
  match (scale, small) with
  | Quick, false -> 10
  | Quick, true -> 9
  | Default, false -> 13
  | Default, true -> 12
  | Paper, false -> 16
  | Paper, true -> 15

let water_params ~scale mode =
  match scale with
  | Quick -> { (Water.default_params mode) with molecules = 64; steps = 1 }
  | Default -> Water.default_params mode
  | Paper -> Water.params_paper mode

let ilink_params ~scale input =
  let base = Ilink.default_params input in
  (* The BAD input iterates more often over smaller families: a higher
     barrier rate, the paper's worst case. *)
  let base =
    match input with
    | Ilink.Bad -> { base with Ilink.iters = 10; scale = 0.7 }
    | Ilink.Clp -> base
  in
  match scale with
  | Quick -> { base with Ilink.iters = base.Ilink.iters / 3 + 1; scale = base.Ilink.scale *. 0.25 }
  | Default -> base
  | Paper -> { base with Ilink.iters = base.Ilink.iters * 2; scale = base.Ilink.scale *. 4.0 }

let pattern_params ~scale kind =
  let base = Patterns.default_params kind in
  match scale with
  | Quick -> { base with Patterns.rounds = base.Patterns.rounds / 4 }
  | Default -> base
  | Paper -> { base with Patterns.rounds = base.Patterns.rounds * 4 }

let kv_params ~scale params =
  check_keys ~app:"kv"
    [ "keys"; "zipf"; "get-ratio"; "requests"; "shards"; "mean-gap";
      "service"; "seed" ]
    params;
  let keys, requests, mean_gap =
    match scale with
    | Quick -> (256, 400, 2000)
    | Default -> (4096, 5000, 1500)
    | Paper -> (16384, 20000, 1500)
  in
  {
    Kvstore.shards = pint params "shards" 16;
    service_cycles = pint params "service" 400;
    load =
      {
        Loadgen.seed = pint params "seed" 42;
        keys = pint params "keys" keys;
        zipf = pfloat params "zipf" 0.9;
        get_ratio = pfloat params "get-ratio" 0.9;
        requests = pint params "requests" requests;
        mean_gap = pint params "mean-gap" mean_gap;
      };
  }

let kv ~scale ?(params = []) () = Kvstore.make (kv_params ~scale params)

let app ~scale ?(params = []) name =
  let check known = check_keys ~app:name known params in
  match name with
  | ("sor" | "sor-square" | "sor-touchall") as n ->
      check [ "rows"; "cols"; "iters" ];
      let base =
        sor_params ~scale ~square:(n = "sor-square")
          ~touch_all:(n = "sor-touchall")
      in
      Sor.make
        {
          base with
          Sor.rows = pint params "rows" base.Sor.rows;
          cols = pint params "cols" base.Sor.cols;
          iters = pint params "iters" base.Sor.iters;
        }
  | ("tsp" | "tsp-small") as n ->
      check [ "cities" ];
      let base = tsp_cities ~scale ~small:(n = "tsp-small") in
      Tsp.make (Tsp.params_n (pint params "cities" base))
  | ("water" | "m-water") as n ->
      check [ "molecules"; "steps" ];
      let mode = if n = "water" then Water.Locked else Water.Batched in
      let base = water_params ~scale mode in
      Water.make
        {
          base with
          Water.molecules = pint params "molecules" base.Water.molecules;
          steps = pint params "steps" base.Water.steps;
        }
  | ("ilink-clp" | "ilink-bad") as n ->
      check [ "iters"; "scale" ];
      let input = if n = "ilink-clp" then Ilink.Clp else Ilink.Bad in
      let base = ilink_params ~scale input in
      Ilink.make
        {
          base with
          Ilink.iters = pint params "iters" base.Ilink.iters;
          scale = pfloat params "scale" base.Ilink.scale;
        }
  | ("migratory" | "producer-consumer" | "false-sharing" | "read-mostly") as n
    ->
      check [ "rounds"; "words"; "compute" ];
      let kind =
        match n with
        | "migratory" -> Patterns.Migratory
        | "producer-consumer" -> Patterns.Producer_consumer
        | "false-sharing" -> Patterns.False_sharing
        | _ -> Patterns.Read_mostly
      in
      let base = pattern_params ~scale kind in
      Patterns.make
        {
          base with
          Patterns.rounds = pint params "rounds" base.Patterns.rounds;
          words = pint params "words" base.Patterns.words;
          compute = pint params "compute" base.Patterns.compute;
        }
  | "kv" -> (kv ~scale ~params ()).Kvstore.app
  | name -> invalid_arg (Printf.sprintf "unknown application %S" name)
