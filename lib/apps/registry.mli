(** Named application instances at three problem scales, shared by the
    CLI, the examples and the benchmark harness. *)

type scale = Quick | Default | Paper

val scale_of_string : string -> scale option

val scale_name : scale -> string

(** Canonical application names: ["sor"], ["sor-square"], ["sor-touchall"],
    ["tsp"], ["tsp-small"], ["water"], ["m-water"], ["ilink-clp"],
    ["ilink-bad"], the sharing-pattern microbenchmarks ["migratory"],
    ["producer-consumer"], ["false-sharing"], ["read-mostly"], and the
    serving workload ["kv"]. *)
val names : string list

(** [app ~scale ?params name] builds a fresh instance (one per run —
    DESIGN.md §8).  [params] are per-app [key, value] overrides layered
    on top of the scale defaults; each app declares its known keys
    (e.g. sor: rows/cols/iters; tsp: cities; water: molecules/steps;
    ilink: iters/scale; patterns: rounds/words/compute; kv:
    keys/zipf/get-ratio/requests/shards/mean-gap/service/seed).
    @raise Invalid_argument for an unknown name, an unknown key, or an
    unparsable value. *)
val app :
  scale:scale ->
  ?params:(string * string) list ->
  string ->
  Shm_parmacs.Parmacs.app

(** [kv ~scale ?params ()] builds the KV store with its observation
    handle exposed, for the differential harness and the benchmark's
    latency tables.  Same parameter keys as [app ~scale "kv"]. *)
val kv :
  scale:scale -> ?params:(string * string) list -> unit -> Kvstore.t
