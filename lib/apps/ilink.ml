module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory
module Prng = Shm_sim.Prng

type input = Clp | Bad

type params = {
  input : input;
  iters : int;
  seed : int;
  scale : float;
}

let default_params input =
  { input; iters = 6; seed = 23; scale = 1.0 }

let page_words = 512
let theta_words = 64

type shape = { families : int; result_words : int }

let shape_of = function
  | Clp -> { families = 16; result_words = 32 }
  | Bad -> { families = 96; result_words = 128 }

let family_costs p =
  let rng = Prng.create ~seed:p.seed in
  let sh = shape_of p.input in
  Array.init sh.families (fun _ ->
      let base =
        match p.input with
        | Clp ->
            (* Large, near-uniform peeling costs. *)
            2_000_000.0 *. (0.9 +. (0.2 *. Prng.float rng 1.0))
        | Bad ->
            (* Heavy-tailed: many small families, a few dominant ones. *)
            let u = Float.max 1e-3 (Prng.float rng 1.0) in
            60_000.0 *. (u ** -0.55)
      in
      int_of_float (base *. p.scale))

type layout = {
  theta : int;
  results : int;
  partials : int;
  loglike : int;
  checksum : int;
  words : int;
}

let layout_of sh =
  let l = Layout.create () in
  let theta = Layout.alloc_aligned l theta_words ~align:page_words in
  let results = Layout.alloc_aligned l (sh.families * sh.result_words) ~align:page_words in
  let partials = Layout.alloc_aligned l (64 * page_words) ~align:page_words in
  let loglike = Layout.alloc l 1 in
  let checksum = Layout.alloc l 1 in
  { theta; results; partials; loglike; checksum; words = Layout.size l }

let init lay mem =
  for k = 0 to theta_words - 1 do
    Memory.set_float mem (lay.theta + k) (0.1 +. (0.01 *. float_of_int k))
  done;
  Memory.set_float mem lay.loglike 0.0

(* Deterministic stand-in for a family's peeling result. *)
let family_term ~family ~slot theta_k =
  sin ((theta_k *. float_of_int (family + 1)) +. float_of_int slot)

let work p sh lay costs (ctx : Parmacs.ctx) =
  assert (ctx.nprocs <= 64);
  let ll = ref 0.0 in
  (* The peeling loop interleaves theta reads with result writes, so it
     cannot batch into range ops without reordering accesses; instead the
     platform closures and transfer cell are hoisted and the result base
     precomputed, leaving one projection-free read and write per slot. *)
  let readf = ctx.readf and writef = ctx.writef and fcell = ctx.fcell in
  let rw = sh.result_words in
  for _iter = 1 to p.iters do
    ctx.barrier 0;
    (* Parallel phase: families round-robin across processors. *)
    let partial = ref 0.0 in
    for f = 0 to sh.families - 1 do
      if f mod ctx.nprocs = ctx.id then begin
        ctx.compute costs.(f);
        let contribution = ref 0.0 in
        let rbase = lay.results + (f * rw) in
        for r = 0 to rw - 1 do
          readf (lay.theta + (r mod theta_words));
          let v = family_term ~family:f ~slot:r !fcell in
          fcell := v;
          writef (rbase + r);
          contribution := !contribution +. v
        done;
        partial := !partial +. log (2.0 +. !contribution /. float_of_int rw)
      end
    done;
    Parmacs.write_f ctx (lay.partials + (ctx.id * page_words)) !partial;
    ctx.barrier 0;
    (* Master phase: gather gradients, update theta, accumulate loglike. *)
    if ctx.id = 0 then begin
      for q = 0 to ctx.nprocs - 1 do
        ll := !ll +. Parmacs.read_f ctx (lay.partials + (q * page_words))
      done;
      let grad = Array.make theta_words 0.0 in
      let row = Array.make sh.result_words 0.0 in
      for f = 0 to sh.families - 1 do
        (* Each family's result record is contiguous: gather it whole. *)
        Parmacs.read_range_f ctx (lay.results + (f * sh.result_words)) row;
        for r = 0 to sh.result_words - 1 do
          grad.(r mod theta_words) <- grad.(r mod theta_words) +. row.(r)
        done
      done;
      let theta = Array.make theta_words 0.0 in
      Parmacs.read_range_f ctx lay.theta theta;
      for k = 0 to theta_words - 1 do
        theta.(k) <- theta.(k) +. (1e-4 *. grad.(k) /. float_of_int sh.families)
      done;
      Parmacs.write_range_f ctx lay.theta theta;
      Parmacs.write_f ctx lay.loglike !ll
    end
  done;
  ctx.barrier 0;
  if ctx.id = 0 then
    Parmacs.write_f ctx lay.checksum (Parmacs.read_f ctx lay.loglike);
  ctx.barrier 0

let make p =
  let sh = shape_of p.input in
  let lay = layout_of sh in
  let costs = family_costs p in
  let input_name = match p.input with Clp -> "clp" | Bad -> "bad" in
  {
    Parmacs.name = Printf.sprintf "ilink-%s" input_name;
    shared_words = lay.words;
    eager_lock_hints = [];
    init = init lay;
    work = work p sh lay costs;
    checksum_addr = lay.checksum;
    stats = Parmacs.no_stats;
  }
