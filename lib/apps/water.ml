module Parmacs = Shm_parmacs.Parmacs
module Memory = Shm_memsys.Memory
module Prng = Shm_sim.Prng

type mode = Locked | Batched

type params = {
  molecules : int;
  steps : int;
  mode : mode;
  seed : int;
  pair_cycles : int;  (* compute cost of one molecule-molecule interaction *)
}

(* A molecule-molecule interaction in real Water evaluates nine atom-pair
   distances and transcendental terms: hundreds of microseconds on a
   40 MHz R3000. *)
let default_pair_cycles = 16000

let default_params mode =
  { molecules = 192; steps = 2; mode; seed = 17;
    pair_cycles = default_pair_cycles }

let params_paper mode = { (default_params mode) with molecules = 288; steps = 5 }

let molecule_lock m = m

let integrate_compute_cycles = 200

let page_words = 512
let dt = 1e-3

type layout = {
  pos : int;
  vel : int;
  force : int;
  partials : int;
  checksum : int;
  words : int;
}

let layout_of p =
  let l = Layout.create () in
  let n3 = p.molecules * 3 in
  let pos = Layout.alloc l n3 in
  let vel = Layout.alloc l n3 in
  let force = Layout.alloc l n3 in
  let partials = Layout.alloc_aligned l (64 * page_words) ~align:page_words in
  let checksum = Layout.alloc l 1 in
  { pos; vel; force; partials; checksum; words = Layout.size l }

let init p lay mem =
  let rng = Prng.create ~seed:p.seed in
  let side = int_of_float (ceil (float_of_int p.molecules ** (1. /. 3.))) in
  for m = 0 to p.molecules - 1 do
    let gx = m mod side
    and gy = m / side mod side
    and gz = m / (side * side) in
    let jitter () = 0.1 *. Prng.float rng 1.0 in
    Memory.set_float mem (lay.pos + (3 * m)) (float_of_int gx +. jitter ());
    Memory.set_float mem (lay.pos + (3 * m) + 1) (float_of_int gy +. jitter ());
    Memory.set_float mem (lay.pos + (3 * m) + 2) (float_of_int gz +. jitter ());
    for k = 0 to 2 do
      Memory.set_float mem (lay.vel + (3 * m) + k) 0.0;
      Memory.set_float mem (lay.force + (3 * m) + k) 0.0
    done
  done

let work p lay (ctx : Parmacs.ctx) =
  assert (ctx.nprocs <= 64);
  let n = p.molecules in
  let lo = n * ctx.id / ctx.nprocs and hi = n * (ctx.id + 1) / ctx.nprocs in
  let buf3 = Array.make 3 0.0 in
  (* The pair loop is the simulator's hottest app kernel: n^2/2 reads of
     a 3-float record per step.  Values move through [buf3] and unboxed
     float locals — no tuples — so the loop allocates nothing per pair. *)
  let read3 base m = ctx.range.read_fs (base + (3 * m)) buf3 0 3 in
  let write3 base m x y z =
    buf3.(0) <- x;
    buf3.(1) <- y;
    buf3.(2) <- z;
    ctx.range.write_fs (base + (3 * m)) buf3 0 3
  in
  let add_force_locked m fx fy fz =
    ctx.lock (molecule_lock m);
    let a = lay.force + (3 * m) in
    Parmacs.write_f ctx a (Parmacs.read_f ctx a +. fx);
    Parmacs.write_f ctx (a + 1) (Parmacs.read_f ctx (a + 1) +. fy);
    Parmacs.write_f ctx (a + 2) (Parmacs.read_f ctx (a + 2) +. fz);
    ctx.unlock (molecule_lock m)
  in
  let acc = Array.make (3 * n) 0.0 in
  let acc_touched = Array.make n false in
  let zeros = Array.make (3 * (max 0 (hi - lo))) 0.0 in
  let locked = p.mode = Locked in
  for _step = 1 to p.steps do
    (* Phase 1: owners clear their molecules' force records — one
       contiguous store range over the owned segment. *)
    if hi > lo then Parmacs.write_range_f ctx (lay.force + (3 * lo)) zeros;
    ctx.barrier 1;
    (* Phase 2: pairwise forces.  Processor [p] computes interactions of
       its molecules with all higher-numbered ones. *)
    Array.fill acc 0 (3 * n) 0.0;
    Array.fill acc_touched 0 n false;
    for i = lo to hi - 1 do
      read3 lay.pos i;
      let xi = buf3.(0) and yi = buf3.(1) and zi = buf3.(2) in
      for j = i + 1 to n - 1 do
        read3 lay.pos j;
        let dx = xi -. buf3.(0)
        and dy = yi -. buf3.(1)
        and dz = zi -. buf3.(2) in
        (* Lennard-Jones-like force; clamped to keep the toy integrator
           stable. *)
        let r2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) +. 0.01 in
        let inv_r2 = 1.0 /. r2 in
        let inv_r6 = inv_r2 *. inv_r2 *. inv_r2 in
        let scale = 24.0 *. inv_r6 *. ((2.0 *. inv_r6) -. 1.0) *. inv_r2 in
        let scale = Float.max (-10.0) (Float.min 10.0 scale) in
        let fx = scale *. dx and fy = scale *. dy and fz = scale *. dz in
        ctx.compute p.pair_cycles;
        if locked then begin
          (* Original Water: one lock acquire per update of molecule j;
             contributions to own molecule i batch until the j-loop ends. *)
          add_force_locked j (-.fx) (-.fy) (-.fz);
          let b = 3 * i in
          Array.unsafe_set acc b (Array.unsafe_get acc b +. fx);
          Array.unsafe_set acc (b + 1) (Array.unsafe_get acc (b + 1) +. fy);
          Array.unsafe_set acc (b + 2) (Array.unsafe_get acc (b + 2) +. fz)
        end
        else begin
          let b = 3 * i in
          Array.unsafe_set acc b (Array.unsafe_get acc b +. fx);
          Array.unsafe_set acc (b + 1) (Array.unsafe_get acc (b + 1) +. fy);
          Array.unsafe_set acc (b + 2) (Array.unsafe_get acc (b + 2) +. fz);
          let b = 3 * j in
          Array.unsafe_set acc b (Array.unsafe_get acc b -. fx);
          Array.unsafe_set acc (b + 1) (Array.unsafe_get acc (b + 1) -. fy);
          Array.unsafe_set acc (b + 2) (Array.unsafe_get acc (b + 2) -. fz);
          Array.unsafe_set acc_touched j true
        end
      done;
      acc_touched.(i) <- true
    done;
    (* Apply accumulated contributions: M-Water takes one lock per
       molecule it updated; original Water already flushed the js.  Start
       at the own segment and wrap so processors do not convoy on the
       same molecule locks in the same order. *)
    for k = 0 to n - 1 do
      let m = (lo + k) mod n in
      if acc_touched.(m) then
        add_force_locked m acc.(3 * m) acc.((3 * m) + 1) acc.((3 * m) + 2)
    done;
    ctx.barrier 1;
    (* Phase 3: owners integrate their molecules. *)
    for m = lo to hi - 1 do
      read3 lay.force m;
      let fx = buf3.(0) and fy = buf3.(1) and fz = buf3.(2) in
      read3 lay.vel m;
      let vx = buf3.(0) +. (fx *. dt)
      and vy = buf3.(1) +. (fy *. dt)
      and vz = buf3.(2) +. (fz *. dt) in
      write3 lay.vel m vx vy vz;
      read3 lay.pos m;
      let xi = buf3.(0) and yi = buf3.(1) and zi = buf3.(2) in
      write3 lay.pos m (xi +. (vx *. dt)) (yi +. (vy *. dt)) (zi +. (vz *. dt));
      ctx.compute integrate_compute_cycles
    done;
    ctx.barrier 1
  done;
  (* Checksum: per-processor digests over owned molecules. *)
  let s = ref 0.0 in
  for m = lo to hi - 1 do
    read3 lay.pos m;
    let x = buf3.(0) and y = buf3.(1) and z = buf3.(2) in
    read3 lay.vel m;
    s := !s +. x +. y +. z +. buf3.(0) +. buf3.(1) +. buf3.(2)
  done;
  Parmacs.write_f ctx (lay.partials + (ctx.id * page_words)) !s;
  ctx.barrier 1;
  if ctx.id = 0 then begin
    let total = ref 0.0 in
    for q = 0 to ctx.nprocs - 1 do
      total := !total +. Parmacs.read_f ctx (lay.partials + (q * page_words))
    done;
    Parmacs.write_f ctx lay.checksum !total
  end;
  ctx.barrier 1

let make p =
  let lay = layout_of p in
  let mode_name = match p.mode with Locked -> "water" | Batched -> "m-water" in
  {
    Parmacs.name = Printf.sprintf "%s-%d" mode_name p.molecules;
    shared_words = lay.words;
    eager_lock_hints = [];
    init = init p lay;
    work = work p lay;
    checksum_addr = lay.checksum;
    stats = Parmacs.no_stats;
  }
