(** Deterministic open-loop traffic generator for the serving workloads.

    A trace is a pure function of [(params, node, nprocs)]: seeded Zipf
    key popularity, a configurable get/put mix, and an arrival schedule
    with ramp and burst phases.  Requests carry precomputed issue
    cycles; the KV store charges idle time up to the issue cycle and
    measures latency from it, so a backed-up server accumulates queueing
    delay instead of silently slowing the offered load (open-loop, no
    coordinated omission).

    Puts from node [n] touch only keys congruent to [n] modulo
    [nprocs] (single-writer keys), so the final store contents — and
    hence the run checksum — are identical on every platform, under any
    fault or crash schedule.  Gets range over the whole key space. *)

type op = Get | Put

type params = {
  seed : int;
  keys : int;  (** key-space size *)
  zipf : float;  (** popularity skew theta; 0.0 = uniform *)
  get_ratio : float;  (** fraction of gets, in [0, 1] *)
  requests : int;  (** requests per node *)
  mean_gap : int;  (** steady-state inter-arrival time, cycles *)
}

type req = {
  op : op;
  key : int;
  issue : int;  (** scheduled issue cycle (monotone within a node) *)
}

(** @raise Invalid_argument on out-of-range parameters. *)
val validate : params -> unit

(** [trace p ~node ~nprocs] is node's request stream.
    @raise Invalid_argument on out-of-range parameters. *)
val trace : params -> node:int -> nprocs:int -> req array
