type t = {
  n_workers : int;
  mutex : Mutex.t;
  cond : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopped : bool;
  mutable domains : unit Domain.t list;
}

let jobs t = t.n_workers

let rec worker_loop t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.stopped then None
    else begin
      Condition.wait t.cond t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker_loop t

let create ~jobs =
  let jobs = max 1 jobs in
  let t =
    {
      n_workers = (if jobs <= 1 then 0 else jobs);
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      stopped = false;
      domains = [];
    }
  in
  t.domains <- List.init t.n_workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t f =
  if t.n_workers = 0 then Future.of_thunk f
  else begin
    let fut = Future.make () in
    let task () =
      match f () with
      | v -> Future.fill fut v
      | exception e -> Future.fail fut e (Printexc.get_raw_backtrace ())
    in
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.submit: pool is shut down"
    end;
    Queue.push task t.queue;
    Condition.signal t.cond;
    Mutex.unlock t.mutex;
    fut
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.stopped <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  let ds = t.domains in
  t.domains <- [];
  List.iter Domain.join ds

let default_jobs () =
  match Sys.getenv_opt "SHMCS_JOBS" with
  | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> max 1 (Domain.recommended_domain_count () - 1))
  | None -> max 1 (Domain.recommended_domain_count () - 1)
