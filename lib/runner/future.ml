type 'a state =
  | Thunk of (unit -> 'a)  (* lazy future; forced by the first awaiter *)
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

type 'a t = {
  mutex : Mutex.t;
  cond : Condition.t;
  mutable state : 'a state;
}

let make () =
  { mutex = Mutex.create (); cond = Condition.create (); state = Pending }

let of_thunk f =
  { mutex = Mutex.create (); cond = Condition.create (); state = Thunk f }

let complete t outcome =
  Mutex.lock t.mutex;
  (match t.state with
  | Done _ | Failed _ ->
      Mutex.unlock t.mutex;
      invalid_arg "Future: already completed"
  | Pending | Thunk _ ->
      t.state <- outcome;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex)

let fill t v = complete t (Done v)
let fail t exn bt = complete t (Failed (exn, bt))

let await t =
  Mutex.lock t.mutex;
  (* Claim the thunk, if any, so it runs exactly once even when several
     threads await the same lazy future. *)
  let to_force =
    match t.state with
    | Thunk f ->
        t.state <- Pending;
        Some f
    | Pending | Done _ | Failed _ -> None
  in
  match to_force with
  | Some f ->
      Mutex.unlock t.mutex;
      (match f () with
      | v -> fill t v
      | exception e -> fail t e (Printexc.get_raw_backtrace ()));
      (* Fall through to the normal completed path. *)
      Mutex.lock t.mutex;
      let r = t.state in
      Mutex.unlock t.mutex;
      (match r with
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending | Thunk _ -> assert false)
  | None ->
      let rec wait () =
        match t.state with
        | Pending | Thunk _ ->
            Condition.wait t.cond t.mutex;
            wait ()
        | Done v ->
            Mutex.unlock t.mutex;
            v
        | Failed (e, bt) ->
            Mutex.unlock t.mutex;
            Printexc.raise_with_backtrace e bt
      in
      wait ()

let peek t =
  Mutex.lock t.mutex;
  let r = match t.state with Done v -> Some v | _ -> None in
  Mutex.unlock t.mutex;
  r
