(** Single-assignment synchronization cells connecting run producers to
    consumers across domains.

    A future is completed exactly once, either with a value ([fill]) or an
    exception ([fail]); every [await]er then observes the same outcome.  A
    {e lazy} future ([of_thunk]) carries its computation with it and runs
    it in the first awaiting thread — this is how the scheduler degrades to
    strictly sequential execution when the pool has no worker domains. *)

type 'a t

(** [make ()] is a pending future, to be completed by [fill] or [fail]. *)
val make : unit -> 'a t

(** [fill t v] completes [t] with [v] and wakes every awaiter.
    @raise Invalid_argument if [t] is already completed. *)
val fill : 'a t -> 'a -> unit

(** [fail t exn bt] completes [t] with an exception; [await] re-raises it
    with backtrace [bt].
    @raise Invalid_argument if [t] is already completed. *)
val fail : 'a t -> exn -> Printexc.raw_backtrace -> unit

(** [of_thunk f] is a future that runs [f] inside the first [await],
    in the awaiting thread.  [f] runs at most once. *)
val of_thunk : (unit -> 'a) -> 'a t

(** [await t] blocks until [t] completes, then returns its value or
    re-raises its exception. *)
val await : 'a t -> 'a

(** [peek t] is [Some v] if [t] has completed with [v]; [None] if it is
    pending, still a thunk, or failed.  Never blocks or forces. *)
val peek : 'a t -> 'a option
