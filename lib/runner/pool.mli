(** Fixed-size domain pool for independent simulation runs.

    With [jobs >= 2] the pool spawns [jobs] worker domains that drain a
    FIFO work queue; [submit] returns a {!Future.t} completed by whichever
    worker executes the task.  With [jobs <= 1] no domains are spawned and
    [submit] returns a lazy future executed inside the first [Future.await]
    — byte-for-byte the historical sequential behavior, with runs happening
    at the moment their results are first demanded.

    Tasks must be self-contained: one engine, one PRNG, one counter set
    per run, nothing mutable shared with another task (see DESIGN.md,
    "Determinism and isolation under the run scheduler"). *)

type t

(** [create ~jobs] starts a pool.  [jobs] is clamped to at least 1. *)
val create : jobs:int -> t

(** Number of worker domains ([0] in sequential mode). *)
val jobs : t -> int

(** [submit t f] schedules [f] and returns the future of its result.
    @raise Invalid_argument if the pool has been shut down. *)
val submit : t -> (unit -> 'a) -> 'a Future.t

(** [shutdown t] lets queued tasks finish, then joins every worker.
    Idempotent. *)
val shutdown : t -> unit

(** [default_jobs ()] is the [SHMCS_JOBS] environment variable if set to a
    positive integer, else [Domain.recommended_domain_count () - 1], and
    at least 1. *)
val default_jobs : unit -> int
