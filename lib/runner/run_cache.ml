type ('k, 'v) t = {
  pool : Pool.t;
  mutex : Mutex.t;
  table : ('k, 'v Future.t) Hashtbl.t;
  mutable order : ('k * 'v Future.t) list; (* submission order, reversed *)
}

let create pool =
  { pool; mutex = Mutex.create (); table = Hashtbl.create 64; order = [] }

let find_or_submit t key thunk =
  Mutex.lock t.mutex;
  match Hashtbl.find_opt t.table key with
  | Some fut ->
      Mutex.unlock t.mutex;
      fut
  | None ->
      (* Register the future before submitting so a racing lookup from
         another domain can never submit a duplicate; Pool.submit only
         enqueues, so holding the lock across it is cheap. *)
      let fut = Pool.submit t.pool thunk in
      Hashtbl.add t.table key fut;
      t.order <- (key, fut) :: t.order;
      Mutex.unlock t.mutex;
      fut

let to_list t =
  Mutex.lock t.mutex;
  let l = List.rev t.order in
  Mutex.unlock t.mutex;
  l

let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n
