(** Deterministic future-based memoized run cache.

    Several figures share the same (app, platform, nprocs) run: the cache
    hands out one shared future per key, so the run executes exactly once
    on the pool and every consumer blocks on the same result.  The first
    [find_or_submit] for a key wins the submission; later calls — from any
    domain — get the existing future, whether pending or completed.

    Submission order is recorded and exposed via [to_list]: it depends only
    on the order of [find_or_submit] calls, never on which worker finishes
    first, so reports derived from it are identical at any [--jobs]. *)

type ('k, 'v) t

val create : Pool.t -> ('k, 'v) t

(** [find_or_submit t key thunk] returns the future for [key], submitting
    [thunk] to the pool if [key] has not been seen before. *)
val find_or_submit : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v Future.t

(** All futures ever submitted, in submission order. *)
val to_list : ('k, 'v) t -> ('k * 'v Future.t) list

(** Number of distinct keys submitted. *)
val length : ('k, 'v) t -> int
