module Memory = Shm_memsys.Memory

type range_ops = {
  read_fs : int -> float array -> int -> int -> unit;
  write_fs : int -> float array -> int -> int -> unit;
  read_is : int -> int array -> int -> int -> unit;
  write_is : int -> int array -> int -> int -> unit;
}

type ctx = {
  id : int;
  nprocs : int;
  read : int -> int64;
  write : int -> int64 -> unit;
  fcell : float ref;
  readf : int -> unit;
  writef : int -> unit;
  icell : int ref;
  readi : int -> unit;
  writei : int -> unit;
  range : range_ops;
  lock : int -> unit;
  unlock : int -> unit;
  barrier : int -> unit;
  compute : int -> unit;
  clock : unit -> int;
}

(* Scalar float traffic goes through [fcell] so no value is ever boxed
   across the platform closure: [readf] stores the loaded word into the
   cell, [writef] stores the cell's value.  A float ref is a flat one-
   field record, so both sides are plain unboxed double moves. *)
let[@inline] read_f ctx addr =
  ctx.readf addr;
  !(ctx.fcell)

let[@inline] write_f ctx addr v =
  ctx.fcell := v;
  ctx.writef addr

(* Scalar int traffic mirrors the float path: [icell] carries the word
   across the platform closure, so no [int64] is boxed per access. *)
let[@inline] read_i ctx addr =
  ctx.readi addr;
  !(ctx.icell)

let[@inline] write_i ctx addr v =
  ctx.icell := v;
  ctx.writei addr

let read_range_f ctx addr (dst : float array) =
  ctx.range.read_fs addr dst 0 (Array.length dst)

let write_range_f ctx addr (src : float array) =
  ctx.range.write_fs addr src 0 (Array.length src)

let read_range_i ctx addr (dst : int array) =
  ctx.range.read_is addr dst 0 (Array.length dst)

let write_range_i ctx addr (src : int array) =
  ctx.range.write_is addr src 0 (Array.length src)

let range_ops_of_runs ~mem ~read_run ~write_run =
  {
    read_fs =
      (fun addr dst pos len ->
        read_run addr len ~f:(fun p l ->
            Memory.read_floats mem p dst (pos + p - addr) l));
    write_fs =
      (fun addr src pos len ->
        write_run addr len ~f:(fun p l ->
            Memory.write_floats mem p src (pos + p - addr) l));
    read_is =
      (fun addr dst pos len ->
        read_run addr len ~f:(fun p l ->
            Memory.read_ints mem p dst (pos + p - addr) l));
    write_is =
      (fun addr src pos len ->
        write_run addr len ~f:(fun p l ->
            Memory.write_ints mem p src (pos + p - addr) l));
  }

let range_ops_wordwise ~read ~write =
  {
    read_fs =
      (fun addr dst pos len ->
        for k = 0 to len - 1 do
          dst.(pos + k) <- Int64.float_of_bits (read (addr + k))
        done);
    write_fs =
      (fun addr src pos len ->
        for k = 0 to len - 1 do
          write (addr + k) (Int64.bits_of_float src.(pos + k))
        done);
    read_is =
      (fun addr dst pos len ->
        for k = 0 to len - 1 do
          dst.(pos + k) <- Int64.to_int (read (addr + k))
        done);
    write_is =
      (fun addr src pos len ->
        for k = 0 to len - 1 do
          write (addr + k) (Int64.of_int src.(pos + k))
        done);
  }

type app = {
  name : string;
  shared_words : int;
  eager_lock_hints : int list;
  init : Memory.t -> unit;
  work : ctx -> unit;
  checksum_addr : int;
  stats : unit -> (string * int) list;
}

let no_stats () = []

let run_sequential app =
  let mem = Memory.create ~words:app.shared_words in
  app.init mem;
  let pass = fun addr words ~f -> f addr words in
  let fcell = ref 0.0 in
  let icell = ref 0 in
  let ctx =
    {
      id = 0;
      nprocs = 1;
      read = Memory.get mem;
      write = Memory.set mem;
      fcell;
      readf = (fun addr -> fcell := Memory.get_float mem addr);
      writef = (fun addr -> Memory.set_float mem addr !fcell);
      icell;
      readi = (fun addr -> icell := Memory.get_int mem addr);
      writei = (fun addr -> Memory.set_int mem addr !icell);
      range = range_ops_of_runs ~mem ~read_run:pass ~write_run:pass;
      lock = ignore;
      unlock = ignore;
      barrier = ignore;
      compute = ignore;
      clock = (fun () -> 0);
    }
  in
  app.work ctx;
  mem

let checksum_of mem app = Memory.get_float mem app.checksum_addr
