(** PARMACS-style parallel programming interface (ANL macros).

    The paper's applications are written once against this interface and
    run unchanged on every platform — TreadMarks over ATM, the SGI bus
    machine, and the simulated AS/AH/HS systems — exactly as the original
    programs ran on both the DECstation cluster and the 4D/480.

    A processor's shared accesses go through [read]/[write] (which charge
    simulated time and drive the platform's coherence machinery);
    [compute] charges local computation.  Private scratch data is ordinary
    OCaml state, its access cost folded into [compute] estimates. *)

(** Bulk shared-memory access over a contiguous word range: each op moves
    [len] words between shared address [addr..] and a typed private buffer
    at [pos..].  Platforms implement these so they are {e observably
    identical} to the equivalent per-word [read]/[write] sequence in
    ascending address order — same simulated cycles, same cache counters,
    same protocol messages at the same times — while skipping the per-word
    dispatch, so they run much faster in real time.  Only loops that
    already touch consecutive words in ascending order (all reads, or all
    writes) may be converted to range ops. *)
type range_ops = {
  read_fs : int -> float array -> int -> int -> unit;
      (** [read_fs addr dst pos len] *)
  write_fs : int -> float array -> int -> int -> unit;
  read_is : int -> int array -> int -> int -> unit;
  write_is : int -> int array -> int -> int -> unit;
}

type ctx = {
  id : int;  (** processor id, [0 .. nprocs-1] *)
  nprocs : int;
  read : int -> int64;  (** shared word read (guarded, timed) *)
  write : int -> int64 -> unit;
  fcell : float ref;
      (** scalar float transfer cell shared with [readf]/[writef]; private
          to this processor *)
  readf : int -> unit;
      (** guarded, timed float read of one shared word into [fcell] —
          observably identical to [read], but allocation-free *)
  writef : int -> unit;  (** float store of [fcell]'s value, ditto *)
  icell : int ref;
      (** scalar int transfer cell shared with [readi]/[writei]; private
          to this processor *)
  readi : int -> unit;
      (** guarded, timed int read of one shared word into [icell] —
          observably identical to [read], but allocation-free *)
  writei : int -> unit;  (** int store of [icell]'s value, ditto *)
  range : range_ops;  (** contiguous-range accesses (guarded, timed) *)
  lock : int -> unit;
  unlock : int -> unit;
  barrier : int -> unit;
  compute : int -> unit;  (** charge local work, in cycles *)
  clock : unit -> int;
      (** this processor's current simulated cycle (the attribution
          clock); reading it charges nothing.  Serving apps timestamp
          request issue/completion with it.  [run_sequential] has no
          clock and always answers 0. *)
}

(** {2 Typed access helpers} *)

val read_f : ctx -> int -> float
val write_f : ctx -> int -> float -> unit
val read_i : ctx -> int -> int
val write_i : ctx -> int -> int -> unit

(** {2 Range helpers} — whole-buffer convenience wrappers. *)

(** [read_range_f ctx addr dst] fills all of [dst] from [addr..]. *)
val read_range_f : ctx -> int -> float array -> unit

val write_range_f : ctx -> int -> float array -> unit
val read_range_i : ctx -> int -> int array -> unit
val write_range_i : ctx -> int -> int array -> unit

(** {2 Constructors for platforms} *)

(** [range_ops_of_runs ~mem ~read_run ~write_run] builds typed range ops
    from a platform's run primitives: [read_run addr words ~f] must
    perform guarding and timing for the range and call [f pos len] for
    each sub-run as soon as it may be accessed ([f] moves the data against
    [mem] and never yields). *)
val range_ops_of_runs :
  mem:Shm_memsys.Memory.t ->
  read_run:(int -> int -> f:(int -> int -> unit) -> unit) ->
  write_run:(int -> int -> f:(int -> int -> unit) -> unit) ->
  range_ops

(** [range_ops_wordwise ~read ~write] implements range ops as the literal
    per-word loop — the trivially-equivalent fallback for backends whose
    access interleaving is too delicate to batch. *)
val range_ops_wordwise :
  read:(int -> int64) -> write:(int -> int64 -> unit) -> range_ops

(** {2 Applications} *)

type app = {
  name : string;
  shared_words : int;  (** size of the shared heap the app uses *)
  eager_lock_hints : int list;
      (** locks that platforms may run in eager-release mode when asked *)
  init : Shm_memsys.Memory.t -> unit;
      (** untimed sequential initialization of the shared image *)
  work : ctx -> unit;  (** the timed parallel section, one call per CPU *)
  checksum_addr : int;
      (** float slot that processor 0 fills at the end of [work] with a
          result digest, used to validate runs across platforms *)
  stats : unit -> (string * int) list;
      (** app-level counters the platform merges into the run's counter
          set after the simulation completes (e.g. the KV store's
          request totals and latency percentiles).  Must be a pure
          function of the finished run; most apps have none
          ({!no_stats}). *)
}

(** The empty [stats] function shared by apps with no app-level counters. *)
val no_stats : unit -> (string * int) list

(** [run_sequential app] executes the app untimed on a plain memory with
    one processor and no-op synchronization; returns the final memory.
    Reference results for validation. *)
val run_sequential : app -> Shm_memsys.Memory.t

(** [checksum_of mem app] reads the digest slot. *)
val checksum_of : Shm_memsys.Memory.t -> app -> float
